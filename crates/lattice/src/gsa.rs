//! The geometric series assumption (GSA): predicting the Gram–Schmidt
//! profile of a BKZ-β-reduced basis — the model underneath every security
//! estimate in this workspace, validated here against actual reductions.

use crate::gso::Gso;

/// Root-Hermite factor δ(β) (duplicated from `reveal-hints` to keep the
/// crates independent; both implementations are pinned by tests).
pub fn delta_bkz(beta: f64) -> f64 {
    const LLL_DELTA: f64 = 1.0219;
    const FORMULA_FLOOR: f64 = 40.0;
    let formula = |b: f64| -> f64 {
        let core = (b / (2.0 * std::f64::consts::PI * std::f64::consts::E))
            * (std::f64::consts::PI * b).powf(1.0 / b);
        core.powf(1.0 / (2.0 * (b - 1.0)))
    };
    if beta >= FORMULA_FLOOR {
        formula(beta)
    } else {
        let beta = beta.max(2.0);
        let hi = formula(FORMULA_FLOOR);
        let t = (beta - 2.0) / (FORMULA_FLOOR - 2.0);
        LLL_DELTA + t * (hi - LLL_DELTA)
    }
}

/// Predicts the GSA log-profile `ln ‖b*_i‖` of a β-reduced basis of the
/// given dimension and log-volume: a straight line with slope `−2 ln δ(β)`
/// through the volume constraint `Σ ln ‖b*_i‖ = ln vol`.
pub fn gsa_profile(dim: usize, ln_volume: f64, beta: f64) -> Vec<f64> {
    let slope = -2.0 * delta_bkz(beta).ln();
    // ln b*_i = a + slope·i with Σ = ln vol ⇒ a = (ln vol − slope·Σi)/dim.
    let sum_i = (dim * (dim - 1) / 2) as f64;
    let a = (ln_volume - slope * sum_i) / dim as f64;
    (0..dim).map(|i| a + slope * i as f64).collect()
}

/// The measured log-profile of an integer basis.
pub fn measured_profile(basis: &[Vec<i64>]) -> Vec<f64> {
    let gso = Gso::new(basis.to_vec());
    gso.b_star_sq
        .iter()
        .map(|&b| 0.5 * b.max(f64::MIN_POSITIVE).ln())
        .collect()
}

/// Root-mean-square deviation between a predicted and a measured profile.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn profile_rmsd(predicted: &[f64], measured: &[f64]) -> f64 {
    assert_eq!(predicted.len(), measured.len());
    let n = predicted.len().max(1) as f64;
    (predicted
        .iter()
        .zip(measured)
        .map(|(p, m)| (p - m).powi(2))
        .sum::<f64>()
        / n)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bkz::{bkz_reduce, BkzParams};
    use crate::lll::{lll_reduce, LllParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn qary_basis(n: usize, q: i64, seed: u64) -> Vec<Vec<i64>> {
        // A q-ary lattice basis: [[q I, 0], [A, I]] with random A — the shape
        // security estimates are about.
        let half = n / 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut basis = vec![vec![0i64; n]; n];
        for i in 0..half {
            basis[i][i] = q;
        }
        for i in half..n {
            for j in 0..half {
                basis[i][j] = rng.gen_range(0..q);
            }
            basis[i][i] = 1;
        }
        basis
    }

    #[test]
    fn gsa_profile_preserves_volume() {
        let ln_vol = 123.4;
        for beta in [2.0, 20.0, 60.0] {
            let p = gsa_profile(30, ln_vol, beta);
            let total: f64 = p.iter().sum();
            assert!((total - ln_vol).abs() < 1e-9, "beta {beta}");
        }
    }

    #[test]
    fn gsa_slope_flattens_with_beta() {
        let p_weak = gsa_profile(40, 100.0, 2.0);
        let p_strong = gsa_profile(40, 100.0, 38.0);
        let slope = |p: &[f64]| p[1] - p[0];
        assert!(
            slope(&p_strong) > slope(&p_weak),
            "stronger reduction = flatter profile"
        );
        assert!(slope(&p_weak) < 0.0);
    }

    #[test]
    fn lll_profile_matches_gsa_prediction() {
        let q = 12289i64;
        let n = 24;
        let mut basis = qary_basis(n, q, 7);
        lll_reduce(&mut basis, &LllParams::default());
        let measured = measured_profile(&basis);
        let ln_vol: f64 = measured.iter().sum();
        let predicted = gsa_profile(n, ln_vol, 2.0);
        let rmsd = profile_rmsd(&predicted, &measured);
        // The GSA is an idealization; ~1 nat RMSD on a 24-dim q-ary basis is
        // the expected agreement (head/tail deviate).
        assert!(rmsd < 1.5, "LLL profile deviates from GSA by {rmsd}");
        // And the measured slope must be close to the predicted one.
        let mid_slope_measured = (measured[n - 5] - measured[4]) / (n - 9) as f64;
        let mid_slope_predicted = -2.0 * delta_bkz(2.0).ln();
        assert!(
            (mid_slope_measured - mid_slope_predicted).abs() < 0.05,
            "slope {mid_slope_measured} vs {mid_slope_predicted}"
        );
    }

    #[test]
    fn bkz_flattens_the_measured_profile() {
        let q = 12289i64;
        let n = 20;
        let mut lll_basis = qary_basis(n, q, 9);
        lll_reduce(&mut lll_basis, &LllParams::default());
        let mut bkz_basis = qary_basis(n, q, 9);
        bkz_reduce(&mut bkz_basis, &BkzParams::with_block_size(10));
        let slope = |b: &[Vec<i64>]| {
            let p = measured_profile(b);
            (p[n - 3] - p[2]) / (n - 5) as f64
        };
        assert!(
            slope(&bkz_basis) >= slope(&lll_basis) - 1e-9,
            "BKZ must not steepen the profile"
        );
    }

    #[test]
    fn delta_matches_hints_crate_values() {
        // Keep the two independent δ implementations pinned to each other.
        for beta in [50.0, 100.0, 200.0, 382.25] {
            let here = delta_bkz(beta);
            // Reference values recomputed from the shared formula.
            let core = (beta / (2.0 * std::f64::consts::PI * std::f64::consts::E))
                * (std::f64::consts::PI * beta).powf(1.0 / beta);
            let reference = core.powf(1.0 / (2.0 * (beta - 1.0)));
            assert!((here - reference).abs() < 1e-12);
        }
    }
}
