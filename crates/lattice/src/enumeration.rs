//! Schnorr–Euchner enumeration: exact shortest-vector search on the
//! Gram–Schmidt representation of a (projected) basis block.

use crate::gso::Gso;

/// Result of an enumeration: coefficient vector (w.r.t. the block basis) and
/// the squared norm of the corresponding lattice vector.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumerationResult {
    /// Integer coefficients `x` such that `v = Σ x_i b_i`.
    pub coefficients: Vec<i64>,
    /// `‖v‖²`.
    pub norm_sq: f64,
}

/// Enumerates the shortest nonzero vector of the sub-lattice spanned by the
/// GSO block `[start, end)` with squared radius bound `radius_sq`.
///
/// Returns `None` when no vector beats the bound. Uses the classic
/// depth-first Schnorr–Euchner traversal with the zig-zag child ordering and
/// radius updates on every improvement.
///
/// # Panics
///
/// Panics if the block range is invalid.
pub fn enumerate_shortest(
    gso: &Gso,
    start: usize,
    end: usize,
    radius_sq: f64,
) -> Option<EnumerationResult> {
    assert!(start < end && end <= gso.rows(), "bad enumeration block");
    let d = end - start;
    let b: Vec<f64> = (start..end).map(|i| gso.b_star_sq[i]).collect();
    if b.iter().any(|&x| x <= 0.0) {
        return None;
    }
    // mu restricted to the block: mu[i][j] for start <= j < i < end.
    let mu = |i: usize, j: usize| gso.mu[start + i][start + j];

    let mut best: Option<(Vec<i64>, f64)> = None;
    let mut radius = radius_sq;

    // State per level (levels indexed from the last block row down to 0).
    let mut x = vec![0i64; d];
    let mut centers = vec![0.0f64; d];
    let mut partial = vec![0.0f64; d + 1]; // partial[k] = cost of levels k..d
    let mut deltas = vec![0i64; d];
    let mut delta_signs = vec![1i64; d];

    let mut k = d - 1;
    // Center of the top level is 0 (no outer coordinates fixed yet).
    centers[k] = 0.0;
    x[k] = 0;
    deltas[k] = 0;
    delta_signs[k] = 1;

    loop {
        // Cost of the current partial assignment at level k.
        let diff = x[k] as f64 - centers[k];
        let cost = partial[k + 1] + diff * diff * b[k];
        if cost < radius {
            if k == 0 {
                // Full assignment: a candidate vector (skip the zero vector).
                if x.iter().any(|&xi| xi != 0) {
                    radius = cost * 0.9999; // shrink to prefer strictly shorter
                    best = Some((x.clone(), cost));
                }
                // Continue scanning siblings at level 0.
                next_sibling(&mut x, &mut deltas, &mut delta_signs, &centers, 0);
            } else {
                // Descend.
                partial[k] = cost;
                k -= 1;
                let mut c = 0.0;
                for j in k + 1..d {
                    c -= mu(j, k) * x[j] as f64;
                }
                centers[k] = c;
                x[k] = c.round() as i64;
                deltas[k] = 0;
                delta_signs[k] = if c - c.round() >= 0.0 { 1 } else { -1 };
            }
        } else {
            // The zig-zag visits siblings in non-decreasing |x - center|
            // order, so a failed bound kills the whole level: ascend. At the
            // top level (center 0, symmetric) that ends the search.
            if k == d - 1 {
                break;
            }
            k += 1;
            next_sibling(&mut x, &mut deltas, &mut delta_signs, &centers, k);
        }
    }
    best.map(|(coefficients, norm_sq)| EnumerationResult {
        coefficients,
        norm_sq,
    })
}

/// Zig-zag sibling step of Schnorr–Euchner: x, x+1, x-1, x+2, … around the
/// level's center.
fn next_sibling(
    x: &mut [i64],
    deltas: &mut [i64],
    delta_signs: &mut [i64],
    _centers: &[f64],
    k: usize,
) {
    deltas[k] += 1;
    x[k] += delta_signs[k] * deltas[k];
    delta_signs[k] = -delta_signs[k];
}

/// Convenience: exact shortest vector of a full small basis, as coordinates.
///
/// Returns `None` for empty/degenerate bases.
pub fn shortest_vector(basis: &[Vec<i64>]) -> Option<Vec<i64>> {
    if basis.is_empty() {
        return None;
    }
    let gso = Gso::new(basis.to_vec());
    let radius = (0..gso.rows())
        .map(|i| gso.row_norm_sq(i))
        .fold(f64::INFINITY, f64::min)
        * 1.0001;
    let result = enumerate_shortest(&gso, 0, gso.rows(), radius)?;
    let dim = gso.dim();
    let mut v = vec![0i64; dim];
    for (xi, row) in result.coefficients.iter().zip(basis) {
        for (vj, rj) in v.iter_mut().zip(row) {
            *vj += xi * rj;
        }
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gso::dot_ii;
    use crate::lll::{lll_reduce, LllParams};
    use proptest::prelude::*;

    #[test]
    fn finds_unit_vector_in_identity() {
        let basis = vec![vec![1, 0], vec![0, 1]];
        let v = shortest_vector(&basis).unwrap();
        assert_eq!(dot_ii(&v, &v), 1);
    }

    #[test]
    fn finds_shorter_than_basis_vectors() {
        // Basis (5, 3), (4, 2): difference (1, 1) has norm² 2 < 20, 29.
        let basis = vec![vec![5, 3], vec![4, 2]];
        let v = shortest_vector(&basis).unwrap();
        assert_eq!(dot_ii(&v, &v), 2, "shortest is ±(1,1), got {v:?}");
    }

    #[test]
    fn shortest_in_scaled_lattice() {
        let basis = vec![vec![7, 0, 0], vec![0, 11, 0], vec![0, 0, 13]];
        let v = shortest_vector(&basis).unwrap();
        assert_eq!(dot_ii(&v, &v), 49);
    }

    #[test]
    fn radius_bound_respected() {
        let gso = Gso::new(vec![vec![3, 0], vec![0, 4]]);
        // Radius² below the shortest (9): nothing found.
        assert!(enumerate_shortest(&gso, 0, 2, 8.9).is_none());
        // Radius² just above: finds (1, 0) * 3.
        let r = enumerate_shortest(&gso, 0, 2, 9.1).unwrap();
        assert!((r.norm_sq - 9.0).abs() < 1e-9);
    }

    #[test]
    fn block_enumeration_projects() {
        // In a reduced 3-dim basis, enumerate only the tail block [1, 3):
        // coefficients are w.r.t. b1, b2 projected away from b0.
        let mut basis = vec![vec![9, 0, 0], vec![1, 7, 0], vec![2, 1, 5]];
        lll_reduce(&mut basis, &LllParams::default());
        let gso = Gso::new(basis);
        let bound = gso.b_star_sq[1] * 1.0001;
        let r = enumerate_shortest(&gso, 1, 3, bound);
        assert!(r.is_some());
        assert!(r.unwrap().norm_sq <= bound);
    }

    fn brute_force_shortest(basis: &[Vec<i64>], range: i64) -> i64 {
        let dim = basis[0].len();
        let mut best = i64::MAX;
        let n = basis.len();
        let mut counters = vec![-range; n];
        'outer: loop {
            let mut v = vec![0i64; dim];
            for (c, row) in counters.iter().zip(basis) {
                for (vj, rj) in v.iter_mut().zip(row) {
                    *vj += c * rj;
                }
            }
            let norm = dot_ii(&v, &v);
            if norm > 0 && norm < best {
                best = norm;
            }
            for i in 0..n {
                counters[i] += 1;
                if counters[i] <= range {
                    continue 'outer;
                }
                counters[i] = -range;
            }
            break;
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_brute_force_2d(
            a in -12i64..12, b in -12i64..12, c in -12i64..12, d in -12i64..12,
        ) {
            prop_assume!(a * d - b * c != 0);
            let mut basis = vec![vec![a, b], vec![c, d]];
            lll_reduce(&mut basis, &LllParams::default());
            let v = shortest_vector(&basis).unwrap();
            let expected = brute_force_shortest(&basis, 4);
            prop_assert_eq!(dot_ii(&v, &v), expected);
        }

        #[test]
        fn prop_matches_brute_force_3d(
            rows in proptest::collection::vec(
                proptest::collection::vec(-8i64..8, 3), 3),
        ) {
            let gso = Gso::new(rows.clone());
            prop_assume!(gso.b_star_sq.iter().all(|&x| x > 1e-6));
            let mut basis = rows;
            lll_reduce(&mut basis, &LllParams::default());
            let v = shortest_vector(&basis).unwrap();
            let expected = brute_force_shortest(&basis, 3);
            prop_assert_eq!(dot_ii(&v, &v), expected);
        }
    }
}
