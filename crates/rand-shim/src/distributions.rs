//! Distributions: the `Standard` uniform-over-domain distribution and the
//! uniform range sampling behind `Rng::gen_range`.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// Uniform over the whole domain of the type (`[0, 1)` for floats).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $gen:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$gen() as $t
            }
        }
    )*};
}

standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
    isize => next_u64,
);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i128 {
        ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as i128
    }
}

/// Uniform range sampling.
pub mod uniform {
    use crate::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A range that `Rng::gen_range` can sample from.
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Unbiased sampling of a value in `[0, span)` by rejection.
    fn sample_below_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    fn sample_below_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
        debug_assert!(span > 0);
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let v = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
            if v <= zone {
                return v % span;
            }
        }
    }

    macro_rules! int_range {
        ($($t:ty as $u:ty, $below:ident, $next:ident);* $(;)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u);
                    self.start.wrapping_add($below(rng, span) as $t)
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as $u).wrapping_sub(start as $u).wrapping_add(1);
                    if span == 0 {
                        // The range covers the type's whole domain.
                        return rng.$next() as $t;
                    }
                    start.wrapping_add($below(rng, span) as $t)
                }
            }
        )*};
    }

    int_range!(
        u8 as u64, sample_below_u64, next_u64;
        u16 as u64, sample_below_u64, next_u64;
        u32 as u64, sample_below_u64, next_u64;
        u64 as u64, sample_below_u64, next_u64;
        usize as u64, sample_below_u64, next_u64;
        i8 as u64, sample_below_u64, next_u64;
        i16 as u64, sample_below_u64, next_u64;
        i32 as u64, sample_below_u64, next_u64;
        i64 as u64, sample_below_u64, next_u64;
        isize as u64, sample_below_u64, next_u64;
    );

    impl SampleRange<u128> for Range<u128> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> u128 {
            assert!(self.start < self.end, "cannot sample empty range");
            let span = self.end.wrapping_sub(self.start);
            self.start.wrapping_add(sample_below_u128(rng, span))
        }
    }

    impl SampleRange<i128> for Range<i128> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> i128 {
            assert!(self.start < self.end, "cannot sample empty range");
            let span = (self.end as u128).wrapping_sub(self.start as u128);
            self.start
                .wrapping_add(sample_below_u128(rng, span) as i128)
        }
    }

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    let v = self.start + (self.end - self.start) * u;
                    // Guard against rounding up to the excluded endpoint.
                    if v >= self.end { self.start } else { v }
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let u = (rng.next_u64() >> 11) as $t
                        * (1.0 / ((1u64 << 53) - 1) as $t);
                    start + (end - start) * u
                }
            }
        )*};
    }

    float_range!(f32, f64);
}
