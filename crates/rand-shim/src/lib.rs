#![forbid(unsafe_code)]

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the workspace vendors the *subset* of the `rand` 0.8 API it actually uses:
//!
//! - [`Rng`] with `gen`, `gen_range`, `gen_bool` and `sample`;
//! - [`SeedableRng`] with `seed_from_u64` (the only constructor the
//!   deterministic experiments use);
//! - [`rngs::StdRng`], backed by xoshiro256++ seeded through SplitMix64;
//! - [`seq::SliceRandom`] with `shuffle` and `choose`;
//! - [`distributions::Distribution`] and [`distributions::Standard`].
//!
//! The value streams differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), but every consumer in this workspace relies only on seeded
//! determinism and statistical quality, not on exact upstream streams.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The low-level source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution (uniform over the
    /// type's domain; `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples a value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds the generator from ambient entropy (wall clock); only suitable
    /// where reproducibility is not required.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xDEAD_BEEF);
        Self::seed_from_u64(nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(0u32..17);
            assert!(v < 17);
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 appear");
    }

    #[test]
    fn unsized_rng_works_through_references() {
        // Mirrors the workspace idiom `fn f<R: Rng + ?Sized>(rng: &mut R)`.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(0..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut StdRng = &mut rng;
        assert!(draw(dyn_rng) < 100);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Overwhelmingly unlikely to be the identity permutation.
        assert_ne!(v, sorted);
    }

    #[test]
    fn mean_of_standard_f64_is_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
