//! BFV encryption — the operation the RevEAL attack observes.

use crate::context::{BfvContext, Ciphertext, Plaintext};
use crate::keys::PublicKey;
use crate::sampler::{sample_ternary, set_poly_coeffs_normal, NullProbe, SamplerProbe};
use rand::Rng;
use reveal_math::RnsPolynomial;

/// Encrypts plaintexts with a public key:
/// `(c0, c1) = ([Δ·m + p0·u + e1]_q, [p1·u + e2]_q)`.
///
/// Both error polynomials `e1` and `e2` are drawn by the vulnerable
/// [`set_poly_coeffs_normal`] routine; pass a [`SamplerProbe`] to
/// [`Encryptor::encrypt_observed`] to watch that sampling the way a
/// side-channel adversary would.
///
/// # Examples
///
/// ```
/// use reveal_bfv::{BfvContext, EncryptionParameters, Encryptor, KeyGenerator, Plaintext};
/// use rand::SeedableRng;
/// let ctx = BfvContext::new(EncryptionParameters::seal_128_paper()?)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let keygen = KeyGenerator::new(&ctx);
/// let sk = keygen.secret_key(&mut rng);
/// let pk = keygen.public_key(&sk, &mut rng);
/// let encryptor = Encryptor::new(&ctx, &pk);
/// let ct = encryptor.encrypt(&Plaintext::constant(&ctx, 7), &mut rng);
/// assert_eq!(ct.size(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Encryptor {
    context: BfvContext,
    public_key: PublicKey,
}

/// The ephemeral randomness of one encryption, exposed for ground-truth
/// checks in attack experiments (a real adversary never sees this).
#[derive(Debug, Clone, PartialEq)]
pub struct EncryptionWitness {
    /// The ternary encryption sample `u`.
    pub u: Vec<i64>,
    /// First error polynomial `e1` (signed coefficients).
    pub e1: Vec<i64>,
    /// Second error polynomial `e2` (signed coefficients).
    pub e2: Vec<i64>,
}

impl Encryptor {
    /// Binds an encryptor to a context and public key.
    pub fn new(context: &BfvContext, public_key: &PublicKey) -> Self {
        Self {
            context: context.clone(),
            public_key: public_key.clone(),
        }
    }

    /// Encrypts `plain`, discarding all side-channel observations.
    pub fn encrypt<R: Rng + ?Sized>(&self, plain: &Plaintext, rng: &mut R) -> Ciphertext {
        self.encrypt_observed(plain, rng, &mut NullProbe, &mut NullProbe)
            .0
    }

    /// Encrypts `plain` while reporting the sampling of `e1` to `probe_e1`
    /// and of `e2` to `probe_e2`, and returns the ground-truth witness.
    ///
    /// The two probes correspond to the two `set_poly_coeffs_normal` calls a
    /// single power trace of SEAL's encryption covers.
    pub fn encrypt_observed<R, P1, P2>(
        &self,
        plain: &Plaintext,
        rng: &mut R,
        probe_e1: &mut P1,
        probe_e2: &mut P2,
    ) -> (Ciphertext, EncryptionWitness)
    where
        R: Rng + ?Sized,
        P1: SamplerProbe,
        P2: SamplerProbe,
    {
        let basis = self.context.basis();
        let parms = self.context.parms();
        let n = self.context.degree();
        let k = parms.coeff_modulus().len();

        // Sample u <- R_2.
        let u_signed = sample_ternary(n, rng);
        let u = basis.from_signed(&u_signed);

        // Sample e1, e2 <- χ via the vulnerable routine.
        let mut e1_flat = vec![0u64; n * k];
        set_poly_coeffs_normal(&mut e1_flat, rng, parms, probe_e1);
        let e1 = RnsPolynomial::from_flat(basis, &e1_flat);

        let mut e2_flat = vec![0u64; n * k];
        set_poly_coeffs_normal(&mut e2_flat, rng, parms, probe_e2);
        let e2 = RnsPolynomial::from_flat(basis, &e2_flat);

        // c0 = Δ·m + p0·u + e1 ; c1 = p1·u + e2.
        let delta_m = self.context.plain_to_delta_rns(plain);
        let c0 = delta_m.add(&self.public_key.p0().mul(&u)).add(&e1);
        let c1 = self.public_key.p1().mul(&u).add(&e2);

        let witness = EncryptionWitness {
            u: u_signed,
            e1: signed_of(&e1),
            e2: signed_of(&e2),
        };
        (Ciphertext::from_parts(vec![c0, c1]), witness)
    }
}

/// Recovers the signed coefficients of a small-norm RNS polynomial from its
/// first residue (valid because |coeff| << q_0 / 2 for noise polynomials).
fn signed_of(p: &RnsPolynomial) -> Vec<i64> {
    p.residues()[0].to_signed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EncryptionParameters;
    use crate::sampler::RecordingProbe;
    use crate::KeyGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (BfvContext, crate::keys::SecretKey, PublicKey) {
        let ctx = BfvContext::new(EncryptionParameters::seal_128_paper().unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let keygen = KeyGenerator::new(&ctx);
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&sk, &mut rng);
        (ctx, sk, pk)
    }

    #[test]
    fn witness_matches_ciphertext_algebra() {
        // c1 - p1·u - e2 must be exactly zero.
        let (ctx, _sk, pk) = setup();
        let enc = Encryptor::new(&ctx, &pk);
        let mut rng = StdRng::seed_from_u64(7);
        let plain = Plaintext::constant(&ctx, 9);
        let (ct, wit) = enc.encrypt_observed(&plain, &mut rng, &mut NullProbe, &mut NullProbe);
        let basis = ctx.basis();
        let u = basis.from_signed(&wit.u);
        let e2 = basis.from_signed(&wit.e2);
        let residual = ct.c1().sub(&pk.p1().mul(&u)).sub(&e2);
        assert!(residual.residues()[0].is_zero());

        let e1 = basis.from_signed(&wit.e1);
        let delta_m = ctx.plain_to_delta_rns(&plain);
        let residual0 = ct.c0().sub(&delta_m).sub(&pk.p0().mul(&u)).sub(&e1);
        assert!(residual0.residues()[0].is_zero());
    }

    #[test]
    fn fresh_errors_every_encryption() {
        let (ctx, _sk, pk) = setup();
        let enc = Encryptor::new(&ctx, &pk);
        let mut rng = StdRng::seed_from_u64(8);
        let plain = Plaintext::constant(&ctx, 1);
        let (_, w1) = enc.encrypt_observed(&plain, &mut rng, &mut NullProbe, &mut NullProbe);
        let (_, w2) = enc.encrypt_observed(&plain, &mut rng, &mut NullProbe, &mut NullProbe);
        assert_ne!(w1.e1, w2.e1);
        assert_ne!(w1.e2, w2.e2);
        assert_ne!(w1.u, w2.u);
    }

    #[test]
    fn probes_observe_both_error_polynomials() {
        let (ctx, _sk, pk) = setup();
        let enc = Encryptor::new(&ctx, &pk);
        let mut rng = StdRng::seed_from_u64(9);
        let mut probe1 = RecordingProbe::new();
        let mut probe2 = RecordingProbe::new();
        let (_, wit) = enc.encrypt_observed(
            &Plaintext::constant(&ctx, 2),
            &mut rng,
            &mut probe1,
            &mut probe2,
        );
        // Each probe saw 1024 coefficient windows.
        let count = |p: &RecordingProbe| {
            p.events()
                .iter()
                .filter(|e| matches!(e, crate::sampler::SamplerEvent::CoefficientStart { .. }))
                .count()
        };
        assert_eq!(count(&probe1), 1024);
        assert_eq!(count(&probe2), 1024);
        // Probe values match the witness.
        let values: Vec<i64> = probe2
            .events()
            .iter()
            .filter_map(|e| match e {
                crate::sampler::SamplerEvent::DistributionSample { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(values, wit.e2);
    }
}
