//! SEAL-style binary serialization for keys, plaintexts and ciphertexts.
//!
//! A compact little-endian format with a magic/version header and a
//! parameter echo, so loading validates that the object matches the
//! receiving context (SEAL's `parms_id` check, simplified).

use crate::context::{BfvContext, Ciphertext, Plaintext};
use crate::keys::{PublicKey, SecretKey};
use reveal_math::RnsPolynomial;
use std::fmt;

/// Magic bytes opening every serialized object.
pub const MAGIC: &[u8; 5] = b"RVEAL";
/// Format version.
pub const VERSION: u8 = 1;

/// Object tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Tag {
    Plaintext = 1,
    Ciphertext = 2,
    SecretKey = 3,
    PublicKey = 4,
}

/// Errors from (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// The buffer did not start with the expected magic/version.
    BadHeader,
    /// The object tag did not match the requested type.
    WrongTag { expected: u8, got: u8 },
    /// The parameter echo did not match the receiving context.
    ParameterMismatch,
    /// The buffer ended early or carried trailing garbage.
    Truncated,
    /// A value failed validation (e.g. unreduced residue).
    InvalidValue,
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::BadHeader => write!(f, "bad magic or version"),
            SerializeError::WrongTag { expected, got } => {
                write!(f, "expected object tag {expected}, got {got}")
            }
            SerializeError::ParameterMismatch => {
                write!(f, "object was produced under different parameters")
            }
            SerializeError::Truncated => write!(f, "buffer truncated or has trailing bytes"),
            SerializeError::InvalidValue => write!(f, "a deserialized value failed validation"),
        }
    }
}

impl std::error::Error for SerializeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(tag: Tag, ctx: &BfvContext) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.push(tag as u8);
        let mut w = Self { buf };
        // Parameter echo.
        w.u64(ctx.degree() as u64);
        w.u64(ctx.parms().coeff_modulus().len() as u64);
        for m in ctx.parms().coeff_modulus() {
            w.u64(m.value());
        }
        w.u64(ctx.parms().plain_modulus().value());
        w
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    fn poly(&mut self, p: &RnsPolynomial) {
        for r in p.residues() {
            for &c in r.coeffs() {
                self.u64(c);
            }
        }
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], tag: Tag, ctx: &BfvContext) -> Result<Self, SerializeError> {
        let mut r = Self { buf, pos: 0 };
        let magic = r.bytes(5)?;
        if magic != MAGIC || r.u8()? != VERSION {
            return Err(SerializeError::BadHeader);
        }
        let got = r.u8()?;
        if got != tag as u8 {
            return Err(SerializeError::WrongTag {
                expected: tag as u8,
                got,
            });
        }
        // Parameter echo.
        let n = r.u64()?;
        let k = r.u64()?;
        if n != ctx.degree() as u64 || k != ctx.parms().coeff_modulus().len() as u64 {
            return Err(SerializeError::ParameterMismatch);
        }
        for m in ctx.parms().coeff_modulus() {
            if r.u64()? != m.value() {
                return Err(SerializeError::ParameterMismatch);
            }
        }
        if r.u64()? != ctx.parms().plain_modulus().value() {
            return Err(SerializeError::ParameterMismatch);
        }
        Ok(r)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SerializeError> {
        if self.pos + n > self.buf.len() {
            return Err(SerializeError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SerializeError> {
        Ok(self.bytes(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, SerializeError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn i8(&mut self) -> Result<i8, SerializeError> {
        Ok(self.u8()? as i8)
    }

    fn poly(&mut self, ctx: &BfvContext) -> Result<RnsPolynomial, SerializeError> {
        let n = ctx.degree();
        let k = ctx.parms().coeff_modulus().len();
        let mut flat = Vec::with_capacity(n * k);
        for j in 0..k {
            let q = ctx.parms().coeff_modulus()[j].value();
            for _ in 0..n {
                let c = self.u64()?;
                if c >= q {
                    return Err(SerializeError::InvalidValue);
                }
                flat.push(c);
            }
        }
        Ok(RnsPolynomial::from_flat(ctx.basis(), &flat))
    }

    fn done(&self) -> Result<(), SerializeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SerializeError::Truncated)
        }
    }
}

/// Serializes a plaintext.
pub fn save_plaintext(ctx: &BfvContext, p: &Plaintext) -> Vec<u8> {
    let mut w = Writer::new(Tag::Plaintext, ctx);
    for &c in p.coeffs() {
        w.u64(c);
    }
    w.finish()
}

/// Deserializes a plaintext.
///
/// # Errors
///
/// Fails on header/parameter mismatch, truncation, or unreduced values.
pub fn load_plaintext(ctx: &BfvContext, bytes: &[u8]) -> Result<Plaintext, SerializeError> {
    let mut r = Reader::new(bytes, Tag::Plaintext, ctx)?;
    let t = ctx.parms().plain_modulus().value();
    let mut coeffs = Vec::with_capacity(ctx.degree());
    for _ in 0..ctx.degree() {
        let c = r.u64()?;
        if c >= t {
            return Err(SerializeError::InvalidValue);
        }
        coeffs.push(c);
    }
    r.done()?;
    Ok(Plaintext::new(ctx, &coeffs))
}

/// Serializes a ciphertext (any size).
pub fn save_ciphertext(ctx: &BfvContext, ct: &Ciphertext) -> Vec<u8> {
    let mut w = Writer::new(Tag::Ciphertext, ctx);
    w.u64(ct.size() as u64);
    for part in ct.parts() {
        w.poly(part);
    }
    w.finish()
}

/// Deserializes a ciphertext.
///
/// # Errors
///
/// Same classes as [`load_plaintext`].
pub fn load_ciphertext(ctx: &BfvContext, bytes: &[u8]) -> Result<Ciphertext, SerializeError> {
    let mut r = Reader::new(bytes, Tag::Ciphertext, ctx)?;
    let size = r.u64()? as usize;
    if !(2..=8).contains(&size) {
        return Err(SerializeError::InvalidValue);
    }
    let mut parts = Vec::with_capacity(size);
    for _ in 0..size {
        parts.push(r.poly(ctx)?);
    }
    r.done()?;
    Ok(Ciphertext::from_parts(parts))
}

/// Serializes a secret key (compactly, as ternary signs).
pub fn save_secret_key(ctx: &BfvContext, sk: &SecretKey) -> Vec<u8> {
    let mut w = Writer::new(Tag::SecretKey, ctx);
    for &c in sk.coefficients() {
        w.i8(c as i8);
    }
    w.finish()
}

/// Deserializes a secret key.
///
/// # Errors
///
/// Fails on non-ternary coefficients or the usual format errors.
pub fn load_secret_key(ctx: &BfvContext, bytes: &[u8]) -> Result<SecretKey, SerializeError> {
    let mut r = Reader::new(bytes, Tag::SecretKey, ctx)?;
    let mut s_signed = Vec::with_capacity(ctx.degree());
    for _ in 0..ctx.degree() {
        let v = r.i8()? as i64;
        if !(-1..=1).contains(&v) {
            return Err(SerializeError::InvalidValue);
        }
        s_signed.push(v);
    }
    r.done()?;
    Ok(SecretKey::from_coefficients(ctx, s_signed))
}

/// Serializes a public key.
pub fn save_public_key(ctx: &BfvContext, pk: &PublicKey) -> Vec<u8> {
    let mut w = Writer::new(Tag::PublicKey, ctx);
    w.poly(pk.p0());
    w.poly(pk.p1());
    w.finish()
}

/// Deserializes a public key.
///
/// # Errors
///
/// Same classes as [`load_plaintext`].
pub fn load_public_key(ctx: &BfvContext, bytes: &[u8]) -> Result<PublicKey, SerializeError> {
    let mut r = Reader::new(bytes, Tag::PublicKey, ctx)?;
    let p0 = r.poly(ctx)?;
    let p1 = r.poly(ctx)?;
    r.done()?;
    Ok(PublicKey::from_parts(p0, p1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EncryptionParameters;
    use crate::{Decryptor, Encryptor, KeyGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (BfvContext, SecretKey, PublicKey, StdRng) {
        let ctx = BfvContext::new(EncryptionParameters::seal_128_paper().unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let keygen = KeyGenerator::new(&ctx);
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&sk, &mut rng);
        (ctx, sk, pk, rng)
    }

    #[test]
    fn plaintext_roundtrip() {
        let (ctx, _, _, _) = setup();
        let mut coeffs = vec![0u64; 1024];
        coeffs[0] = 255;
        coeffs[777] = 128;
        let p = Plaintext::new(&ctx, &coeffs);
        let bytes = save_plaintext(&ctx, &p);
        assert_eq!(load_plaintext(&ctx, &bytes).unwrap().coeffs(), p.coeffs());
    }

    #[test]
    fn ciphertext_roundtrip_decrypts() {
        let (ctx, sk, pk, mut rng) = setup();
        let enc = Encryptor::new(&ctx, &pk);
        let dec = Decryptor::new(&ctx, &sk);
        let ct = enc.encrypt(&Plaintext::constant(&ctx, 99), &mut rng);
        let bytes = save_ciphertext(&ctx, &ct);
        let back = load_ciphertext(&ctx, &bytes).unwrap();
        assert_eq!(dec.decrypt(&back).coeffs()[0], 99);
    }

    #[test]
    fn key_roundtrips_preserve_function() {
        let (ctx, sk, pk, mut rng) = setup();
        let sk2 = load_secret_key(&ctx, &save_secret_key(&ctx, &sk)).unwrap();
        let pk2 = load_public_key(&ctx, &save_public_key(&ctx, &pk)).unwrap();
        assert_eq!(sk2.coefficients(), sk.coefficients());
        // Encrypt with the loaded pk, decrypt with the loaded sk.
        let enc = Encryptor::new(&ctx, &pk2);
        let dec = Decryptor::new(&ctx, &sk2);
        let ct = enc.encrypt(&Plaintext::constant(&ctx, 42), &mut rng);
        assert_eq!(dec.decrypt(&ct).coeffs()[0], 42);
    }

    #[test]
    fn header_and_tag_validation() {
        let (ctx, sk, _, _) = setup();
        let mut bytes = save_secret_key(&ctx, &sk);
        // Wrong type requested.
        assert!(matches!(
            load_public_key(&ctx, &bytes),
            Err(SerializeError::WrongTag { .. })
        ));
        // Corrupt magic.
        bytes[0] = b'X';
        assert_eq!(
            load_secret_key(&ctx, &bytes),
            Err(SerializeError::BadHeader)
        );
    }

    #[test]
    fn parameter_mismatch_detected() {
        use reveal_math::Modulus;
        let (ctx, _, pk, _) = setup();
        let other = BfvContext::new(
            EncryptionParameters::new(
                1024,
                vec![Modulus::new(132120577).unwrap()],
                Modulus::new(128).unwrap(),
            )
            .unwrap(),
        )
        .unwrap();
        let bytes = save_public_key(&ctx, &pk);
        assert_eq!(
            load_public_key(&other, &bytes),
            Err(SerializeError::ParameterMismatch)
        );
    }

    #[test]
    fn truncation_and_garbage_detected() {
        let (ctx, _, pk, _) = setup();
        let bytes = save_public_key(&ctx, &pk);
        assert_eq!(
            load_public_key(&ctx, &bytes[..bytes.len() - 1]),
            Err(SerializeError::Truncated)
        );
        let mut longer = bytes.clone();
        longer.push(0);
        assert_eq!(
            load_public_key(&ctx, &longer),
            Err(SerializeError::Truncated)
        );
    }

    #[test]
    fn unreduced_values_rejected() {
        let (ctx, _, pk, _) = setup();
        let mut bytes = save_public_key(&ctx, &pk);
        // Overwrite the first residue with q (unreduced). Header = 5 + 1 + 1
        // + 8 (n) + 8 (k) + 8 (q) + 8 (t) = 39 bytes.
        let q = 132120577u64;
        bytes[39..47].copy_from_slice(&q.to_le_bytes());
        assert_eq!(
            load_public_key(&ctx, &bytes),
            Err(SerializeError::InvalidValue)
        );
    }

    #[test]
    fn non_ternary_secret_rejected() {
        let (ctx, sk, _, _) = setup();
        let mut bytes = save_secret_key(&ctx, &sk);
        let header = 39usize;
        bytes[header] = 7;
        assert_eq!(
            load_secret_key(&ctx, &bytes),
            Err(SerializeError::InvalidValue)
        );
    }
}
