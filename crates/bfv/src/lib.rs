#![forbid(unsafe_code)]
// Indexed loops are the clearest notation for the dense numeric kernels
// in this workspace (convolutions, scatter matrices, lattice bases).
#![allow(clippy::needless_range_loop)]

//! # reveal-bfv
//!
//! A from-scratch implementation of the Brakerski/Fan-Vercauteren (BFV)
//! homomorphic encryption scheme in the style of Microsoft SEAL **v3.2** —
//! the version the RevEAL paper attacks. The crate deliberately reproduces
//! the *vulnerable* Gaussian sampler of that release
//! ([`sampler::set_poly_coeffs_normal`], Fig. 2 of the paper): an
//! `if (noise > 0) / else if (noise < 0) / else` ladder whose control flow and
//! operand values leak through power side channels.
//!
//! ## What's here
//!
//! - [`EncryptionParameters`] / [`BfvContext`]: parameter validation and
//!   precomputation, including the paper's SEAL-128 set
//!   (`n = 1024, q = 132120577, t = 256, σ = 3.19`).
//! - [`KeyGenerator`], [`Encryptor`], [`Decryptor`], [`Evaluator`]: the four
//!   HE functions of Fig. 1 (KeyGen / Encrypt / Decrypt / Evaluate).
//! - [`sampler`]: `ClippedNormalDistribution`, the vulnerable
//!   `set_poly_coeffs_normal`, ternary and uniform samplers, and the
//!   [`sampler::SamplerProbe`] observation interface that the leakage
//!   simulators attach to.
//! - [`IntegerEncoder`] / [`BatchEncoder`]: plaintext encoders.
//!
//! ## Quick example
//!
//! ```
//! use reveal_bfv::{BfvContext, EncryptionParameters, Encryptor, Decryptor,
//!                  KeyGenerator, Plaintext};
//! use rand::SeedableRng;
//!
//! let ctx = BfvContext::new(EncryptionParameters::seal_128_paper()?)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let keygen = KeyGenerator::new(&ctx);
//! let sk = keygen.secret_key(&mut rng);
//! let pk = keygen.public_key(&sk, &mut rng);
//!
//! let ct = Encryptor::new(&ctx, &pk).encrypt(&Plaintext::constant(&ctx, 42), &mut rng);
//! let m = Decryptor::new(&ctx, &sk).decrypt(&ct);
//! assert_eq!(m.coeffs()[0], 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod context;
pub mod decryptor;
pub mod encoder;
pub mod encryptor;
pub mod evaluator;
pub mod keys;
pub mod params;
pub mod sampler;
pub mod serialization;
pub mod variants;

pub use context::{BfvContext, Ciphertext, Plaintext};
pub use decryptor::Decryptor;
pub use encoder::{BatchEncoder, EncodeError, IntegerEncoder};
pub use encryptor::{EncryptionWitness, Encryptor};
pub use evaluator::{EvaluateError, Evaluator};
pub use keys::{KeyGenerator, PublicKey, RelinKeys, SecretKey};
pub use params::{
    EncryptionParameters, ParameterError, SecurityLevel, DEFAULT_NOISE_MAX_DEVIATION,
    DEFAULT_NOISE_STANDARD_DEVIATION,
};
pub use sampler::{
    set_poly_coeffs_normal, ClippedNormalDistribution, NullProbe, RecordingProbe, SamplerEvent,
    SamplerProbe, SignBranch,
};
pub use serialization::{
    load_ciphertext, load_plaintext, load_public_key, load_secret_key, save_ciphertext,
    save_plaintext, save_public_key, save_secret_key, SerializeError,
};
