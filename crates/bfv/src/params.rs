//! Encryption parameters in the style of SEAL v3.2's `EncryptionParameters`.

use reveal_math::primes::{ntt_primes, PrimeError};
use reveal_math::{Modulus, ModulusError, RnsBasis, RnsError};
use std::fmt;

/// Default noise standard deviation used by SEAL: `3.19 ≈ 8 / sqrt(2π)`.
pub const DEFAULT_NOISE_STANDARD_DEVIATION: f64 = 3.19;

/// Default clipping bound on the noise distribution.
///
/// The RevEAL paper states "each sampled coefficient is between -41 and 41"
/// for σ = 3.19, so the maximum deviation is 41.
pub const DEFAULT_NOISE_MAX_DEVIATION: f64 = 41.0;

/// Errors produced when validating [`EncryptionParameters`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParameterError {
    /// `poly_modulus_degree` is not a supported power of two.
    BadDegree(usize),
    /// The coefficient modulus chain is invalid.
    Rns(RnsError),
    /// A modulus could not be constructed.
    Modulus(ModulusError),
    /// Prime generation failed.
    Prime(PrimeError),
    /// The plain modulus is too large relative to the coefficient modulus.
    PlainModulusTooLarge { t: u64, q_bits: u32 },
}

impl fmt::Display for ParameterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParameterError::BadDegree(n) => {
                write!(
                    f,
                    "poly_modulus_degree {n} must be a power of two in [8, 32768]"
                )
            }
            ParameterError::Rns(e) => write!(f, "coefficient modulus chain invalid: {e}"),
            ParameterError::Modulus(e) => write!(f, "modulus invalid: {e}"),
            ParameterError::Prime(e) => write!(f, "prime generation failed: {e}"),
            ParameterError::PlainModulusTooLarge { t, q_bits } => {
                write!(
                    f,
                    "plain modulus {t} too large for a {q_bits}-bit coefficient modulus"
                )
            }
        }
    }
}

impl std::error::Error for ParameterError {}

impl From<RnsError> for ParameterError {
    fn from(e: RnsError) -> Self {
        ParameterError::Rns(e)
    }
}

impl From<ModulusError> for ParameterError {
    fn from(e: ModulusError) -> Self {
        ParameterError::Modulus(e)
    }
}

impl From<PrimeError> for ParameterError {
    fn from(e: PrimeError) -> Self {
        ParameterError::Prime(e)
    }
}

/// Security level presets matching SEAL's default tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityLevel {
    /// 128-bit classical security (the paper's target).
    Tc128,
    /// 192-bit classical security.
    Tc192,
    /// 256-bit classical security.
    Tc256,
}

impl SecurityLevel {
    /// Total coefficient-modulus bit budget for a given degree, following the
    /// homomorphic-encryption-standard tables SEAL ships.
    pub fn max_coeff_modulus_bits(self, degree: usize) -> u32 {
        let table: &[(usize, u32, u32, u32)] = &[
            (1024, 27, 19, 14),
            (2048, 54, 37, 29),
            (4096, 109, 75, 58),
            (8192, 218, 152, 118),
            (16384, 438, 300, 237),
            (32768, 881, 600, 476),
        ];
        for &(n, b128, b192, b256) in table {
            if n == degree {
                return match self {
                    SecurityLevel::Tc128 => b128,
                    SecurityLevel::Tc192 => b192,
                    SecurityLevel::Tc256 => b256,
                };
            }
        }
        0
    }
}

/// The full parameter set of a BFV context.
///
/// # Examples
///
/// ```
/// use reveal_bfv::EncryptionParameters;
/// let parms = EncryptionParameters::seal_128_paper()?;
/// assert_eq!(parms.poly_modulus_degree(), 1024);
/// assert_eq!(parms.coeff_modulus()[0].value(), 132120577);
/// # Ok::<(), reveal_bfv::ParameterError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EncryptionParameters {
    poly_modulus_degree: usize,
    coeff_modulus: Vec<Modulus>,
    plain_modulus: Modulus,
    noise_standard_deviation: f64,
    noise_max_deviation: f64,
}

impl EncryptionParameters {
    /// Creates a parameter set from explicit values.
    ///
    /// # Errors
    ///
    /// Returns an error when the degree is not a power of two in
    /// `[8, 32768]`, the moduli are invalid, or `t` is not smaller than every
    /// coefficient modulus prime.
    pub fn new(
        poly_modulus_degree: usize,
        coeff_modulus: Vec<Modulus>,
        plain_modulus: Modulus,
    ) -> Result<Self, ParameterError> {
        if !poly_modulus_degree.is_power_of_two() || !(8..=32768).contains(&poly_modulus_degree) {
            return Err(ParameterError::BadDegree(poly_modulus_degree));
        }
        let q_bits: u32 = coeff_modulus.iter().map(|m| m.bit_count()).sum();
        if let Some(min) = coeff_modulus.iter().map(|m| m.value()).min() {
            if plain_modulus.value() >= min {
                return Err(ParameterError::PlainModulusTooLarge {
                    t: plain_modulus.value(),
                    q_bits,
                });
            }
        }
        // Validates coprimality and NTT support as a side effect.
        RnsBasis::new(poly_modulus_degree, coeff_modulus.clone())?;
        Ok(Self {
            poly_modulus_degree,
            coeff_modulus,
            plain_modulus,
            noise_standard_deviation: DEFAULT_NOISE_STANDARD_DEVIATION,
            noise_max_deviation: DEFAULT_NOISE_MAX_DEVIATION,
        })
    }

    /// The exact parameter set the RevEAL paper attacks: SEAL-128 with
    /// `n = 1024`, `q = 132120577`, `t = 256`, `σ = 3.19`.
    pub fn seal_128_paper() -> Result<Self, ParameterError> {
        Self::new(1024, vec![Modulus::new(132120577)?], Modulus::new(256)?)
    }

    /// SEAL-style defaults for a given degree and security level:
    /// NTT-friendly primes filling the standard bit budget.
    ///
    /// # Errors
    ///
    /// Fails for degrees without a standard budget or when prime generation
    /// fails.
    pub fn with_default_moduli(
        degree: usize,
        level: SecurityLevel,
        plain_modulus: u64,
    ) -> Result<Self, ParameterError> {
        let budget = level.max_coeff_modulus_bits(degree);
        if budget == 0 {
            return Err(ParameterError::BadDegree(degree));
        }
        // Split the budget into primes of at most 50 bits (SEAL favours many
        // medium primes over one huge prime).
        let mut sizes = Vec::new();
        let mut remaining = budget;
        while remaining > 0 {
            let take = remaining.min(50).max(20.min(remaining));
            sizes.push(take);
            remaining -= take;
        }
        // Merge a trailing sliver into its neighbour to keep primes >= 20 bits.
        if sizes.len() >= 2 && *sizes.last().unwrap() < 20 {
            let last = sizes.pop().unwrap();
            *sizes.last_mut().unwrap() -= 20 - last;
            sizes.push(20);
        }
        let mut coeff_modulus = Vec::new();
        let mut used: Vec<u64> = Vec::new();
        for &bits in &sizes {
            // Request enough primes at this size to skip duplicates.
            let need = sizes.iter().filter(|&&b| b == bits).count();
            let candidates = ntt_primes(bits, 2 * degree as u64, need + coeff_modulus.len())?;
            for c in candidates {
                if !used.contains(&c.value()) {
                    used.push(c.value());
                    coeff_modulus.push(c);
                    break;
                }
            }
        }
        Self::new(degree, coeff_modulus, Modulus::new(plain_modulus)?)
    }

    /// Polynomial modulus degree `n`.
    #[inline]
    pub fn poly_modulus_degree(&self) -> usize {
        self.poly_modulus_degree
    }

    /// The coefficient modulus chain `q_1, …, q_k`.
    #[inline]
    pub fn coeff_modulus(&self) -> &[Modulus] {
        &self.coeff_modulus
    }

    /// The plaintext modulus `t`.
    #[inline]
    pub fn plain_modulus(&self) -> &Modulus {
        &self.plain_modulus
    }

    /// Gaussian noise standard deviation σ.
    #[inline]
    pub fn noise_standard_deviation(&self) -> f64 {
        self.noise_standard_deviation
    }

    /// Clipping bound of the noise distribution.
    #[inline]
    pub fn noise_max_deviation(&self) -> f64 {
        self.noise_max_deviation
    }

    /// Overrides the noise parameters (used by ablation experiments).
    pub fn set_noise_parameters(&mut self, standard_deviation: f64, max_deviation: f64) {
        assert!(standard_deviation > 0.0 && max_deviation >= standard_deviation);
        self.noise_standard_deviation = standard_deviation;
        self.noise_max_deviation = max_deviation;
    }

    /// Builds the RNS basis for the coefficient modulus chain.
    pub fn rns_basis(&self) -> Result<RnsBasis, ParameterError> {
        Ok(RnsBasis::new(
            self.poly_modulus_degree,
            self.coeff_modulus.clone(),
        )?)
    }

    /// Total bit count of the coefficient modulus.
    pub fn coeff_modulus_bit_count(&self) -> u32 {
        self.coeff_modulus.iter().map(|m| m.bit_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        let p = EncryptionParameters::seal_128_paper().unwrap();
        assert_eq!(p.poly_modulus_degree(), 1024);
        assert_eq!(p.coeff_modulus().len(), 1);
        assert_eq!(p.coeff_modulus()[0].value(), 132120577);
        assert_eq!(p.plain_modulus().value(), 256);
        assert!((p.noise_standard_deviation() - 3.19).abs() < 1e-12);
        assert!((p.noise_max_deviation() - 41.0).abs() < 1e-12);
        assert_eq!(p.coeff_modulus_bit_count(), 27);
    }

    #[test]
    fn default_moduli_respect_budget() {
        for degree in [2048usize, 4096, 8192] {
            let p = EncryptionParameters::with_default_moduli(degree, SecurityLevel::Tc128, 256)
                .unwrap();
            let budget = SecurityLevel::Tc128.max_coeff_modulus_bits(degree);
            assert!(p.coeff_modulus_bit_count() <= budget);
            assert!(p.coeff_modulus_bit_count() >= budget - 4);
            // Every prime must be NTT friendly for this degree.
            for m in p.coeff_modulus() {
                assert_eq!((m.value() - 1) % (2 * degree as u64), 0);
            }
        }
    }

    #[test]
    fn rejects_bad_degree() {
        let q = Modulus::new(132120577).unwrap();
        let t = Modulus::new(256).unwrap();
        assert!(matches!(
            EncryptionParameters::new(1000, vec![q], t),
            Err(ParameterError::BadDegree(1000))
        ));
        assert!(matches!(
            EncryptionParameters::new(4, vec![q], t),
            Err(ParameterError::BadDegree(4))
        ));
    }

    #[test]
    fn rejects_oversized_plain_modulus() {
        let q = Modulus::new(132120577).unwrap();
        let t = Modulus::new(132120577).unwrap();
        assert!(matches!(
            EncryptionParameters::new(1024, vec![q], t),
            Err(ParameterError::PlainModulusTooLarge { .. })
        ));
    }

    #[test]
    fn security_table_lookup() {
        assert_eq!(SecurityLevel::Tc128.max_coeff_modulus_bits(1024), 27);
        assert_eq!(SecurityLevel::Tc192.max_coeff_modulus_bits(8192), 152);
        assert_eq!(SecurityLevel::Tc256.max_coeff_modulus_bits(32768), 476);
        assert_eq!(SecurityLevel::Tc128.max_coeff_modulus_bits(1000), 0);
    }

    #[test]
    fn noise_override() {
        let mut p = EncryptionParameters::seal_128_paper().unwrap();
        p.set_noise_parameters(1.0, 6.0);
        assert_eq!(p.noise_standard_deviation(), 1.0);
        assert_eq!(p.noise_max_deviation(), 6.0);
    }
}
