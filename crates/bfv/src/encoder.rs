//! Plaintext encoders: integer (binary) encoding à la SEAL's
//! `IntegerEncoder`, plus a batch encoder for NTT-friendly plain moduli.

use crate::context::{BfvContext, Plaintext};
use reveal_math::NttTables;
use std::fmt;

/// Errors produced by encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The value needs more binary digits than the polynomial degree.
    ValueTooWide { bits: u32, degree: usize },
    /// Batching requires a prime plain modulus `t ≡ 1 mod 2n`.
    BatchingUnsupported { t: u64, degree: usize },
    /// The slot vector length does not match the degree.
    WrongSlotCount { got: usize, expected: usize },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ValueTooWide { bits, degree } => {
                write!(f, "value needs {bits} bits but the degree is only {degree}")
            }
            EncodeError::BatchingUnsupported { t, degree } => {
                write!(
                    f,
                    "plain modulus {t} does not support batching at degree {degree}"
                )
            }
            EncodeError::WrongSlotCount { got, expected } => {
                write!(f, "expected {expected} slots, got {got}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encodes unsigned integers as binary polynomials (`m = Σ bit_i · x^i`).
///
/// Decoding evaluates the polynomial at `x = 2` over the integers, matching
/// SEAL's `IntegerEncoder` with base 2.
///
/// # Examples
///
/// ```
/// use reveal_bfv::{BfvContext, EncryptionParameters, IntegerEncoder};
/// let ctx = BfvContext::new(EncryptionParameters::seal_128_paper()?)?;
/// let encoder = IntegerEncoder::new(&ctx);
/// let p = encoder.encode(1000)?;
/// assert_eq!(encoder.decode(&p), 1000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct IntegerEncoder {
    context: BfvContext,
}

impl IntegerEncoder {
    /// Creates an encoder bound to a context.
    pub fn new(context: &BfvContext) -> Self {
        Self {
            context: context.clone(),
        }
    }

    /// Encodes a non-negative integer as its binary expansion.
    ///
    /// # Errors
    ///
    /// Fails when the value has more bits than the polynomial degree.
    pub fn encode(&self, value: u64) -> Result<Plaintext, EncodeError> {
        let n = self.context.degree();
        let bits = 64 - value.leading_zeros();
        if bits as usize > n {
            return Err(EncodeError::ValueTooWide { bits, degree: n });
        }
        let mut coeffs = vec![0u64; n];
        for (i, c) in coeffs.iter_mut().enumerate().take(bits as usize) {
            *c = (value >> i) & 1;
        }
        Ok(Plaintext::new(&self.context, &coeffs))
    }

    /// Decodes by evaluating at `x = 2`, with coefficients interpreted
    /// centered mod `t` (so homomorphic sums decode correctly until the
    /// coefficients overflow `t`).
    pub fn decode(&self, plain: &Plaintext) -> i64 {
        let t = self.context.parms().plain_modulus();
        let mut acc: i64 = 0;
        for (i, &c) in plain.coeffs().iter().enumerate() {
            let signed = t.to_signed(c);
            if signed != 0 {
                acc += signed << i.min(62);
            }
        }
        acc
    }
}

/// SIMD batching encoder: packs `n` slot values into one plaintext using the
/// NTT over `Z_t` (requires `t` prime, `t ≡ 1 mod 2n`).
#[derive(Debug, Clone)]
pub struct BatchEncoder {
    context: BfvContext,
    tables: NttTables,
}

impl BatchEncoder {
    /// Creates a batch encoder.
    ///
    /// # Errors
    ///
    /// Fails with [`EncodeError::BatchingUnsupported`] when the plain modulus
    /// lacks the required root of unity.
    pub fn new(context: &BfvContext) -> Result<Self, EncodeError> {
        let t = *context.parms().plain_modulus();
        let n = context.degree();
        let tables = NttTables::new(n, t).map_err(|_| EncodeError::BatchingUnsupported {
            t: t.value(),
            degree: n,
        })?;
        Ok(Self {
            context: context.clone(),
            tables,
        })
    }

    /// Packs slot values (each reduced mod `t`) into a plaintext.
    ///
    /// # Errors
    ///
    /// Fails when `slots.len() != n`.
    pub fn encode(&self, slots: &[u64]) -> Result<Plaintext, EncodeError> {
        let n = self.context.degree();
        if slots.len() != n {
            return Err(EncodeError::WrongSlotCount {
                got: slots.len(),
                expected: n,
            });
        }
        let t = self.context.parms().plain_modulus();
        let mut values: Vec<u64> = slots.iter().map(|&s| t.reduce(s)).collect();
        self.tables.inverse(&mut values);
        Ok(Plaintext::new(&self.context, &values))
    }

    /// Unpacks a plaintext back into slot values.
    pub fn decode(&self, plain: &Plaintext) -> Vec<u64> {
        let mut values = plain.coeffs().to_vec();
        self.tables.forward(&mut values);
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EncryptionParameters;
    use crate::{Decryptor, Encryptor, Evaluator, KeyGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reveal_math::Modulus;

    fn ctx() -> BfvContext {
        BfvContext::new(EncryptionParameters::seal_128_paper().unwrap()).unwrap()
    }

    #[test]
    fn integer_roundtrip() {
        let encoder = IntegerEncoder::new(&ctx());
        for v in [0u64, 1, 2, 255, 256, 1000, 123456789] {
            assert_eq!(encoder.decode(&encoder.encode(v).unwrap()), v as i64);
        }
    }

    #[test]
    fn integer_homomorphic_add() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let keygen = KeyGenerator::new(&c);
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&sk, &mut rng);
        let enc = Encryptor::new(&c, &pk);
        let dec = Decryptor::new(&c, &sk);
        let eval = Evaluator::new(&c);
        let encoder = IntegerEncoder::new(&c);
        let ca = enc.encrypt(&encoder.encode(1234).unwrap(), &mut rng);
        let cb = enc.encrypt(&encoder.encode(4321).unwrap(), &mut rng);
        let sum = dec.decrypt(&eval.add(&ca, &cb));
        assert_eq!(encoder.decode(&sum), 5555);
    }

    #[test]
    fn batching_rejected_for_t_256() {
        // t = 256 is not prime, so batching must fail.
        assert!(matches!(
            BatchEncoder::new(&ctx()),
            Err(EncodeError::BatchingUnsupported { .. })
        ));
    }

    #[test]
    fn batching_roundtrip_with_prime_t() {
        // t = 12289 ≡ 1 mod 2048 supports batching at n = 1024.
        let parms = EncryptionParameters::new(
            1024,
            vec![Modulus::new(132120577).unwrap()],
            Modulus::new(12289).unwrap(),
        )
        .unwrap();
        let c = BfvContext::new(parms).unwrap();
        let encoder = BatchEncoder::new(&c).unwrap();
        let slots: Vec<u64> = (0..1024u64).map(|i| i * 7 % 12289).collect();
        let plain = encoder.encode(&slots).unwrap();
        assert_eq!(encoder.decode(&plain), slots);
    }

    #[test]
    fn batched_addition_is_slotwise() {
        let parms = EncryptionParameters::new(
            1024,
            vec![Modulus::new(132120577).unwrap()],
            Modulus::new(12289).unwrap(),
        )
        .unwrap();
        let c = BfvContext::new(parms).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let keygen = KeyGenerator::new(&c);
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&sk, &mut rng);
        let enc = Encryptor::new(&c, &pk);
        let dec = Decryptor::new(&c, &sk);
        let eval = Evaluator::new(&c);
        let encoder = BatchEncoder::new(&c).unwrap();

        let a: Vec<u64> = (0..1024u64).collect();
        let b: Vec<u64> = (0..1024u64).map(|i| i * 3).collect();
        let ca = enc.encrypt(&encoder.encode(&a).unwrap(), &mut rng);
        let cb = enc.encrypt(&encoder.encode(&b).unwrap(), &mut rng);
        let sum = encoder.decode(&dec.decrypt(&eval.add(&ca, &cb)));
        for i in 0..1024usize {
            assert_eq!(sum[i], (a[i] + b[i]) % 12289);
        }
    }

    #[test]
    fn wrong_slot_count_rejected() {
        let parms = EncryptionParameters::new(
            1024,
            vec![Modulus::new(132120577).unwrap()],
            Modulus::new(12289).unwrap(),
        )
        .unwrap();
        let c = BfvContext::new(parms).unwrap();
        let encoder = BatchEncoder::new(&c).unwrap();
        assert!(matches!(
            encoder.encode(&[1, 2, 3]),
            Err(EncodeError::WrongSlotCount {
                got: 3,
                expected: 1024
            })
        ));
    }

    #[test]
    fn oversized_value_rejected() {
        use reveal_math::Modulus;
        let parms = EncryptionParameters::new(
            8,
            vec![Modulus::new(12289).unwrap()],
            Modulus::new(17).unwrap(),
        )
        .unwrap();
        let c = BfvContext::new(parms).unwrap();
        let encoder = IntegerEncoder::new(&c);
        assert!(matches!(
            encoder.encode(1 << 10),
            Err(EncodeError::ValueTooWide { .. })
        ));
        assert!(encoder.encode((1 << 8) - 1).is_ok());
    }
}
