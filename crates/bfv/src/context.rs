//! The BFV context plus plaintext/ciphertext containers.

use crate::params::{EncryptionParameters, ParameterError};
use reveal_math::{BigUint, PolyContext, Polynomial, RnsBasis, RnsPolynomial};
use std::fmt;
use std::sync::Arc;

/// Validated BFV working context: parameters plus every precomputed table.
///
/// # Examples
///
/// ```
/// use reveal_bfv::{BfvContext, EncryptionParameters};
/// let ctx = BfvContext::new(EncryptionParameters::seal_128_paper()?)?;
/// assert_eq!(ctx.delta().to_u64(), Some(132120577 / 256));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct BfvContext {
    inner: Arc<ContextInner>,
}

struct ContextInner {
    parms: EncryptionParameters,
    basis: RnsBasis,
    plain_context: PolyContext,
    /// Δ = floor(q / t).
    delta: BigUint,
    /// Δ mod q_j for each coefficient modulus.
    delta_mod: Vec<u64>,
    /// q mod t (the rounding remainder used in noise analysis).
    q_mod_t: u64,
}

impl fmt::Debug for BfvContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BfvContext")
            .field("n", &self.inner.parms.poly_modulus_degree())
            .field(
                "coeff_modulus",
                &self
                    .inner
                    .parms
                    .coeff_modulus()
                    .iter()
                    .map(|m| m.value())
                    .collect::<Vec<_>>(),
            )
            .field("plain_modulus", &self.inner.parms.plain_modulus().value())
            .finish()
    }
}

impl BfvContext {
    /// Validates parameters and precomputes Δ and CRT tables.
    ///
    /// # Errors
    ///
    /// Propagates any parameter validation failure.
    pub fn new(parms: EncryptionParameters) -> Result<Self, ParameterError> {
        let basis = parms.rns_basis()?;
        let plain_context = PolyContext::new(parms.poly_modulus_degree(), *parms.plain_modulus())
            .map_err(reveal_math::RnsError::Context)
            .map_err(ParameterError::Rns)?;
        let t = parms.plain_modulus().value();
        let (delta, rem) = basis.product().divmod_u64(t);
        let delta_mod = parms
            .coeff_modulus()
            .iter()
            .map(|m| delta.rem_u64(m.value()))
            .collect();
        Ok(Self {
            inner: Arc::new(ContextInner {
                parms,
                basis,
                plain_context,
                delta,
                delta_mod,
                q_mod_t: rem,
            }),
        })
    }

    /// The validated parameters.
    #[inline]
    pub fn parms(&self) -> &EncryptionParameters {
        &self.inner.parms
    }

    /// The RNS basis over the coefficient modulus chain.
    #[inline]
    pub fn basis(&self) -> &RnsBasis {
        &self.inner.basis
    }

    /// Polynomial context for the plaintext ring `R_t`.
    #[inline]
    pub fn plain_context(&self) -> &PolyContext {
        &self.inner.plain_context
    }

    /// Δ = floor(q / t).
    #[inline]
    pub fn delta(&self) -> &BigUint {
        &self.inner.delta
    }

    /// Δ reduced under each coefficient modulus.
    #[inline]
    pub fn delta_mod(&self) -> &[u64] {
        &self.inner.delta_mod
    }

    /// `q mod t`.
    #[inline]
    pub fn q_mod_t(&self) -> u64 {
        self.inner.q_mod_t
    }

    /// Polynomial degree `n`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.inner.parms.poly_modulus_degree()
    }

    /// Lifts a plaintext to `R_q` scaled by Δ (the `Δ·m` term of encryption).
    pub fn plain_to_delta_rns(&self, plain: &Plaintext) -> RnsPolynomial {
        let n = self.degree();
        let residues = self
            .inner
            .basis
            .contexts()
            .iter()
            .zip(self.inner.delta_mod.iter())
            .map(|(ctx, &dm)| {
                let coeffs: Vec<u64> = (0..n)
                    .map(|i| ctx.modulus().mul(dm, plain.poly.coeffs()[i]))
                    .collect();
                ctx.polynomial(&coeffs)
            })
            .collect();
        self.inner.basis.from_residues(residues)
    }

    /// Lifts a plaintext to `R_q` *without* scaling (used by `multiply_plain`).
    pub fn plain_to_rns(&self, plain: &Plaintext) -> RnsPolynomial {
        let n = self.degree();
        let residues = self
            .inner
            .basis
            .contexts()
            .iter()
            .map(|ctx| {
                let coeffs: Vec<u64> = (0..n)
                    .map(|i| ctx.modulus().reduce(plain.poly.coeffs()[i]))
                    .collect();
                ctx.polynomial(&coeffs)
            })
            .collect();
        self.inner.basis.from_residues(residues)
    }

    fn same_context(&self, other: &BfvContext) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.parms.poly_modulus_degree() == other.inner.parms.poly_modulus_degree()
                && self.inner.parms.coeff_modulus() == other.inner.parms.coeff_modulus()
                && self.inner.parms.plain_modulus() == other.inner.parms.plain_modulus())
    }
}

impl PartialEq for BfvContext {
    fn eq(&self, other: &Self) -> bool {
        self.same_context(other)
    }
}

/// A plaintext polynomial in `R_t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plaintext {
    pub(crate) poly: Polynomial,
}

impl Plaintext {
    /// Builds from reduced coefficients in `[0, t)`.
    ///
    /// # Panics
    ///
    /// Panics on length or reduction violations (see [`PolyContext::polynomial`]).
    pub fn new(ctx: &BfvContext, coeffs: &[u64]) -> Self {
        Self {
            poly: ctx.plain_context().polynomial(coeffs),
        }
    }

    /// The zero plaintext.
    pub fn zero(ctx: &BfvContext) -> Self {
        Self {
            poly: ctx.plain_context().zero(),
        }
    }

    /// Builds a constant plaintext.
    pub fn constant(ctx: &BfvContext, value: u64) -> Self {
        Self {
            poly: ctx.plain_context().constant(value),
        }
    }

    /// The reduced coefficients.
    pub fn coeffs(&self) -> &[u64] {
        self.poly.coeffs()
    }

    /// The underlying `R_t` polynomial.
    pub fn poly(&self) -> &Polynomial {
        &self.poly
    }
}

/// A BFV ciphertext: two or more `R_q` polynomials.
///
/// Freshly encrypted ciphertexts have size 2 `(c0, c1)`; unrelinearized
/// products grow to size 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Ciphertext {
    pub(crate) parts: Vec<RnsPolynomial>,
}

impl Ciphertext {
    /// Builds from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two parts are supplied.
    pub fn from_parts(parts: Vec<RnsPolynomial>) -> Self {
        assert!(parts.len() >= 2, "ciphertext needs at least c0 and c1");
        Self { parts }
    }

    /// Number of polynomials (2 for fresh, 3 after multiply).
    #[inline]
    pub fn size(&self) -> usize {
        self.parts.len()
    }

    /// Borrow of the parts, `c0` first.
    #[inline]
    pub fn parts(&self) -> &[RnsPolynomial] {
        &self.parts
    }

    /// `c0`.
    #[inline]
    pub fn c0(&self) -> &RnsPolynomial {
        &self.parts[0]
    }

    /// `c1`.
    #[inline]
    pub fn c1(&self) -> &RnsPolynomial {
        &self.parts[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> BfvContext {
        BfvContext::new(EncryptionParameters::seal_128_paper().unwrap()).unwrap()
    }

    #[test]
    fn delta_matches_paper_parameters() {
        let c = ctx();
        assert_eq!(c.delta().to_u64(), Some(132120577 / 256));
        assert_eq!(c.q_mod_t(), 132120577 % 256);
        assert_eq!(c.delta_mod(), &[132120577 / 256]);
    }

    #[test]
    fn plaintext_construction() {
        let c = ctx();
        let p = Plaintext::constant(&c, 42);
        assert_eq!(p.coeffs()[0], 42);
        assert!(p.coeffs()[1..].iter().all(|&x| x == 0));
        assert_eq!(Plaintext::zero(&c).coeffs(), vec![0u64; 1024].as_slice());
    }

    #[test]
    fn delta_lift_scales_coefficients() {
        let c = ctx();
        let mut coeffs = vec![0u64; 1024];
        coeffs[0] = 3;
        coeffs[5] = 255;
        let p = Plaintext::new(&c, &coeffs);
        let lifted = c.plain_to_delta_rns(&p);
        let q = c.parms().coeff_modulus()[0];
        let delta = c.delta().to_u64().unwrap();
        assert_eq!(lifted.residues()[0].coeffs()[0], q.mul(delta, 3));
        assert_eq!(lifted.residues()[0].coeffs()[5], q.mul(delta, 255));
        assert_eq!(lifted.residues()[0].coeffs()[1], 0);
    }

    #[test]
    fn unscaled_lift_preserves_values() {
        let c = ctx();
        let mut coeffs = vec![0u64; 1024];
        coeffs[7] = 200;
        let p = Plaintext::new(&c, &coeffs);
        let lifted = c.plain_to_rns(&p);
        assert_eq!(lifted.residues()[0].coeffs()[7], 200);
    }

    #[test]
    #[should_panic(expected = "at least c0 and c1")]
    fn ciphertext_needs_two_parts() {
        let c = ctx();
        Ciphertext::from_parts(vec![c.basis().zero()]);
    }

    #[test]
    fn contexts_with_same_parameters_compare_equal() {
        assert_eq!(ctx(), ctx());
    }
}
