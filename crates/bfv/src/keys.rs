//! Key material and key generation for the BFV scheme.

use crate::context::BfvContext;
use crate::sampler::{sample_ternary, sample_uniform, set_poly_coeffs_normal, NullProbe};
use rand::Rng;
use reveal_math::RnsPolynomial;

/// The secret key `s ∈ R_2` (ternary coefficients).
#[derive(Debug, Clone, PartialEq)]
pub struct SecretKey {
    /// `s` lifted into `R_q`.
    pub(crate) s: RnsPolynomial,
    /// The raw ternary coefficients (kept for noise analysis and tests).
    pub(crate) s_signed: Vec<i64>,
}

impl SecretKey {
    /// Rebuilds a secret key from its ternary coefficients (deserialization).
    ///
    /// # Panics
    ///
    /// Panics if the coefficient count differs from the ring degree.
    pub fn from_coefficients(ctx: &crate::context::BfvContext, s_signed: Vec<i64>) -> Self {
        assert_eq!(
            s_signed.len(),
            ctx.degree(),
            "coefficient count must equal n"
        );
        let s = ctx.basis().from_signed(&s_signed);
        Self { s, s_signed }
    }

    /// The ternary coefficients of the secret key.
    pub fn coefficients(&self) -> &[i64] {
        &self.s_signed
    }

    /// The secret key as an `R_q` element.
    pub fn as_rns(&self) -> &RnsPolynomial {
        &self.s
    }
}

/// The public key `pk = (p0, p1) = ([-(a·s + e)]_q, a)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PublicKey {
    pub(crate) p0: RnsPolynomial,
    pub(crate) p1: RnsPolynomial,
}

impl PublicKey {
    /// Rebuilds a public key from its two polynomials (deserialization).
    pub fn from_parts(p0: RnsPolynomial, p1: RnsPolynomial) -> Self {
        Self { p0, p1 }
    }

    /// `p0 = -(a·s + e)`.
    pub fn p0(&self) -> &RnsPolynomial {
        &self.p0
    }

    /// `p1 = a` (the uniform component).
    pub fn p1(&self) -> &RnsPolynomial {
        &self.p1
    }
}

/// Relinearization keys: for each decomposition digit `i`,
/// `evk_i = (-(a_i·s + e_i) + w^i·s², a_i)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RelinKeys {
    pub(crate) keys: Vec<(RnsPolynomial, RnsPolynomial)>,
    /// Decomposition base `w` as a bit shift.
    pub(crate) decomposition_bits: u32,
}

impl RelinKeys {
    /// The decomposition base exponent (digits are `decomposition_bits` wide).
    pub fn decomposition_bits(&self) -> u32 {
        self.decomposition_bits
    }

    /// Number of decomposition digits.
    pub fn digit_count(&self) -> usize {
        self.keys.len()
    }
}

/// Generates secret, public, and relinearization keys.
///
/// # Examples
///
/// ```
/// use reveal_bfv::{BfvContext, EncryptionParameters, KeyGenerator};
/// use rand::SeedableRng;
/// let ctx = BfvContext::new(EncryptionParameters::seal_128_paper()?)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let keygen = KeyGenerator::new(&ctx);
/// let sk = keygen.secret_key(&mut rng);
/// let pk = keygen.public_key(&sk, &mut rng);
/// assert_eq!(sk.coefficients().len(), 1024);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct KeyGenerator {
    context: BfvContext,
}

impl KeyGenerator {
    /// Creates a key generator bound to a context.
    pub fn new(context: &BfvContext) -> Self {
        Self {
            context: context.clone(),
        }
    }

    /// Samples a fresh ternary secret key.
    pub fn secret_key<R: Rng + ?Sized>(&self, rng: &mut R) -> SecretKey {
        let s_signed = sample_ternary(self.context.degree(), rng);
        let s = self.context.basis().from_signed(&s_signed);
        SecretKey { s, s_signed }
    }

    /// Derives the public key `([-(a·s + e)]_q, a)` from a secret key.
    pub fn public_key<R: Rng + ?Sized>(&self, sk: &SecretKey, rng: &mut R) -> PublicKey {
        let basis = self.context.basis();
        let a = RnsPolynomial::from_flat(basis, &sample_uniform(self.context.parms(), rng));
        let mut e_flat =
            vec![0u64; self.context.degree() * self.context.parms().coeff_modulus().len()];
        set_poly_coeffs_normal(&mut e_flat, rng, self.context.parms(), &mut NullProbe);
        let e = RnsPolynomial::from_flat(basis, &e_flat);
        let p0 = a.mul(&sk.s).add(&e).neg();
        PublicKey { p0, p1: a }
    }

    /// Generates relinearization keys for digit decomposition with the given
    /// digit width (e.g. 16 bits).
    ///
    /// # Panics
    ///
    /// Panics if `decomposition_bits` is zero or at least the bit width of the
    /// largest coefficient modulus.
    pub fn relin_keys<R: Rng + ?Sized>(
        &self,
        sk: &SecretKey,
        decomposition_bits: u32,
        rng: &mut R,
    ) -> RelinKeys {
        assert!(decomposition_bits > 0, "digit width must be positive");
        let max_bits = self
            .context
            .parms()
            .coeff_modulus()
            .iter()
            .map(|m| m.bit_count())
            .max()
            .expect("at least one modulus");
        assert!(
            decomposition_bits < max_bits,
            "digit width must be below the modulus width"
        );
        let digits = max_bits.div_ceil(decomposition_bits) as usize;
        let basis = self.context.basis();
        let s_sq = sk.s.mul(&sk.s);
        let mut keys = Vec::with_capacity(digits);
        for i in 0..digits {
            let a_i = RnsPolynomial::from_flat(basis, &sample_uniform(self.context.parms(), rng));
            let mut e_flat =
                vec![0u64; self.context.degree() * self.context.parms().coeff_modulus().len()];
            set_poly_coeffs_normal(&mut e_flat, rng, self.context.parms(), &mut NullProbe);
            let e_i = RnsPolynomial::from_flat(basis, &e_flat);
            // w^i mod q_j, folded per-residue via scalar multiplication.
            let shift = (decomposition_bits as u64) * i as u64;
            let scaled = scale_by_power_of_two(&s_sq, shift);
            let k0 = a_i.mul(&sk.s).add(&e_i).neg().add(&scaled);
            keys.push((k0, a_i));
        }
        RelinKeys {
            keys,
            decomposition_bits,
        }
    }
}

/// Multiplies an RNS polynomial by `2^shift` (reduced per modulus).
fn scale_by_power_of_two(p: &RnsPolynomial, shift: u64) -> RnsPolynomial {
    let mut out = p.clone();
    let mut remaining = shift;
    // Apply in <= 62-bit chunks so the scalar stays reduced.
    while remaining > 0 {
        let step = remaining.min(32);
        out = out.scalar_mul(1u64 << step);
        remaining -= step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EncryptionParameters;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> BfvContext {
        BfvContext::new(EncryptionParameters::seal_128_paper().unwrap()).unwrap()
    }

    #[test]
    fn secret_key_is_ternary() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let sk = KeyGenerator::new(&c).secret_key(&mut rng);
        assert_eq!(sk.coefficients().len(), 1024);
        assert!(sk.coefficients().iter().all(|&x| (-1..=1).contains(&x)));
        // RNS lift must agree with signed coefficients.
        let q = c.parms().coeff_modulus()[0];
        for (i, &s) in sk.coefficients().iter().enumerate() {
            assert_eq!(sk.as_rns().residues()[0].coeffs()[i], q.from_signed(s));
        }
    }

    #[test]
    fn public_key_satisfies_rlwe_relation() {
        // p0 + a·s = -e must have small coefficients.
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let keygen = KeyGenerator::new(&c);
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&sk, &mut rng);
        let neg_e = pk.p0().add(&pk.p1().mul(&sk.s));
        let q = c.parms().coeff_modulus()[0];
        for &r in neg_e.residues()[0].coeffs() {
            let centered = q.to_signed(r);
            assert!(
                centered.abs() <= 41,
                "noise coefficient {centered} too large"
            );
        }
    }

    #[test]
    fn relin_keys_shape() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(3);
        let keygen = KeyGenerator::new(&c);
        let sk = keygen.secret_key(&mut rng);
        let rk = keygen.relin_keys(&sk, 16, &mut rng);
        // 27-bit modulus with 16-bit digits → 2 digits.
        assert_eq!(rk.digit_count(), 2);
        assert_eq!(rk.decomposition_bits(), 16);
    }

    #[test]
    fn relin_keys_satisfy_key_relation() {
        // k0 + a·s = w^i·s² - e (small noise around the scaled s²).
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(4);
        let keygen = KeyGenerator::new(&c);
        let sk = keygen.secret_key(&mut rng);
        let rk = keygen.relin_keys(&sk, 16, &mut rng);
        let s_sq = sk.s.mul(&sk.s);
        let q = c.parms().coeff_modulus()[0];
        for (i, (k0, a_i)) in rk.keys.iter().enumerate() {
            let lhs = k0.add(&a_i.mul(&sk.s));
            let scaled = super::scale_by_power_of_two(&s_sq, 16 * i as u64);
            let diff = lhs.sub(&scaled);
            for &r in diff.residues()[0].coeffs() {
                assert!(q.to_signed(r).abs() <= 41, "digit {i} noise too large");
            }
        }
    }

    #[test]
    #[should_panic(expected = "digit width")]
    fn relin_rejects_oversized_digits() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(5);
        let keygen = KeyGenerator::new(&c);
        let sk = keygen.secret_key(&mut rng);
        keygen.relin_keys(&sk, 27, &mut rng);
    }
}
