//! BFV decryption and invariant-noise-budget accounting.

use crate::context::{BfvContext, Ciphertext, Plaintext};
use crate::keys::SecretKey;
use reveal_math::BigUint;

/// Decrypts ciphertexts: `m = [round(t/q · [c(s)]_q)]_t` where
/// `c(s) = c0 + c1·s + c2·s² + …`.
#[derive(Debug, Clone)]
pub struct Decryptor {
    context: BfvContext,
    secret_key: SecretKey,
}

impl Decryptor {
    /// Binds a decryptor to a context and secret key.
    pub fn new(context: &BfvContext, secret_key: &SecretKey) -> Self {
        Self {
            context: context.clone(),
            secret_key: secret_key.clone(),
        }
    }

    /// Evaluates `c(s) = c0 + c1·s + c2·s² + …` in `R_q`.
    fn dot_with_secret(&self, ct: &Ciphertext) -> reveal_math::RnsPolynomial {
        let mut acc = ct.parts()[0].clone();
        let mut s_pow = self.secret_key.s.clone();
        for part in &ct.parts()[1..] {
            acc = acc.add(&part.mul(&s_pow));
            s_pow = s_pow.mul(&self.secret_key.s);
        }
        acc
    }

    /// Decrypts a ciphertext of any size.
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        let scaled = self.dot_with_secret(ct);
        let q = self.context.basis().product().clone();
        let t = self.context.parms().plain_modulus().value();
        let n = self.context.degree();
        let mut coeffs = Vec::with_capacity(n);
        for i in 0..n {
            let x = scaled.compose_coefficient(i);
            // round(t·x / q) mod t
            let rounded = x.mul_div_round(t, &q);
            coeffs.push(rounded.rem_u64(t));
        }
        Plaintext::new(&self.context, &coeffs)
    }

    /// Remaining invariant noise budget in bits; zero means decryption is no
    /// longer guaranteed to be correct.
    ///
    /// Computed as `log2(q / (2·max_i |[t·c(s)]_q|_centered)) `, clamped at
    /// zero — the standard SEAL metric.
    pub fn invariant_noise_budget(&self, ct: &Ciphertext) -> f64 {
        let scaled = self.dot_with_secret(ct);
        let q = self.context.basis().product().clone();
        let t = self.context.parms().plain_modulus().value();
        let n = self.context.degree();
        let half_q = q.divmod_u64(2).0;
        let mut max_noise = BigUint::zero();
        for i in 0..n {
            let x = scaled.compose_coefficient(i);
            // t·x mod q, centered: this cancels Δ·m and leaves t·v - (q mod t)·m.
            let (_, tx_mod_q) = x.mul_u64(t).divmod(&q);
            let centered = if tx_mod_q > half_q {
                q.checked_sub(&tx_mod_q).expect("tx_mod_q < q")
            } else {
                tx_mod_q
            };
            if centered > max_noise {
                max_noise = centered;
            }
        }
        if max_noise.is_zero() {
            return bits_of(&q);
        }
        let budget = bits_of(&q) - bits_of(&max_noise) - 1.0;
        budget.max(0.0)
    }
}

/// log2 of a positive big integer, via the top 64 bits.
fn bits_of(v: &BigUint) -> f64 {
    let bits = v.bit_count();
    if bits == 0 {
        return 0.0;
    }
    if bits <= 53 {
        return (v.to_u64().expect("fits") as f64).log2();
    }
    // Take the top limbs for a float mantissa.
    let limbs = v.limbs();
    let top = limbs[limbs.len() - 1] as f64;
    let next = if limbs.len() >= 2 {
        limbs[limbs.len() - 2] as f64 / 2f64.powi(64)
    } else {
        0.0
    };
    (top + next).log2() + 64.0 * (limbs.len() as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{EncryptionParameters, SecurityLevel};
    use crate::{Encryptor, KeyGenerator};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip_on(parms: EncryptionParameters, seed: u64) {
        let ctx = BfvContext::new(parms).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let keygen = KeyGenerator::new(&ctx);
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&sk, &mut rng);
        let enc = Encryptor::new(&ctx, &pk);
        let dec = Decryptor::new(&ctx, &sk);
        let t = ctx.parms().plain_modulus().value();
        let n = ctx.degree();
        for _ in 0..3 {
            let coeffs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
            let plain = Plaintext::new(&ctx, &coeffs);
            let ct = enc.encrypt(&plain, &mut rng);
            let back = dec.decrypt(&ct);
            assert_eq!(back.coeffs(), plain.coeffs());
        }
    }

    #[test]
    fn roundtrip_paper_parameters() {
        roundtrip_on(EncryptionParameters::seal_128_paper().unwrap(), 1);
    }

    #[test]
    fn roundtrip_larger_degree_multi_prime() {
        roundtrip_on(
            EncryptionParameters::with_default_moduli(2048, SecurityLevel::Tc128, 256).unwrap(),
            2,
        );
    }

    #[test]
    fn roundtrip_4096() {
        roundtrip_on(
            EncryptionParameters::with_default_moduli(4096, SecurityLevel::Tc128, 65537).unwrap(),
            3,
        );
    }

    #[test]
    fn noise_budget_positive_for_fresh_ciphertext() {
        let ctx = BfvContext::new(EncryptionParameters::seal_128_paper().unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let keygen = KeyGenerator::new(&ctx);
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&sk, &mut rng);
        let enc = Encryptor::new(&ctx, &pk);
        let dec = Decryptor::new(&ctx, &sk);
        let ct = enc.encrypt(&Plaintext::constant(&ctx, 5), &mut rng);
        let budget = dec.invariant_noise_budget(&ct);
        assert!(budget > 0.0, "fresh budget {budget} should be positive");
        assert!(budget < 27.0, "budget cannot exceed log2(q)");
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let ctx = BfvContext::new(EncryptionParameters::seal_128_paper().unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let keygen = KeyGenerator::new(&ctx);
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&sk, &mut rng);
        let other = keygen.secret_key(&mut rng);
        let enc = Encryptor::new(&ctx, &pk);
        let dec = Decryptor::new(&ctx, &other);
        let mut coeffs = vec![0u64; 1024];
        coeffs[0] = 123;
        let ct = enc.encrypt(&Plaintext::new(&ctx, &coeffs), &mut rng);
        let back = dec.decrypt(&ct);
        assert_ne!(back.coeffs(), coeffs.as_slice());
    }
}
