//! Homomorphic evaluation: the `Evaluate` box of Fig. 1 in the paper.

use crate::context::{BfvContext, Ciphertext, Plaintext};
use crate::keys::RelinKeys;
use reveal_math::RnsPolynomial;
use std::fmt;

/// Errors produced by homomorphic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvaluateError {
    /// Ciphertext–ciphertext multiplication currently requires a single
    /// coefficient modulus (the paper's parameter regime).
    MultiPrimeMultiplyUnsupported { modulus_count: usize },
    /// Relinearization was asked to shrink a ciphertext that is already size 2.
    NothingToRelinearize,
}

impl fmt::Display for EvaluateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvaluateError::MultiPrimeMultiplyUnsupported { modulus_count } => write!(
                f,
                "ciphertext multiplication supports a single coefficient modulus, got {modulus_count}"
            ),
            EvaluateError::NothingToRelinearize => {
                write!(f, "ciphertext is already size 2")
            }
        }
    }
}

impl std::error::Error for EvaluateError {}

/// Performs homomorphic operations on ciphertexts.
///
/// # Examples
///
/// ```
/// use reveal_bfv::{BfvContext, EncryptionParameters, Encryptor, Decryptor,
///                  Evaluator, KeyGenerator, Plaintext};
/// use rand::SeedableRng;
/// let ctx = BfvContext::new(EncryptionParameters::seal_128_paper()?)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let keygen = KeyGenerator::new(&ctx);
/// let sk = keygen.secret_key(&mut rng);
/// let pk = keygen.public_key(&sk, &mut rng);
/// let enc = Encryptor::new(&ctx, &pk);
/// let dec = Decryptor::new(&ctx, &sk);
/// let eval = Evaluator::new(&ctx);
///
/// let a = enc.encrypt(&Plaintext::constant(&ctx, 3), &mut rng);
/// let b = enc.encrypt(&Plaintext::constant(&ctx, 4), &mut rng);
/// let sum = eval.add(&a, &b);
/// assert_eq!(dec.decrypt(&sum).coeffs()[0], 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator {
    context: BfvContext,
}

impl Evaluator {
    /// Binds an evaluator to a context.
    pub fn new(context: &BfvContext) -> Self {
        Self {
            context: context.clone(),
        }
    }

    /// Homomorphic addition.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let size = a.size().max(b.size());
        let zero = self.context.basis().zero();
        let parts = (0..size)
            .map(|i| {
                let pa = a.parts().get(i).unwrap_or(&zero);
                let pb = b.parts().get(i).unwrap_or(&zero);
                pa.add(pb)
            })
            .collect();
        Ciphertext::from_parts(parts)
    }

    /// Homomorphic subtraction.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let size = a.size().max(b.size());
        let zero = self.context.basis().zero();
        let parts = (0..size)
            .map(|i| {
                let pa = a.parts().get(i).unwrap_or(&zero);
                let pb = b.parts().get(i).unwrap_or(&zero);
                pa.sub(pb)
            })
            .collect();
        Ciphertext::from_parts(parts)
    }

    /// Homomorphic negation.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        Ciphertext::from_parts(a.parts().iter().map(RnsPolynomial::neg).collect())
    }

    /// Adds a plaintext to a ciphertext (`c0 += Δ·m`).
    pub fn add_plain(&self, a: &Ciphertext, plain: &Plaintext) -> Ciphertext {
        let mut parts = a.parts().to_vec();
        parts[0] = parts[0].add(&self.context.plain_to_delta_rns(plain));
        Ciphertext::from_parts(parts)
    }

    /// Subtracts a plaintext from a ciphertext.
    pub fn sub_plain(&self, a: &Ciphertext, plain: &Plaintext) -> Ciphertext {
        let mut parts = a.parts().to_vec();
        parts[0] = parts[0].sub(&self.context.plain_to_delta_rns(plain));
        Ciphertext::from_parts(parts)
    }

    /// Multiplies a ciphertext by a plaintext polynomial.
    pub fn multiply_plain(&self, a: &Ciphertext, plain: &Plaintext) -> Ciphertext {
        let lifted = self.context.plain_to_rns(plain);
        Ciphertext::from_parts(a.parts().iter().map(|p| p.mul(&lifted)).collect())
    }

    /// Ciphertext–ciphertext multiplication (textbook BFV): computes the
    /// size-3 ciphertext `round(t/q · (a ⊗ b))`.
    ///
    /// # Errors
    ///
    /// Returns [`EvaluateError::MultiPrimeMultiplyUnsupported`] when the
    /// coefficient modulus chain has more than one prime — the paper's
    /// parameter set (n = 1024) uses exactly one.
    pub fn multiply(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvaluateError> {
        let moduli = self.context.parms().coeff_modulus();
        if moduli.len() != 1 {
            return Err(EvaluateError::MultiPrimeMultiplyUnsupported {
                modulus_count: moduli.len(),
            });
        }
        assert_eq!(a.size(), 2, "multiply expects size-2 inputs");
        assert_eq!(b.size(), 2, "multiply expects size-2 inputs");
        let q = moduli[0].value();
        let t = self.context.parms().plain_modulus().value();
        let n = self.context.degree();

        // Centered integer lifts of the four input polynomials.
        let lift = |p: &RnsPolynomial| -> Vec<i128> {
            p.residues()[0]
                .to_signed()
                .into_iter()
                .map(|v| v as i128)
                .collect()
        };
        let (a0, a1) = (lift(a.c0()), lift(a.c1()));
        let (b0, b1) = (lift(b.c0()), lift(b.c1()));

        // d0 = a0·b0, d1 = a0·b1 + a1·b0, d2 = a1·b1 over Z[x]/(x^n + 1).
        let d0 = negacyclic_mul_i128(&a0, &b0, n);
        let mut d1 = negacyclic_mul_i128(&a0, &b1, n);
        let d1b = negacyclic_mul_i128(&a1, &b0, n);
        for (x, y) in d1.iter_mut().zip(d1b) {
            *x += y;
        }
        let d2 = negacyclic_mul_i128(&a1, &b1, n);

        // Scale each coefficient by t/q with rounding, then reduce mod q.
        let scale = |d: Vec<i128>| -> Vec<i64> {
            d.into_iter()
                .map(|c| {
                    let num = c * t as i128;
                    let q_i = q as i128;
                    // Round to nearest (ties away from zero).
                    let rounded = if num >= 0 {
                        (num + q_i / 2) / q_i
                    } else {
                        (num - q_i / 2) / q_i
                    };
                    let reduced = rounded.rem_euclid(q_i);
                    // Keep as centered i64 for from_signed.
                    let centered = if reduced > q_i / 2 {
                        reduced - q_i
                    } else {
                        reduced
                    };
                    centered as i64
                })
                .collect()
        };
        let basis = self.context.basis();
        let parts = vec![
            basis.from_signed(&scale(d0)),
            basis.from_signed(&scale(d1)),
            basis.from_signed(&scale(d2)),
        ];
        Ok(Ciphertext::from_parts(parts))
    }

    /// Relinearizes a size-3 ciphertext back to size 2 using digit
    /// decomposition against the provided keys.
    ///
    /// # Errors
    ///
    /// Returns [`EvaluateError::NothingToRelinearize`] for size-2 inputs.
    pub fn relinearize(
        &self,
        a: &Ciphertext,
        keys: &RelinKeys,
    ) -> Result<Ciphertext, EvaluateError> {
        if a.size() == 2 {
            return Err(EvaluateError::NothingToRelinearize);
        }
        assert_eq!(a.size(), 3, "only size-3 relinearization is implemented");
        let basis = self.context.basis();
        let n = self.context.degree();
        let w_bits = keys.decomposition_bits;
        let mask = (1u64 << w_bits) - 1;

        // Decompose c2 into digits base 2^w (per residue; valid because the
        // chain has a single modulus in the supported regime, and for
        // multi-prime chains digits are taken per-residue which matches the
        // per-residue key relation).
        let c2 = &a.parts()[2];
        let mut c0 = a.parts()[0].clone();
        let mut c1 = a.parts()[1].clone();
        for (digit_index, (k0, k1)) in keys.keys.iter().enumerate() {
            let shift = w_bits * digit_index as u32;
            // Build the digit polynomial.
            let digit_residues: Vec<_> = c2
                .residues()
                .iter()
                .zip(basis.contexts())
                .map(|(r, ctx)| {
                    let coeffs: Vec<u64> =
                        (0..n).map(|i| (r.coeffs()[i] >> shift) & mask).collect();
                    ctx.polynomial(&coeffs)
                })
                .collect();
            let digit = basis.from_residues(digit_residues);
            c0 = c0.add(&digit.mul(k0));
            c1 = c1.add(&digit.mul(k1));
        }
        Ok(Ciphertext::from_parts(vec![c0, c1]))
    }
}

/// Exact negacyclic convolution over `Z[x]/(x^n + 1)` with i128 coefficients.
fn negacyclic_mul_i128(a: &[i128], b: &[i128], n: usize) -> Vec<i128> {
    let mut out = vec![0i128; n];
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        for j in 0..n {
            let prod = a[i] * b[j];
            let k = i + j;
            if k < n {
                out[k] += prod;
            } else {
                out[k - n] -= prod;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EncryptionParameters;
    use crate::{Decryptor, Encryptor, KeyGenerator};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct Fixture {
        ctx: BfvContext,
        enc: Encryptor,
        dec: Decryptor,
        eval: Evaluator,
        keygen: KeyGenerator,
        sk: crate::keys::SecretKey,
        rng: StdRng,
    }

    fn fixture(seed: u64) -> Fixture {
        fixture_on(EncryptionParameters::seal_128_paper().unwrap(), seed)
    }

    /// The paper's n = 1024 / 27-bit q set has no multiplicative depth (the
    /// multiply noise t·n·B exceeds q/2t), so ct–ct multiplication tests use
    /// a functional toy set with a single 50-bit prime instead.
    fn mult_fixture(seed: u64) -> Fixture {
        use reveal_math::primes::ntt_primes;
        use reveal_math::Modulus;
        let q = ntt_primes(50, 2048, 1).unwrap().remove(0);
        let parms = EncryptionParameters::new(1024, vec![q], Modulus::new(256).unwrap()).unwrap();
        fixture_on(parms, seed)
    }

    fn fixture_on(parms: EncryptionParameters, seed: u64) -> Fixture {
        let ctx = BfvContext::new(parms).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let keygen = KeyGenerator::new(&ctx);
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&sk, &mut rng);
        Fixture {
            enc: Encryptor::new(&ctx, &pk),
            dec: Decryptor::new(&ctx, &sk),
            eval: Evaluator::new(&ctx),
            keygen,
            sk,
            ctx,
            rng,
        }
    }

    #[test]
    fn add_sub_negate_homomorphism() {
        let mut f = fixture(1);
        let t = f.ctx.parms().plain_modulus().value();
        let a = f.rng.gen_range(0..t);
        let b = f.rng.gen_range(0..t);
        let ca = f.enc.encrypt(&Plaintext::constant(&f.ctx, a), &mut f.rng);
        let cb = f.enc.encrypt(&Plaintext::constant(&f.ctx, b), &mut f.rng);
        assert_eq!(
            f.dec.decrypt(&f.eval.add(&ca, &cb)).coeffs()[0],
            (a + b) % t
        );
        assert_eq!(
            f.dec.decrypt(&f.eval.sub(&ca, &cb)).coeffs()[0],
            (a + t - b) % t
        );
        assert_eq!(f.dec.decrypt(&f.eval.negate(&ca)).coeffs()[0], (t - a) % t);
    }

    #[test]
    fn plain_operations() {
        let mut f = fixture(2);
        let ca = f.enc.encrypt(&Plaintext::constant(&f.ctx, 10), &mut f.rng);
        let p = Plaintext::constant(&f.ctx, 7);
        assert_eq!(f.dec.decrypt(&f.eval.add_plain(&ca, &p)).coeffs()[0], 17);
        assert_eq!(f.dec.decrypt(&f.eval.sub_plain(&ca, &p)).coeffs()[0], 3);
        assert_eq!(
            f.dec.decrypt(&f.eval.multiply_plain(&ca, &p)).coeffs()[0],
            70
        );
    }

    #[test]
    fn multiply_plain_by_monomial_shifts() {
        let mut f = fixture(3);
        let mut m = vec![0u64; 1024];
        m[2] = 5;
        let ca = f.enc.encrypt(&Plaintext::new(&f.ctx, &m), &mut f.rng);
        // Multiply by x^3.
        let mut x3 = vec![0u64; 1024];
        x3[3] = 1;
        let shifted = f.eval.multiply_plain(&ca, &Plaintext::new(&f.ctx, &x3));
        let out = f.dec.decrypt(&shifted);
        assert_eq!(out.coeffs()[5], 5);
        assert_eq!(out.coeffs().iter().filter(|&&c| c != 0).count(), 1);
    }

    #[test]
    fn ciphertext_multiply_and_decrypt_size3() {
        let mut f = mult_fixture(4);
        let ca = f.enc.encrypt(&Plaintext::constant(&f.ctx, 11), &mut f.rng);
        let cb = f.enc.encrypt(&Plaintext::constant(&f.ctx, 13), &mut f.rng);
        let prod = f.eval.multiply(&ca, &cb).unwrap();
        assert_eq!(prod.size(), 3);
        assert_eq!(f.dec.decrypt(&prod).coeffs()[0], (11 * 13));
    }

    #[test]
    fn multiply_then_relinearize() {
        let mut f = mult_fixture(5);
        let ca = f.enc.encrypt(&Plaintext::constant(&f.ctx, 9), &mut f.rng);
        let cb = f.enc.encrypt(&Plaintext::constant(&f.ctx, 8), &mut f.rng);
        let prod = f.eval.multiply(&ca, &cb).unwrap();
        let rk = f.keygen.relin_keys(&f.sk, 8, &mut f.rng);
        let lin = f.eval.relinearize(&prod, &rk).unwrap();
        assert_eq!(lin.size(), 2);
        assert_eq!(f.dec.decrypt(&lin).coeffs()[0], 72);
    }

    #[test]
    fn relinearize_rejects_fresh() {
        let mut f = fixture(6);
        let ca = f.enc.encrypt(&Plaintext::constant(&f.ctx, 1), &mut f.rng);
        let rk = f.keygen.relin_keys(&f.sk, 8, &mut f.rng);
        assert_eq!(
            f.eval.relinearize(&ca, &rk),
            Err(EvaluateError::NothingToRelinearize)
        );
    }

    #[test]
    fn multiply_polynomial_semantics() {
        // (1 + x)·(1 + x) = 1 + 2x + x² in R_t.
        let mut f = mult_fixture(7);
        let mut m = vec![0u64; 1024];
        m[0] = 1;
        m[1] = 1;
        let p = Plaintext::new(&f.ctx, &m);
        let ca = f.enc.encrypt(&p, &mut f.rng);
        let cb = f.enc.encrypt(&p, &mut f.rng);
        let prod = f.eval.multiply(&ca, &cb).unwrap();
        let out = f.dec.decrypt(&prod);
        assert_eq!(out.coeffs()[0], 1);
        assert_eq!(out.coeffs()[1], 2);
        assert_eq!(out.coeffs()[2], 1);
        assert!(out.coeffs()[3..].iter().all(|&c| c == 0));
    }

    #[test]
    fn noise_grows_with_multiplication() {
        let mut f = mult_fixture(8);
        let ca = f.enc.encrypt(&Plaintext::constant(&f.ctx, 2), &mut f.rng);
        let cb = f.enc.encrypt(&Plaintext::constant(&f.ctx, 3), &mut f.rng);
        let fresh = f.dec.invariant_noise_budget(&ca);
        let prod = f.eval.multiply(&ca, &cb).unwrap();
        let after = f.dec.invariant_noise_budget(&prod);
        assert!(after < fresh, "budget should shrink: {fresh} -> {after}");
    }
}
