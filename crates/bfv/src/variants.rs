//! Sampler *variants* for the countermeasure discussion of §V-A:
//!
//! - [`set_poly_coeffs_normal_branchless`]: the post-v3.6 style — SEAL 3.6
//!   replaced the if/else-if/else ladder with an iterator formulation whose
//!   per-coefficient work is sign-independent; modelled here as a fully
//!   branchless (constant-control-flow) writer.
//! - [`set_poly_coeffs_normal_masked`]: a first-order arithmetically masked
//!   writer. The paper argues masking does **not** stop the attack because
//!   the *branches* still depend on the sign; this variant keeps the ladder
//!   (masking the stored value only), exactly the half-measure the paper
//!   warns about.
//! - [`set_poly_coeffs_normal_shuffled`]: the recommended direction —
//!   Fisher–Yates shuffling of the sampling order.

use crate::params::EncryptionParameters;
use crate::sampler::{ClippedNormalDistribution, SamplerEvent, SamplerProbe, SignBranch};
use rand::Rng;

/// Branchless noise writer (SEAL ≥ 3.6 spirit): every coefficient executes
/// the identical instruction sequence; the residue is selected
/// arithmetically from the sign bits rather than by control flow.
///
/// # Panics
///
/// Panics if `poly.len() != n * k`.
pub fn set_poly_coeffs_normal_branchless<R: Rng + ?Sized, P: SamplerProbe>(
    poly: &mut [u64],
    rng: &mut R,
    parms: &EncryptionParameters,
    probe: &mut P,
) {
    let coeff_count = parms.poly_modulus_degree();
    let coeff_modulus = parms.coeff_modulus();
    assert_eq!(poly.len(), coeff_count * coeff_modulus.len());
    let mut dist = ClippedNormalDistribution::new(
        0.0,
        parms.noise_standard_deviation(),
        parms.noise_max_deviation(),
    );
    for i in 0..coeff_count {
        probe.record(&SamplerEvent::CoefficientStart { index: i });
        let (noise, stats) = dist.sample_i64(rng);
        probe.record(&SamplerEvent::DistributionSample {
            polar_iterations: stats.polar_iterations,
            clip_rejections: stats.clip_rejections,
            value: noise,
        });
        // Branchless selection: flag = sign bit replicated; the same three
        // arithmetic operations run for every coefficient.
        let is_negative = (noise >> 63) as u64; // 0 or u64::MAX-as-1? -> 0/!0 via wrapping
        let mask = is_negative.wrapping_neg() | is_negative; // 0 or all-ones
        let magnitude = noise.unsigned_abs();
        // No BranchTaken / Negation events: control flow is constant. The
        // probe still sees one uniform event per coefficient so leakage
        // simulators can model the (value-dependent but sign-independent)
        // data flow.
        probe.record(&SamplerEvent::BranchTaken {
            branch: SignBranch::Positive, // constant label: no CF variation
        });
        for (j, modulus) in coeff_modulus.iter().enumerate() {
            let q = modulus.value();
            // residue = magnitude            when noise >= 0 (and 0 -> 0)
            //         = q - magnitude        when noise < 0
            let neg_residue = (q - magnitude) & mask;
            let pos_residue = magnitude & !mask;
            let residue = (neg_residue | pos_residue) % q;
            poly[i + j * coeff_count] = residue;
            probe.record(&SamplerEvent::CoefficientStore {
                modulus_index: j,
                residue,
            });
        }
        probe.record(&SamplerEvent::CoefficientEnd { index: i });
    }
}

/// First-order *arithmetically masked* writer that **keeps the sign ladder**:
/// the stored residue is split into two shares, but the control flow still
/// branches on the sign — the half-measure §V-A warns against. Returns the
/// two share polynomials (their per-modulus sum reconstructs the residues).
///
/// # Panics
///
/// Panics if the share buffers are not `n * k` long.
pub fn set_poly_coeffs_normal_masked<R: Rng + ?Sized, P: SamplerProbe>(
    share0: &mut [u64],
    share1: &mut [u64],
    rng: &mut R,
    parms: &EncryptionParameters,
    probe: &mut P,
) {
    let coeff_count = parms.poly_modulus_degree();
    let coeff_modulus = parms.coeff_modulus();
    assert_eq!(share0.len(), coeff_count * coeff_modulus.len());
    assert_eq!(share1.len(), share0.len());
    let mut dist = ClippedNormalDistribution::new(
        0.0,
        parms.noise_standard_deviation(),
        parms.noise_max_deviation(),
    );
    for i in 0..coeff_count {
        probe.record(&SamplerEvent::CoefficientStart { index: i });
        let (mut noise, stats) = dist.sample_i64(rng);
        probe.record(&SamplerEvent::DistributionSample {
            polar_iterations: stats.polar_iterations,
            clip_rejections: stats.clip_rejections,
            value: noise,
        });
        // The ladder survives — this is exactly the leak.
        if noise > 0 {
            probe.record(&SamplerEvent::BranchTaken {
                branch: SignBranch::Positive,
            });
            for (j, modulus) in coeff_modulus.iter().enumerate() {
                write_masked(
                    share0,
                    share1,
                    i + j * coeff_count,
                    noise as u64,
                    modulus,
                    rng,
                    probe,
                    j,
                );
            }
        } else if noise < 0 {
            probe.record(&SamplerEvent::BranchTaken {
                branch: SignBranch::Negative,
            });
            let operand = noise;
            noise = -noise;
            probe.record(&SamplerEvent::Negation {
                operand,
                result: noise,
            });
            for (j, modulus) in coeff_modulus.iter().enumerate() {
                let residue = modulus.value() - noise as u64;
                write_masked(
                    share0,
                    share1,
                    i + j * coeff_count,
                    residue,
                    modulus,
                    rng,
                    probe,
                    j,
                );
            }
        } else {
            probe.record(&SamplerEvent::BranchTaken {
                branch: SignBranch::Zero,
            });
            for (j, modulus) in coeff_modulus.iter().enumerate() {
                write_masked(
                    share0,
                    share1,
                    i + j * coeff_count,
                    0,
                    modulus,
                    rng,
                    probe,
                    j,
                );
            }
        }
        probe.record(&SamplerEvent::CoefficientEnd { index: i });
    }
}

#[allow(clippy::too_many_arguments)]
fn write_masked<R: Rng + ?Sized, P: SamplerProbe>(
    share0: &mut [u64],
    share1: &mut [u64],
    idx: usize,
    residue: u64,
    modulus: &reveal_math::Modulus,
    rng: &mut R,
    probe: &mut P,
    modulus_index: usize,
) {
    let q = modulus.value();
    let r = rng.gen_range(0..q);
    share0[idx] = r;
    share1[idx] = modulus.sub(residue, r);
    // The probe sees the (randomized) share, not the residue: the *data*
    // leak is indeed masked — but the branch above already gave the sign
    // away.
    probe.record(&SamplerEvent::CoefficientStore {
        modulus_index,
        residue: r,
    });
}

/// Shuffled sampling order (the recommended §V-A countermeasure): samples
/// the coefficients through the *vulnerable* ladder but in a fresh random
/// order, so observations cannot be attached to coefficient indices.
/// Returns the permutation actually used (trace position → coefficient).
///
/// # Panics
///
/// Panics if `poly.len() != n * k`.
pub fn set_poly_coeffs_normal_shuffled<R: Rng + ?Sized, P: SamplerProbe>(
    poly: &mut [u64],
    rng: &mut R,
    parms: &EncryptionParameters,
    probe: &mut P,
) -> Vec<usize> {
    let coeff_count = parms.poly_modulus_degree();
    let coeff_modulus = parms.coeff_modulus();
    assert_eq!(poly.len(), coeff_count * coeff_modulus.len());
    // Fisher–Yates.
    let mut order: Vec<usize> = (0..coeff_count).collect();
    for i in (1..coeff_count).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut dist = ClippedNormalDistribution::new(
        0.0,
        parms.noise_standard_deviation(),
        parms.noise_max_deviation(),
    );
    for &i in &order {
        probe.record(&SamplerEvent::CoefficientStart { index: i });
        let (mut noise, stats) = dist.sample_i64(rng);
        probe.record(&SamplerEvent::DistributionSample {
            polar_iterations: stats.polar_iterations,
            clip_rejections: stats.clip_rejections,
            value: noise,
        });
        if noise > 0 {
            probe.record(&SamplerEvent::BranchTaken {
                branch: SignBranch::Positive,
            });
            for (j, _) in coeff_modulus.iter().enumerate() {
                poly[i + j * coeff_count] = noise as u64;
                probe.record(&SamplerEvent::CoefficientStore {
                    modulus_index: j,
                    residue: noise as u64,
                });
            }
        } else if noise < 0 {
            probe.record(&SamplerEvent::BranchTaken {
                branch: SignBranch::Negative,
            });
            let operand = noise;
            noise = -noise;
            probe.record(&SamplerEvent::Negation {
                operand,
                result: noise,
            });
            for (j, modulus) in coeff_modulus.iter().enumerate() {
                let residue = modulus.value() - noise as u64;
                poly[i + j * coeff_count] = residue;
                probe.record(&SamplerEvent::CoefficientStore {
                    modulus_index: j,
                    residue,
                });
            }
        } else {
            probe.record(&SamplerEvent::BranchTaken {
                branch: SignBranch::Zero,
            });
            for (j, _) in coeff_modulus.iter().enumerate() {
                poly[i + j * coeff_count] = 0;
                probe.record(&SamplerEvent::CoefficientStore {
                    modulus_index: j,
                    residue: 0,
                });
            }
        }
        probe.record(&SamplerEvent::CoefficientEnd { index: i });
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{NullProbe, RecordingProbe};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reveal_math::Modulus;

    fn parms() -> EncryptionParameters {
        EncryptionParameters::new(
            32,
            vec![Modulus::new(12289).unwrap(), Modulus::new(40961).unwrap()],
            Modulus::new(17).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn branchless_writes_valid_residues() {
        let p = parms();
        let mut poly = vec![0u64; 64];
        let mut rng = StdRng::seed_from_u64(1);
        set_poly_coeffs_normal_branchless(&mut poly, &mut rng, &p, &mut NullProbe);
        for j in 0..2 {
            let q = p.coeff_modulus()[j].value();
            for i in 0..32 {
                let r = poly[i + j * 32];
                assert!(r < q);
                let centered = if r > q / 2 {
                    r as i64 - q as i64
                } else {
                    r as i64
                };
                assert!(centered.abs() <= 41);
            }
        }
        // Cross-modulus consistency.
        let q0 = p.coeff_modulus()[0].value();
        let q1 = p.coeff_modulus()[1].value();
        for i in 0..32 {
            let v0 = if poly[i] > q0 / 2 {
                poly[i] as i64 - q0 as i64
            } else {
                poly[i] as i64
            };
            let v1 = if poly[i + 32] > q1 / 2 {
                poly[i + 32] as i64 - q1 as i64
            } else {
                poly[i + 32] as i64
            };
            assert_eq!(v0, v1);
        }
    }

    #[test]
    fn branchless_emits_no_sign_dependent_events() {
        let p = parms();
        let mut poly = vec![0u64; 64];
        let mut rng = StdRng::seed_from_u64(2);
        let mut probe = RecordingProbe::new();
        set_poly_coeffs_normal_branchless(&mut poly, &mut rng, &p, &mut probe);
        // No Negation events, and every BranchTaken carries the constant tag.
        for e in probe.events() {
            match e {
                SamplerEvent::Negation { .. } => panic!("branchless variant must not negate"),
                SamplerEvent::BranchTaken { branch } => {
                    assert_eq!(*branch, SignBranch::Positive, "constant label expected");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn branchless_matches_reference_distribution() {
        // Same RNG stream → same sampled values as the vulnerable writer.
        let p = parms();
        let mut a = vec![0u64; 64];
        let mut b = vec![0u64; 64];
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        crate::sampler::set_poly_coeffs_normal(&mut a, &mut rng_a, &p, &mut NullProbe);
        set_poly_coeffs_normal_branchless(&mut b, &mut rng_b, &p, &mut NullProbe);
        assert_eq!(a, b, "functional equivalence");
    }

    #[test]
    fn masked_shares_reconstruct() {
        let p = parms();
        let mut s0 = vec![0u64; 64];
        let mut s1 = vec![0u64; 64];
        let mut rng = StdRng::seed_from_u64(4);
        set_poly_coeffs_normal_masked(&mut s0, &mut s1, &mut rng, &p, &mut NullProbe);
        for j in 0..2 {
            let m = p.coeff_modulus()[j];
            for i in 0..32 {
                let r = m.add(s0[i + j * 32], s1[i + j * 32]);
                let centered = m.to_signed(r);
                assert!(centered.abs() <= 41, "reconstructed {centered}");
            }
        }
    }

    #[test]
    fn masked_still_branches_on_sign() {
        // The vulnerability the paper warns about: the probe still sees the
        // sign-dependent branches (and negations) despite the masking.
        let p = parms();
        let mut s0 = vec![0u64; 64];
        let mut s1 = vec![0u64; 64];
        let mut rng = StdRng::seed_from_u64(5);
        let mut probe = RecordingProbe::new();
        set_poly_coeffs_normal_masked(&mut s0, &mut s1, &mut rng, &p, &mut probe);
        let branches: Vec<SignBranch> = probe
            .events()
            .iter()
            .filter_map(|e| match e {
                SamplerEvent::BranchTaken { branch } => Some(*branch),
                _ => None,
            })
            .collect();
        assert!(branches.contains(&SignBranch::Negative));
        assert!(branches.contains(&SignBranch::Positive));
        // Stored shares are uniform, i.e. the data leak IS masked.
        let negations = probe
            .events()
            .iter()
            .filter(|e| matches!(e, SamplerEvent::Negation { .. }))
            .count();
        assert!(negations > 0, "negation still executes");
    }

    #[test]
    fn shuffled_covers_all_coefficients() {
        let p = parms();
        let mut poly = vec![0u64; 64];
        let mut rng = StdRng::seed_from_u64(6);
        let order = set_poly_coeffs_normal_shuffled(&mut poly, &mut rng, &p, &mut NullProbe);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "a permutation");
        // All residues valid.
        for j in 0..2 {
            let q = p.coeff_modulus()[j].value();
            assert!((0..32).all(|i| poly[i + j * 32] < q));
        }
    }

    #[test]
    fn shuffled_orders_differ_between_runs() {
        let p = parms();
        let mut poly = vec![0u64; 64];
        let mut rng = StdRng::seed_from_u64(7);
        let o1 = set_poly_coeffs_normal_shuffled(&mut poly, &mut rng, &p, &mut NullProbe);
        let o2 = set_poly_coeffs_normal_shuffled(&mut poly, &mut rng, &p, &mut NullProbe);
        assert_ne!(o1, o2);
    }
}
