//! The noise and key samplers of SEAL v3.2, including the vulnerable
//! `set_poly_coeffs_normal` routine the RevEAL attack targets.
//!
//! The structure of [`set_poly_coeffs_normal`] is a line-by-line port of the
//! C++ in Fig. 2 of the paper: a [`ClippedNormalDistribution`] draw followed
//! by an `if (noise > 0) … else if (noise < 0) … else …` ladder that writes
//! the residue under every coefficient modulus. The three paths execute
//! *different* instructions — that control-flow variation is the first
//! vulnerability, the value-dependent store is the second, and the negation
//! on the negative path is the third.
//!
//! Every sensitive step reports a [`SamplerEvent`] to a [`SamplerProbe`],
//! which is how the leakage simulators observe the execution without
//! perturbing it.

use crate::params::EncryptionParameters;
use rand::Rng;

/// Which arm of the sign ladder executed for a coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignBranch {
    /// `noise > 0`: direct store of the sampled value.
    Positive,
    /// `noise < 0`: negate, then store `q_j - noise`.
    Negative,
    /// `noise == 0`: store zero.
    Zero,
}

/// One observable step of the sampler, as seen by a probe.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplerEvent {
    /// The outer loop advanced to coefficient `index`.
    CoefficientStart {
        /// Coefficient index in `[0, n)`.
        index: usize,
    },
    /// One `dist(engine)` call completed.
    DistributionSample {
        /// Marsaglia-polar candidate loops executed (0 when the cached spare
        /// was consumed).
        polar_iterations: u32,
        /// Resamples forced by the clipping bound.
        clip_rejections: u32,
        /// The rounded sample.
        value: i64,
    },
    /// The sign ladder resolved to a branch.
    BranchTaken {
        /// Which arm executed.
        branch: SignBranch,
    },
    /// The negative arm executed `noise = -noise`.
    Negation {
        /// Value before negation (negative).
        operand: i64,
        /// Value after negation (positive).
        result: i64,
    },
    /// A residue was written to `poly[i + j * n]`.
    CoefficientStore {
        /// Modulus index `j`.
        modulus_index: usize,
        /// The stored residue.
        residue: u64,
    },
    /// The outer loop finished coefficient `index`.
    CoefficientEnd {
        /// Coefficient index in `[0, n)`.
        index: usize,
    },
}

/// Observer of sampler execution; implemented by the leakage simulators.
pub trait SamplerProbe {
    /// Receives one event, in program order.
    fn record(&mut self, event: &SamplerEvent);
}

/// A probe that discards every event (the "no attacker" configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl SamplerProbe for NullProbe {
    fn record(&mut self, _event: &SamplerEvent) {}
}

/// A probe that stores every event for later inspection.
#[derive(Debug, Clone, Default)]
pub struct RecordingProbe {
    events: Vec<SamplerEvent>,
}

impl RecordingProbe {
    /// Creates an empty recording probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events in program order.
    pub fn events(&self) -> &[SamplerEvent] {
        &self.events
    }

    /// Consumes the probe, returning the events.
    pub fn into_events(self) -> Vec<SamplerEvent> {
        self.events
    }
}

impl SamplerProbe for RecordingProbe {
    fn record(&mut self, event: &SamplerEvent) {
        self.events.push(event.clone());
    }
}

/// SEAL's `ClippedNormalDistribution`: a Gaussian with the tails rejected.
///
/// Internally uses the Marsaglia polar method (the algorithm behind
/// libstdc++'s `std::normal_distribution`), which caches one spare variate —
/// so successive calls have *different* durations, the time-variant
/// behaviour §III-C of the paper works around.
///
/// # Examples
///
/// ```
/// use reveal_bfv::sampler::ClippedNormalDistribution;
/// use rand::SeedableRng;
/// let mut dist = ClippedNormalDistribution::new(0.0, 3.19, 41.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let (value, _stats) = dist.sample(&mut rng);
/// assert!(value.abs() <= 41.0);
/// ```
#[derive(Debug, Clone)]
pub struct ClippedNormalDistribution {
    mean: f64,
    standard_deviation: f64,
    max_deviation: f64,
    spare: Option<f64>,
}

/// Timing-relevant statistics of one distribution call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleStats {
    /// Candidate loops inside the polar method (0 if the spare was used).
    pub polar_iterations: u32,
    /// Rejections caused by the clipping bound.
    pub clip_rejections: u32,
}

impl ClippedNormalDistribution {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `standard_deviation <= 0` or `max_deviation < standard_deviation`.
    pub fn new(mean: f64, standard_deviation: f64, max_deviation: f64) -> Self {
        assert!(
            standard_deviation > 0.0,
            "standard deviation must be positive"
        );
        assert!(
            max_deviation >= standard_deviation,
            "max deviation must be at least one standard deviation"
        );
        Self {
            mean,
            standard_deviation,
            max_deviation,
            spare: None,
        }
    }

    /// Draws one clipped sample, reporting timing statistics.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (f64, SampleStats) {
        let mut stats = SampleStats::default();
        loop {
            let raw = self.standard_normal(rng, &mut stats);
            let value = self.mean + self.standard_deviation * raw;
            if (value - self.mean).abs() <= self.max_deviation {
                return (value, stats);
            }
            stats.clip_rejections += 1;
        }
    }

    /// Draws one clipped sample rounded to the nearest integer, as the
    /// encryptor consumes it.
    pub fn sample_i64<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (i64, SampleStats) {
        let (v, stats) = self.sample(rng);
        (v.round() as i64, stats)
    }

    /// Marsaglia polar method with a cached spare variate.
    fn standard_normal<R: Rng + ?Sized>(&mut self, rng: &mut R, stats: &mut SampleStats) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            stats.polar_iterations += 1;
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let m = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * m);
                return u * m;
            }
        }
    }
}

/// SEAL v3.2's `Encryptor::set_poly_coeffs_normal` — the attacked routine.
///
/// Writes one freshly sampled error polynomial into `poly` using the flat
/// layout `poly[i + j * n]` (coefficient `i`, modulus `j`), reporting every
/// sensitive step to `probe`.
///
/// The branch ladder is kept structurally identical to Fig. 2 of the paper:
///
/// ```text
/// if noise > 0      { store noise under every modulus }
/// else if noise < 0 { noise = -noise; store q_j - noise }
/// else              { store 0 }
/// ```
///
/// # Panics
///
/// Panics if `poly.len() != n * coeff_mod_count`.
pub fn set_poly_coeffs_normal<R: Rng + ?Sized, P: SamplerProbe>(
    poly: &mut [u64],
    rng: &mut R,
    parms: &EncryptionParameters,
    probe: &mut P,
) {
    let coeff_count = parms.poly_modulus_degree();
    let coeff_modulus = parms.coeff_modulus();
    let coeff_mod_count = coeff_modulus.len();
    assert_eq!(
        poly.len(),
        coeff_count * coeff_mod_count,
        "poly buffer must hold n * k residues"
    );
    let mut dist = ClippedNormalDistribution::new(
        0.0,
        parms.noise_standard_deviation(),
        parms.noise_max_deviation(),
    );
    for i in 0..coeff_count {
        probe.record(&SamplerEvent::CoefficientStart { index: i });
        let (mut noise, stats) = dist.sample_i64(rng);
        probe.record(&SamplerEvent::DistributionSample {
            polar_iterations: stats.polar_iterations,
            clip_rejections: stats.clip_rejections,
            value: noise,
        });
        if noise > 0 {
            probe.record(&SamplerEvent::BranchTaken {
                branch: SignBranch::Positive,
            });
            for j in 0..coeff_mod_count {
                let residue = noise as u64;
                poly[i + j * coeff_count] = residue;
                probe.record(&SamplerEvent::CoefficientStore {
                    modulus_index: j,
                    residue,
                });
            }
        } else if noise < 0 {
            probe.record(&SamplerEvent::BranchTaken {
                branch: SignBranch::Negative,
            });
            let operand = noise;
            noise = -noise;
            probe.record(&SamplerEvent::Negation {
                operand,
                result: noise,
            });
            for j in 0..coeff_mod_count {
                let residue = coeff_modulus[j].value() - noise as u64;
                poly[i + j * coeff_count] = residue;
                probe.record(&SamplerEvent::CoefficientStore {
                    modulus_index: j,
                    residue,
                });
            }
        } else {
            probe.record(&SamplerEvent::BranchTaken {
                branch: SignBranch::Zero,
            });
            for j in 0..coeff_mod_count {
                poly[i + j * coeff_count] = 0;
                probe.record(&SamplerEvent::CoefficientStore {
                    modulus_index: j,
                    residue: 0,
                });
            }
        }
        probe.record(&SamplerEvent::CoefficientEnd { index: i });
    }
}

/// Samples a ternary polynomial (SEAL's `R_2` distribution for secrets and
/// the encryption sample `u`): each coefficient uniform in `{-1, 0, 1}`.
pub fn sample_ternary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(-1i64..=1)).collect()
}

/// Samples a polynomial with uniform residues under each coefficient modulus,
/// in the flat `poly[i + j * n]` layout.
pub fn sample_uniform<R: Rng + ?Sized>(parms: &EncryptionParameters, rng: &mut R) -> Vec<u64> {
    let n = parms.poly_modulus_degree();
    let mut out = Vec::with_capacity(n * parms.coeff_modulus().len());
    for m in parms.coeff_modulus() {
        let q = m.value();
        for _ in 0..n {
            out.push(rng.gen_range(0..q));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EncryptionParameters;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_parms() -> EncryptionParameters {
        use reveal_math::Modulus;
        EncryptionParameters::new(
            8,
            vec![Modulus::new(12289).unwrap(), Modulus::new(40961).unwrap()],
            Modulus::new(17).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn clipped_samples_respect_bound() {
        let mut dist = ClippedNormalDistribution::new(0.0, 3.19, 41.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let (v, _) = dist.sample_i64(&mut rng);
            assert!(v.abs() <= 41);
        }
    }

    #[test]
    fn clipped_distribution_moments() {
        let mut dist = ClippedNormalDistribution::new(0.0, 3.19, 41.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let samples: Vec<i64> = (0..n).map(|_| dist.sample_i64(&mut rng).0).collect();
        let mean = samples.iter().sum::<i64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        // Var of round(N(0, σ²)) ≈ σ² + 1/12.
        let expected = 3.19f64 * 3.19 + 1.0 / 12.0;
        assert!((var - expected).abs() < 0.15, "var {var} vs {expected}");
        // The paper observed |coeff| <= 14 over 220k draws; allow a bit more.
        assert!(samples.iter().all(|&s| s.abs() <= 18));
    }

    #[test]
    fn tight_clip_forces_rejections() {
        let mut dist = ClippedNormalDistribution::new(0.0, 3.19, 3.19);
        let mut rng = StdRng::seed_from_u64(3);
        let mut rejected = 0u32;
        for _ in 0..2_000 {
            let (v, stats) = dist.sample(&mut rng);
            assert!(v.abs() <= 3.19);
            rejected += stats.clip_rejections;
        }
        assert!(
            rejected > 100,
            "expected many clip rejections, got {rejected}"
        );
    }

    #[test]
    fn polar_method_uses_cached_spare() {
        let mut dist = ClippedNormalDistribution::new(0.0, 1.0, 100.0);
        let mut rng = StdRng::seed_from_u64(4);
        let (_, s1) = dist.sample(&mut rng);
        let (_, s2) = dist.sample(&mut rng);
        assert!(s1.polar_iterations >= 1);
        assert_eq!(s2.polar_iterations, 0, "second draw should use the spare");
    }

    #[test]
    fn sampler_layout_matches_seal() {
        let parms = small_parms();
        let mut poly = vec![0u64; 16];
        let mut rng = StdRng::seed_from_u64(5);
        let mut probe = RecordingProbe::new();
        set_poly_coeffs_normal(&mut poly, &mut rng, &parms, &mut probe);
        let q0 = parms.coeff_modulus()[0].value();
        let q1 = parms.coeff_modulus()[1].value();
        for i in 0..8 {
            let r0 = poly[i];
            let r1 = poly[i + 8];
            // Residues must encode the same signed value under both moduli.
            let v0 = if r0 > q0 / 2 {
                r0 as i64 - q0 as i64
            } else {
                r0 as i64
            };
            let v1 = if r1 > q1 / 2 {
                r1 as i64 - q1 as i64
            } else {
                r1 as i64
            };
            assert_eq!(v0, v1, "coefficient {i} differs across moduli");
            assert!(v0.abs() <= 41);
        }
    }

    #[test]
    fn probe_sees_branch_structure() {
        let parms = small_parms();
        let mut poly = vec![0u64; 16];
        let mut rng = StdRng::seed_from_u64(6);
        let mut probe = RecordingProbe::new();
        set_poly_coeffs_normal(&mut poly, &mut rng, &parms, &mut probe);
        let events = probe.events();

        // Per coefficient: Start, DistributionSample, BranchTaken,
        // [Negation], 2 stores, End.
        let starts = events
            .iter()
            .filter(|e| matches!(e, SamplerEvent::CoefficientStart { .. }))
            .count();
        assert_eq!(starts, 8);

        let mut idx = 0usize;
        while idx < events.len() {
            assert!(matches!(events[idx], SamplerEvent::CoefficientStart { .. }));
            let value = match &events[idx + 1] {
                SamplerEvent::DistributionSample { value, .. } => *value,
                other => panic!("expected DistributionSample, got {other:?}"),
            };
            let branch = match &events[idx + 2] {
                SamplerEvent::BranchTaken { branch } => *branch,
                other => panic!("expected BranchTaken, got {other:?}"),
            };
            match branch {
                SignBranch::Positive => assert!(value > 0),
                SignBranch::Negative => assert!(value < 0),
                SignBranch::Zero => assert_eq!(value, 0),
            }
            let mut j = idx + 3;
            if branch == SignBranch::Negative {
                match &events[j] {
                    SamplerEvent::Negation { operand, result } => {
                        assert_eq!(*operand, value);
                        assert_eq!(*result, -value);
                    }
                    other => panic!("expected Negation, got {other:?}"),
                }
                j += 1;
            }
            for m in 0..2 {
                match &events[j + m] {
                    SamplerEvent::CoefficientStore { modulus_index, .. } => {
                        assert_eq!(*modulus_index, m);
                    }
                    other => panic!("expected CoefficientStore, got {other:?}"),
                }
            }
            j += 2;
            assert!(matches!(events[j], SamplerEvent::CoefficientEnd { .. }));
            idx = j + 1;
        }
    }

    #[test]
    fn ternary_sampler_support() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = sample_ternary(10_000, &mut rng);
        assert!(v.iter().all(|&x| (-1..=1).contains(&x)));
        // All three values should appear with roughly equal frequency.
        for target in [-1i64, 0, 1] {
            let count = v.iter().filter(|&&x| x == target).count();
            assert!(
                (2800..=3900).contains(&count),
                "count of {target} = {count}"
            );
        }
    }

    #[test]
    fn uniform_sampler_in_range() {
        let parms = small_parms();
        let mut rng = StdRng::seed_from_u64(8);
        let poly = sample_uniform(&parms, &mut rng);
        assert_eq!(poly.len(), 16);
        for (j, m) in parms.coeff_modulus().iter().enumerate() {
            for i in 0..8 {
                assert!(poly[i + j * 8] < m.value());
            }
        }
    }

    proptest! {
        #[test]
        fn prop_residues_consistent(seed in any::<u64>()) {
            let parms = small_parms();
            let mut poly = vec![0u64; 16];
            let mut rng = StdRng::seed_from_u64(seed);
            set_poly_coeffs_normal(&mut poly, &mut rng, &parms, &mut NullProbe);
            let q0 = parms.coeff_modulus()[0].value();
            let q1 = parms.coeff_modulus()[1].value();
            for i in 0..8 {
                let v0 = if poly[i] > q0 / 2 { poly[i] as i64 - q0 as i64 } else { poly[i] as i64 };
                let v1 = if poly[i + 8] > q1 / 2 { poly[i + 8] as i64 - q1 as i64 } else { poly[i + 8] as i64 };
                prop_assert_eq!(v0, v1);
                prop_assert!(v0.abs() <= 41);
            }
        }

        #[test]
        fn prop_clipped_respects_custom_bound(sigma in 0.5f64..5.0, factor in 1.0f64..4.0, seed in any::<u64>()) {
            let bound = sigma * factor;
            let mut dist = ClippedNormalDistribution::new(0.0, sigma, bound);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..200 {
                let (v, _) = dist.sample(&mut rng);
                prop_assert!(v.abs() <= bound + 1e-9);
            }
        }
    }
}
