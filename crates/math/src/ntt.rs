//! Negacyclic number-theoretic transform over a prime modulus.
//!
//! The tables follow the classic Longa–Naehrig/SEAL layout: powers of the
//! primitive `2n`-th root ψ stored in bit-reversed order, a decimation-in-time
//! forward transform (Cooley–Tukey butterflies) and a decimation-in-frequency
//! inverse transform (Gentleman–Sande butterflies) with the final scaling by
//! `n^{-1}` folded into the last pass.
//!
//! With these tables, multiplication in `Z_q[x]/(x^n + 1)` is a pointwise
//! product in the transform domain — the convolution theorem the tests pin
//! down.

use crate::modulus::Modulus;
use std::fmt;

/// Errors produced when building [`NttTables`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NttError {
    /// `n` was not a power of two (or was smaller than 2).
    DegreeNotPowerOfTwo(usize),
    /// The modulus does not support a primitive `2n`-th root of unity.
    NoRootOfUnity { modulus: u64, two_n: u64 },
}

impl fmt::Display for NttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NttError::DegreeNotPowerOfTwo(n) => {
                write!(f, "transform size {n} is not a power of two >= 2")
            }
            NttError::NoRootOfUnity { modulus, two_n } => {
                write!(
                    f,
                    "modulus {modulus} has no primitive {two_n}-th root of unity"
                )
            }
        }
    }
}

impl std::error::Error for NttError {}

/// Precomputed twiddle factors for a fixed `(n, q)` pair.
///
/// # Examples
///
/// ```
/// use reveal_math::{Modulus, NttTables};
/// let q = Modulus::new(132120577)?;
/// let tables = NttTables::new(8, q)?;
/// let mut a = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
/// let original = a.clone();
/// tables.forward(&mut a);
/// tables.inverse(&mut a);
/// assert_eq!(a, original);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct NttTables {
    n: usize,
    modulus: Modulus,
    /// ψ^i in bit-reversed order, i in [0, n).
    root_powers: Vec<u64>,
    /// ψ^{-i} in bit-reversed order.
    inv_root_powers: Vec<u64>,
    /// n^{-1} mod q.
    inv_degree: u64,
}

impl NttTables {
    /// Builds NTT tables for transform size `n` over prime modulus `q`.
    ///
    /// # Errors
    ///
    /// Fails if `n` is not a power of two, or `q` is not prime with
    /// `q ≡ 1 (mod 2n)`.
    pub fn new(n: usize, modulus: Modulus) -> Result<Self, NttError> {
        if n < 2 || !n.is_power_of_two() {
            return Err(NttError::DegreeNotPowerOfTwo(n));
        }
        let two_n = 2 * n as u64;
        let psi = modulus
            .primitive_root_of_unity(two_n)
            .ok_or(NttError::NoRootOfUnity {
                modulus: modulus.value(),
                two_n,
            })?;
        let psi_inv = modulus.inv(psi).expect("root is invertible mod prime");
        let log_n = n.trailing_zeros();

        let mut root_powers = vec![0u64; n];
        let mut inv_root_powers = vec![0u64; n];
        let mut power = 1u64;
        let mut inv_power = 1u64;
        for i in 0..n {
            let rev = (i as u64).reverse_bits() >> (64 - log_n);
            root_powers[rev as usize] = power;
            inv_root_powers[rev as usize] = inv_power;
            power = modulus.mul(power, psi);
            inv_power = modulus.mul(inv_power, psi_inv);
        }
        let inv_degree = modulus.inv(n as u64).expect("n invertible mod prime > n");
        Ok(Self {
            n,
            modulus,
            root_powers,
            inv_root_powers,
            inv_degree,
        })
    }

    /// Transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the transform size is zero (never true for a built table).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The modulus the tables were built for.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// In-place forward negacyclic NTT (coefficient → evaluation domain).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the transform size.
    pub fn forward(&self, values: &mut [u64]) {
        assert_eq!(
            values.len(),
            self.n,
            "input length must match transform size"
        );
        let q = &self.modulus;
        let n = self.n;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let j2 = j1 + t;
                let w = self.root_powers[m + i];
                for j in j1..j2 {
                    let u = values[j];
                    let v = q.mul(values[j + t], w);
                    values[j] = q.add(u, v);
                    values[j + t] = q.sub(u, v);
                }
            }
            m <<= 1;
        }
    }

    /// In-place inverse negacyclic NTT (evaluation → coefficient domain),
    /// including the `n^{-1}` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the transform size.
    pub fn inverse(&self, values: &mut [u64]) {
        assert_eq!(
            values.len(),
            self.n,
            "input length must match transform size"
        );
        let q = &self.modulus;
        let n = self.n;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0usize;
            for i in 0..h {
                let j2 = j1 + t;
                let w = self.inv_root_powers[h + i];
                for j in j1..j2 {
                    let u = values[j];
                    let v = values[j + t];
                    values[j] = q.add(u, v);
                    values[j + t] = q.mul(q.sub(u, v), w);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for v in values.iter_mut() {
            *v = q.mul(*v, self.inv_degree);
        }
    }

    /// Negacyclic convolution of two coefficient vectors via the transform.
    ///
    /// Returns `a * b mod (x^n + 1, q)` without mutating the inputs.
    ///
    /// # Panics
    ///
    /// Panics if either input length differs from the transform size.
    pub fn negacyclic_multiply(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(fb.iter()) {
            *x = self.modulus.mul(*x, *y);
        }
        self.inverse(&mut fa);
        fa
    }
}

/// Schoolbook negacyclic multiplication, used as a test oracle and for
/// moduli without NTT support.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
pub fn negacyclic_multiply_naive(a: &[u64], b: &[u64], modulus: &Modulus) -> Vec<u64> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut out = vec![0u64; n];
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        for j in 0..n {
            let prod = modulus.mul(a[i], b[j]);
            let k = i + j;
            if k < n {
                out[k] = modulus.add(out[k], prod);
            } else {
                out[k - n] = modulus.sub(out[k - n], prod);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tables(n: usize) -> NttTables {
        NttTables::new(n, Modulus::new(132120577).unwrap()).unwrap()
    }

    #[test]
    fn rejects_bad_sizes_and_moduli() {
        let q = Modulus::new(132120577).unwrap();
        assert!(matches!(
            NttTables::new(3, q),
            Err(NttError::DegreeNotPowerOfTwo(3))
        ));
        assert!(matches!(
            NttTables::new(0, q),
            Err(NttError::DegreeNotPowerOfTwo(0))
        ));
        let bad = Modulus::new(97).unwrap();
        assert!(matches!(
            NttTables::new(1024, bad),
            Err(NttError::NoRootOfUnity { .. })
        ));
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [2usize, 4, 8, 64, 1024] {
            let t = tables(n);
            let mut v: Vec<u64> = (0..n as u64).map(|i| i * 17 % 132120577).collect();
            let orig = v.clone();
            t.forward(&mut v);
            assert_ne!(v, orig, "transform should not be identity for n={n}");
            t.inverse(&mut v);
            assert_eq!(v, orig, "roundtrip failed for n={n}");
        }
    }

    #[test]
    fn multiply_by_x_rotates_with_sign() {
        // (x^(n-1)) * x = x^n = -1 in the negacyclic ring.
        let n = 8;
        let t = tables(n);
        let q = t.modulus().value();
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut x = vec![0u64; n];
        x[1] = 1;
        let prod = t.negacyclic_multiply(&a, &x);
        let mut expected = vec![0u64; n];
        expected[0] = q - 1;
        assert_eq!(prod, expected);
    }

    #[test]
    fn matches_schoolbook_small() {
        let n = 16;
        let t = tables(n);
        let q = *t.modulus();
        let a: Vec<u64> = (0..n as u64)
            .map(|i| (i * i * 31 + 7) % q.value())
            .collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 1009 + 3) % q.value()).collect();
        assert_eq!(
            t.negacyclic_multiply(&a, &b),
            negacyclic_multiply_naive(&a, &b, &q)
        );
    }

    #[test]
    fn forward_is_linear() {
        let n = 32;
        let t = tables(n);
        let q = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| i * 999 % q.value()).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i + 5) * 12345 % q.value()).collect();
        let mut sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.add(x, y)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut sum);
        let fsum: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.add(x, y)).collect();
        assert_eq!(sum, fsum);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(coeffs in proptest::collection::vec(0u64..132120577, 64)) {
            let t = tables(64);
            let mut v = coeffs.clone();
            t.forward(&mut v);
            t.inverse(&mut v);
            prop_assert_eq!(v, coeffs);
        }

        #[test]
        fn prop_convolution_theorem(
            a in proptest::collection::vec(0u64..132120577, 32),
            b in proptest::collection::vec(0u64..132120577, 32),
        ) {
            let t = tables(32);
            let fast = t.negacyclic_multiply(&a, &b);
            let slow = negacyclic_multiply_naive(&a, &b, t.modulus());
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_multiplication_commutes(
            a in proptest::collection::vec(0u64..132120577, 16),
            b in proptest::collection::vec(0u64..132120577, 16),
        ) {
            let t = tables(16);
            prop_assert_eq!(t.negacyclic_multiply(&a, &b), t.negacyclic_multiply(&b, &a));
        }
    }
}
