//! Generation of NTT-friendly primes, mirroring SEAL's default
//! `coeff_modulus` construction.

use crate::arith::is_prime;
use crate::modulus::{Modulus, ModulusError};
use std::fmt;

/// Errors produced by prime generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimeError {
    /// The requested bit size was outside `[2, 62]`.
    BadBitSize(u32),
    /// No prime of the requested shape exists below the bit bound.
    Exhausted { bit_size: u32, factor: u64 },
    /// Constructing the [`Modulus`] failed (should not happen for valid input).
    Modulus(ModulusError),
}

impl fmt::Display for PrimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimeError::BadBitSize(b) => write!(f, "prime bit size {b} out of range [2, 62]"),
            PrimeError::Exhausted { bit_size, factor } => write!(
                f,
                "no {bit_size}-bit prime congruent to 1 mod {factor} remains"
            ),
            PrimeError::Modulus(e) => write!(f, "modulus construction failed: {e}"),
        }
    }
}

impl std::error::Error for PrimeError {}

impl From<ModulusError> for PrimeError {
    fn from(e: ModulusError) -> Self {
        PrimeError::Modulus(e)
    }
}

/// Returns the largest `count` primes with exactly `bit_size` bits that are
/// congruent to `1 (mod factor)`, in descending order.
///
/// This is the shape SEAL requires of `coeff_modulus` primes so that the
/// negacyclic NTT of size `n` exists (`factor = 2n`).
///
/// # Errors
///
/// Returns [`PrimeError::BadBitSize`] for bit sizes outside `[2, 62]` and
/// [`PrimeError::Exhausted`] when fewer than `count` such primes exist.
///
/// # Examples
///
/// ```
/// use reveal_math::primes::ntt_primes;
/// let ps = ntt_primes(30, 2048, 2)?;
/// assert_eq!(ps.len(), 2);
/// for p in &ps {
///     assert!(p.is_prime());
///     assert_eq!((p.value() - 1) % 2048, 0);
///     assert_eq!(p.bit_count(), 30);
/// }
/// # Ok::<(), reveal_math::primes::PrimeError>(())
/// ```
pub fn ntt_primes(bit_size: u32, factor: u64, count: usize) -> Result<Vec<Modulus>, PrimeError> {
    if !(2..=62).contains(&bit_size) {
        return Err(PrimeError::BadBitSize(bit_size));
    }
    let upper = if bit_size == 62 {
        (1u64 << 62) - 1
    } else {
        (1u64 << bit_size) - 1
    };
    let lower = 1u64 << (bit_size - 1);
    // Largest candidate ≡ 1 (mod factor) not exceeding `upper`.
    let mut candidate = upper - ((upper - 1) % factor);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        if candidate < lower || candidate < factor {
            return Err(PrimeError::Exhausted { bit_size, factor });
        }
        if is_prime(candidate) {
            out.push(Modulus::new(candidate)?);
        }
        if candidate < factor {
            return Err(PrimeError::Exhausted { bit_size, factor });
        }
        candidate -= factor;
    }
    Ok(out)
}

/// Finds a plaintext modulus `t` that supports batching for degree `n`
/// (`t` prime, `t ≡ 1 mod 2n`), at the given bit size.
///
/// # Errors
///
/// Same as [`ntt_primes`].
pub fn batching_plain_modulus(bit_size: u32, n: u64) -> Result<Modulus, PrimeError> {
    Ok(ntt_primes(bit_size, 2 * n, 1)?.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_descending_distinct_primes() {
        let ps = ntt_primes(40, 4096, 3).unwrap();
        assert_eq!(ps.len(), 3);
        for w in ps.windows(2) {
            assert!(w[0].value() > w[1].value());
        }
        for p in &ps {
            assert!(p.is_prime());
            assert_eq!((p.value() - 1) % 4096, 0);
            assert_eq!(p.bit_count(), 40);
        }
    }

    #[test]
    fn seal_128_q_is_reachable() {
        // The paper's q = 132120577 is a 27-bit NTT prime for n = 1024; it is
        // the 111th in the descending enumeration of 27-bit primes ≡ 1 mod 2048.
        let ps = ntt_primes(27, 2048, 111).unwrap();
        assert_eq!(ps.last().unwrap().value(), 132120577);
    }

    #[test]
    fn rejects_bad_bit_size() {
        assert!(matches!(
            ntt_primes(1, 2048, 1),
            Err(PrimeError::BadBitSize(1))
        ));
        assert!(matches!(
            ntt_primes(63, 2048, 1),
            Err(PrimeError::BadBitSize(63))
        ));
    }

    #[test]
    fn exhausts_small_ranges() {
        // Only finitely many 4-bit primes ≡ 1 mod 4 exist (13 only).
        assert!(matches!(
            ntt_primes(4, 4, 3),
            Err(PrimeError::Exhausted { .. })
        ));
    }

    #[test]
    fn batching_modulus_shape() {
        let t = batching_plain_modulus(17, 1024).unwrap();
        assert!(t.is_prime());
        assert_eq!((t.value() - 1) % 2048, 0);
    }
}
