#![forbid(unsafe_code)]
// Indexed loops are the clearest notation for the dense numeric kernels
// in this workspace (convolutions, scatter matrices, lattice bases).
#![allow(clippy::needless_range_loop)]

//! # reveal-math
//!
//! Number-theoretic building blocks for the RevEAL reproduction: modular
//! arithmetic with Barrett reduction, negacyclic number-theoretic transforms,
//! dense polynomials over `Z_q[x]/(x^n + 1)`, residue-number-system (RNS)
//! polynomial chains in SEAL's memory layout, NTT-friendly prime generation,
//! and a small big-integer type for CRT composition.
//!
//! Everything is written from scratch on top of `std` (plus `rand` for the
//! stochastic pieces elsewhere in the workspace) so the numerics stay
//! auditable.
//!
//! ## Example
//!
//! ```
//! use reveal_math::{Modulus, PolyContext};
//!
//! // The SEAL-128 (n = 1024) coefficient modulus from the RevEAL paper.
//! let q = Modulus::new(132120577)?;
//! let ctx = PolyContext::new(1024, q)?;
//!
//! let mut e = vec![0i64; 1024];
//! e[0] = -3; // a Gaussian noise coefficient, as sampled by SEAL
//! let noise = ctx.polynomial_from_signed(&e);
//! assert_eq!(noise.coeffs()[0], q.value() - 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod arith;
pub mod bigint;
pub mod modulus;
pub mod ntt;
pub mod poly;
pub mod primes;
pub mod rns;

pub use bigint::BigUint;
pub use modulus::{Modulus, ModulusError};
pub use ntt::{NttError, NttTables};
pub use poly::{PolyContext, Polynomial};
pub use rns::{RnsBasis, RnsError, RnsPolynomial};
