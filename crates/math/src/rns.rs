//! Residue-number-system (RNS) polynomials over a chain of coprime moduli.
//!
//! SEAL stores an `R_q` polynomial with `q = q_1 · … · q_k` as `k`
//! concatenated residue polynomials, indexed `poly[i + j * n]` for
//! coefficient `i` under modulus `j`. This module reproduces that layout and
//! the CRT composition needed by decryption.

use crate::bigint::BigUint;
use crate::modulus::Modulus;
use crate::poly::{PolyContext, Polynomial};
use std::fmt;
use std::sync::Arc;

/// Errors produced when building an [`RnsBasis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RnsError {
    /// The basis was empty.
    Empty,
    /// Two moduli share a common factor.
    NotCoprime { a: u64, b: u64 },
    /// Context construction failed for one modulus.
    Context(crate::ntt::NttError),
}

impl fmt::Display for RnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RnsError::Empty => write!(f, "RNS basis must contain at least one modulus"),
            RnsError::NotCoprime { a, b } => write!(f, "moduli {a} and {b} are not coprime"),
            RnsError::Context(e) => write!(f, "context construction failed: {e}"),
        }
    }
}

impl std::error::Error for RnsError {}

impl From<crate::ntt::NttError> for RnsError {
    fn from(e: crate::ntt::NttError) -> Self {
        RnsError::Context(e)
    }
}

/// A chain of pairwise-coprime moduli with precomputed CRT data.
#[derive(Clone)]
pub struct RnsBasis {
    inner: Arc<RnsBasisInner>,
}

struct RnsBasisInner {
    n: usize,
    moduli: Vec<Modulus>,
    contexts: Vec<PolyContext>,
    /// q = product of all moduli.
    product: BigUint,
    /// punctured[j] = q / q_j.
    punctured: Vec<BigUint>,
    /// gamma[j] = (q / q_j)^{-1} mod q_j.
    inv_punctured: Vec<u64>,
}

impl fmt::Debug for RnsBasis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RnsBasis")
            .field("n", &self.inner.n)
            .field(
                "moduli",
                &self
                    .inner
                    .moduli
                    .iter()
                    .map(Modulus::value)
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl RnsBasis {
    /// Builds a basis for degree `n` from pairwise-coprime moduli.
    ///
    /// # Errors
    ///
    /// Fails when the list is empty, moduli are not pairwise coprime, or a
    /// polynomial context cannot be built.
    pub fn new(n: usize, moduli: Vec<Modulus>) -> Result<Self, RnsError> {
        if moduli.is_empty() {
            return Err(RnsError::Empty);
        }
        for i in 0..moduli.len() {
            for j in i + 1..moduli.len() {
                if crate::arith::gcd(moduli[i].value(), moduli[j].value()) != 1 {
                    return Err(RnsError::NotCoprime {
                        a: moduli[i].value(),
                        b: moduli[j].value(),
                    });
                }
            }
        }
        let contexts = moduli
            .iter()
            .map(|&m| PolyContext::new(n, m))
            .collect::<Result<Vec<_>, _>>()?;
        let mut product = BigUint::one();
        for m in &moduli {
            product = product.mul_u64(m.value());
        }
        let punctured: Vec<BigUint> = moduli
            .iter()
            .map(|m| product.divmod_u64(m.value()).0)
            .collect();
        let inv_punctured = moduli
            .iter()
            .zip(&punctured)
            .map(|(m, p)| {
                let p_mod = p.rem_u64(m.value());
                m.inv(p_mod)
                    .expect("punctured product invertible (coprime basis)")
            })
            .collect();
        Ok(Self {
            inner: Arc::new(RnsBasisInner {
                n,
                moduli,
                contexts,
                product,
                punctured,
                inv_punctured,
            }),
        })
    }

    /// Degree bound `n`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.inner.n
    }

    /// Number of moduli in the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.moduli.len()
    }

    /// Whether the chain is empty (never true for a built basis).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.moduli.is_empty()
    }

    /// The moduli in chain order.
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.inner.moduli
    }

    /// Per-modulus polynomial contexts.
    #[inline]
    pub fn contexts(&self) -> &[PolyContext] {
        &self.inner.contexts
    }

    /// The full modulus `q` as a big integer.
    #[inline]
    pub fn product(&self) -> &BigUint {
        &self.inner.product
    }

    /// An all-zero RNS polynomial.
    pub fn zero(&self) -> RnsPolynomial {
        RnsPolynomial {
            basis: self.clone(),
            residues: self.inner.contexts.iter().map(PolyContext::zero).collect(),
        }
    }

    /// Builds an RNS polynomial from signed coefficients, reducing under every
    /// modulus — exactly what SEAL's noise writer does.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n`.
    pub fn from_signed(&self, coeffs: &[i64]) -> RnsPolynomial {
        assert_eq!(coeffs.len(), self.inner.n);
        RnsPolynomial {
            basis: self.clone(),
            residues: self
                .inner
                .contexts
                .iter()
                .map(|c| c.polynomial_from_signed(coeffs))
                .collect(),
        }
    }

    /// Builds an RNS polynomial from per-modulus residue polynomials.
    ///
    /// # Panics
    ///
    /// Panics if the residue count or any context mismatches the basis.
    pub fn from_residues(&self, residues: Vec<Polynomial>) -> RnsPolynomial {
        assert_eq!(residues.len(), self.len(), "one residue per modulus");
        for (r, c) in residues.iter().zip(&self.inner.contexts) {
            assert!(r.context() == *c, "residue context mismatch");
        }
        RnsPolynomial {
            basis: self.clone(),
            residues,
        }
    }

    /// CRT-composes per-modulus residues of a single coefficient into the
    /// value modulo `q`.
    pub fn compose_coefficient(&self, residues: &[u64]) -> BigUint {
        assert_eq!(residues.len(), self.len());
        let mut acc = BigUint::zero();
        for j in 0..self.len() {
            let m = &self.inner.moduli[j];
            let term = m.mul(residues[j] % m.value(), self.inner.inv_punctured[j]);
            acc = acc.add(&self.inner.punctured[j].mul_u64(term));
        }
        let (_, rem) = acc.divmod(&self.inner.product);
        rem
    }

    fn same_basis(&self, other: &RnsBasis) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.n == other.inner.n && self.inner.moduli == other.inner.moduli)
    }
}

impl PartialEq for RnsBasis {
    fn eq(&self, other: &Self) -> bool {
        self.same_basis(other)
    }
}

/// A polynomial in `R_q` stored as one residue polynomial per modulus.
#[derive(Clone, PartialEq)]
pub struct RnsPolynomial {
    basis: RnsBasis,
    residues: Vec<Polynomial>,
}

impl fmt::Debug for RnsPolynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RnsPolynomial")
            .field("basis", &self.basis)
            .field("residues", &self.residues.len())
            .finish()
    }
}

impl RnsPolynomial {
    /// The owning basis.
    #[inline]
    pub fn basis(&self) -> &RnsBasis {
        &self.basis
    }

    /// Residue polynomials in basis order.
    #[inline]
    pub fn residues(&self) -> &[Polynomial] {
        &self.residues
    }

    /// Mutable residue polynomials.
    #[inline]
    pub fn residues_mut(&mut self) -> &mut [Polynomial] {
        &mut self.residues
    }

    /// Flattens into SEAL's `poly[i + j * n]` memory layout.
    pub fn to_flat(&self) -> Vec<u64> {
        let n = self.basis.degree();
        let mut out = Vec::with_capacity(n * self.residues.len());
        for r in &self.residues {
            out.extend_from_slice(r.coeffs());
        }
        out
    }

    /// Rebuilds from SEAL's flat layout.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != n * k`.
    pub fn from_flat(basis: &RnsBasis, flat: &[u64]) -> Self {
        let n = basis.degree();
        assert_eq!(flat.len(), n * basis.len(), "flat length must be n * k");
        let residues = basis
            .contexts()
            .iter()
            .enumerate()
            .map(|(j, c)| c.polynomial(&flat[j * n..(j + 1) * n]))
            .collect();
        Self {
            basis: basis.clone(),
            residues,
        }
    }

    fn check_same(&self, other: &RnsPolynomial) {
        assert!(self.basis.same_basis(&other.basis), "RNS basis mismatch");
    }

    /// Ring addition.
    pub fn add(&self, other: &RnsPolynomial) -> RnsPolynomial {
        self.check_same(other);
        RnsPolynomial {
            basis: self.basis.clone(),
            residues: self
                .residues
                .iter()
                .zip(&other.residues)
                .map(|(a, b)| a.add(b))
                .collect(),
        }
    }

    /// Ring subtraction.
    pub fn sub(&self, other: &RnsPolynomial) -> RnsPolynomial {
        self.check_same(other);
        RnsPolynomial {
            basis: self.basis.clone(),
            residues: self
                .residues
                .iter()
                .zip(&other.residues)
                .map(|(a, b)| a.sub(b))
                .collect(),
        }
    }

    /// Ring negation.
    pub fn neg(&self) -> RnsPolynomial {
        RnsPolynomial {
            basis: self.basis.clone(),
            residues: self.residues.iter().map(Polynomial::neg).collect(),
        }
    }

    /// Ring multiplication (negacyclic, per-modulus NTT).
    pub fn mul(&self, other: &RnsPolynomial) -> RnsPolynomial {
        self.check_same(other);
        RnsPolynomial {
            basis: self.basis.clone(),
            residues: self
                .residues
                .iter()
                .zip(&other.residues)
                .map(|(a, b)| a.mul(b))
                .collect(),
        }
    }

    /// Multiplies every coefficient by a scalar (reduced per modulus).
    pub fn scalar_mul(&self, scalar: u64) -> RnsPolynomial {
        RnsPolynomial {
            basis: self.basis.clone(),
            residues: self.residues.iter().map(|r| r.scalar_mul(scalar)).collect(),
        }
    }

    /// CRT-composes coefficient `i` to its value in `[0, q)`.
    pub fn compose_coefficient(&self, i: usize) -> BigUint {
        let residues: Vec<u64> = self.residues.iter().map(|r| r.coeffs()[i]).collect();
        self.basis.compose_coefficient(&residues)
    }

    /// CRT-composes every coefficient.
    pub fn compose(&self) -> Vec<BigUint> {
        (0..self.basis.degree())
            .map(|i| self.compose_coefficient(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::ntt_primes;
    use proptest::prelude::*;

    fn basis2(n: usize) -> RnsBasis {
        let moduli = ntt_primes(30, 2 * n as u64, 2).unwrap();
        RnsBasis::new(n, moduli).unwrap()
    }

    #[test]
    fn rejects_empty_and_noncoprime() {
        assert!(matches!(RnsBasis::new(8, vec![]), Err(RnsError::Empty)));
        let m = Modulus::new(15).unwrap();
        let m2 = Modulus::new(21).unwrap(); // gcd 3
        assert!(matches!(
            RnsBasis::new(8, vec![m, m2]),
            Err(RnsError::NotCoprime { .. })
        ));
    }

    #[test]
    fn product_and_compose_roundtrip() {
        let b = basis2(8);
        let q0 = b.moduli()[0].value();
        let q1 = b.moduli()[1].value();
        assert_eq!(b.product().to_u128(), Some(q0 as u128 * q1 as u128));

        // value -> residues -> compose must be the identity
        for value in [0u128, 1, 41, q0 as u128, q0 as u128 * q1 as u128 - 1] {
            let residues = vec![(value % q0 as u128) as u64, (value % q1 as u128) as u64];
            assert_eq!(b.compose_coefficient(&residues).to_u128(), Some(value));
        }
    }

    #[test]
    fn from_signed_negative_wraps_per_modulus() {
        let b = basis2(8);
        let p = b.from_signed(&[-3, 0, 0, 0, 0, 0, 0, 0]);
        for (r, m) in p.residues().iter().zip(b.moduli()) {
            assert_eq!(r.coeffs()[0], m.value() - 3);
        }
        // Composed value equals q - 3.
        let composed = p.compose_coefficient(0);
        let qm3 = b.product().checked_sub(&BigUint::from(3u64)).unwrap();
        assert_eq!(composed, qm3);
    }

    #[test]
    fn flat_layout_roundtrip() {
        let b = basis2(8);
        let p = b.from_signed(&[1, -2, 3, -4, 5, -6, 7, -8]);
        let flat = p.to_flat();
        assert_eq!(flat.len(), 16);
        // SEAL layout: second modulus block starts at n.
        assert_eq!(flat[0], p.residues()[0].coeffs()[0]);
        assert_eq!(flat[8], p.residues()[1].coeffs()[0]);
        assert_eq!(RnsPolynomial::from_flat(&b, &flat), p);
    }

    #[test]
    fn ring_ops_match_composed_arithmetic() {
        let b = basis2(8);
        let x = b.from_signed(&[5, 4, 3, 2, 1, 0, -1, -2]);
        let y = b.from_signed(&[-1, 2, -3, 4, -5, 6, -7, 8]);
        let sum = x.add(&y);
        for i in 0..8 {
            let xi = x.compose_coefficient(i);
            let yi = y.compose_coefficient(i);
            let si = sum.compose_coefficient(i);
            let (_, expected) = xi.add(&yi).divmod(b.product());
            assert_eq!(si, expected, "coefficient {i}");
        }
    }

    proptest! {
        #[test]
        fn prop_compose_split_roundtrip(v in 0u64..(1u64 << 58)) {
            // 30-bit primes: q0 * q1 > 2^58, so v is always representable.
            let b = basis2(4);
            let q0 = b.moduli()[0].value();
            let q1 = b.moduli()[1].value();
            prop_assert!((v as u128) < q0 as u128 * q1 as u128);
            let residues = vec![v % q0, v % q1];
            prop_assert_eq!(b.compose_coefficient(&residues).to_u64(), Some(v));
        }

        #[test]
        fn prop_add_commutes(
            a in proptest::collection::vec(-1000i64..1000, 4),
            c in proptest::collection::vec(-1000i64..1000, 4),
        ) {
            let b = basis2(4);
            let x = b.from_signed(&a);
            let y = b.from_signed(&c);
            prop_assert_eq!(x.add(&y), y.add(&x));
            prop_assert_eq!(x.mul(&y), y.mul(&x));
        }
    }
}
