//! Scalar modular-arithmetic helpers shared by the rest of the crate.
//!
//! Everything here operates on `u64` residues with moduli below 2^62 so that
//! sums of two residues never overflow. The widening primitives go through
//! `u128`, which the compiler lowers to a single `mul` on x86-64/aarch64.

/// Multiplies two residues modulo `modulus` using a widening 128-bit product.
///
/// # Panics
///
/// Panics in debug builds if `modulus` is zero.
///
/// # Examples
///
/// ```
/// use reveal_math::arith::mul_mod;
/// assert_eq!(mul_mod(3, 4, 5), 2);
/// ```
#[inline]
pub fn mul_mod(a: u64, b: u64, modulus: u64) -> u64 {
    debug_assert!(modulus != 0);
    ((a as u128 * b as u128) % modulus as u128) as u64
}

/// Adds two residues modulo `modulus`.
///
/// Both inputs must already be reduced; the sum is computed without overflow
/// for moduli below 2^63.
#[inline]
pub fn add_mod(a: u64, b: u64, modulus: u64) -> u64 {
    debug_assert!(a < modulus && b < modulus);
    let s = a + b;
    if s >= modulus {
        s - modulus
    } else {
        s
    }
}

/// Subtracts `b` from `a` modulo `modulus`.
#[inline]
pub fn sub_mod(a: u64, b: u64, modulus: u64) -> u64 {
    debug_assert!(a < modulus && b < modulus);
    if a >= b {
        a - b
    } else {
        a + modulus - b
    }
}

/// Negates a residue modulo `modulus`.
#[inline]
pub fn neg_mod(a: u64, modulus: u64) -> u64 {
    debug_assert!(a < modulus);
    if a == 0 {
        0
    } else {
        modulus - a
    }
}

/// Raises `base` to `exp` modulo `modulus` by square-and-multiply.
///
/// # Examples
///
/// ```
/// use reveal_math::arith::pow_mod;
/// assert_eq!(pow_mod(2, 10, 1000), 24);
/// ```
pub fn pow_mod(base: u64, mut exp: u64, modulus: u64) -> u64 {
    debug_assert!(modulus != 0);
    let mut result = 1 % modulus;
    let mut base = base % modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            result = mul_mod(result, base, modulus);
        }
        base = mul_mod(base, base, modulus);
        exp >>= 1;
    }
    result
}

/// Computes the greatest common divisor of `a` and `b`.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Extended Euclidean algorithm over signed 128-bit integers.
///
/// Returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
pub fn extended_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = extended_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Computes the multiplicative inverse of `a` modulo `modulus`.
///
/// Returns `None` when `gcd(a, modulus) != 1`.
///
/// # Examples
///
/// ```
/// use reveal_math::arith::inv_mod;
/// assert_eq!(inv_mod(3, 7), Some(5));
/// assert_eq!(inv_mod(2, 4), None);
/// ```
pub fn inv_mod(a: u64, modulus: u64) -> Option<u64> {
    if modulus == 0 {
        return None;
    }
    let (g, x, _) = extended_gcd(a as i128, modulus as i128);
    if g != 1 {
        return None;
    }
    let m = modulus as i128;
    Some(((x % m + m) % m) as u64)
}

/// Reduces a signed integer into `[0, modulus)`.
///
/// This is the conversion SEAL performs when writing a sampled (possibly
/// negative) noise coefficient into an `R_q` polynomial.
///
/// # Examples
///
/// ```
/// use reveal_math::arith::signed_to_residue;
/// assert_eq!(signed_to_residue(-3, 17), 14);
/// assert_eq!(signed_to_residue(5, 17), 5);
/// ```
#[inline]
pub fn signed_to_residue(value: i64, modulus: u64) -> u64 {
    let m = modulus as i128;
    let v = (value as i128 % m + m) % m;
    v as u64
}

/// Lifts a residue in `[0, modulus)` to the centered representative in
/// `(-modulus/2, modulus/2]`.
///
/// # Examples
///
/// ```
/// use reveal_math::arith::residue_to_signed;
/// assert_eq!(residue_to_signed(14, 17), -3);
/// assert_eq!(residue_to_signed(5, 17), 5);
/// ```
#[inline]
pub fn residue_to_signed(value: u64, modulus: u64) -> i64 {
    debug_assert!(value < modulus);
    if value > modulus / 2 {
        -((modulus - value) as i64)
    } else {
        value as i64
    }
}

/// Deterministic Miller–Rabin primality test, exact for all `u64` inputs.
///
/// Uses the standard small witness set that is known to be complete below
/// 2^64.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Rounds `numerator / denominator` to the nearest integer (ties away from
/// zero), operating on non-negative 128-bit values.
#[inline]
pub fn div_round(numerator: u128, denominator: u128) -> u128 {
    debug_assert!(denominator != 0);
    (numerator + denominator / 2) / denominator
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mul_mod_basics() {
        assert_eq!(mul_mod(0, 123, 97), 0);
        assert_eq!(mul_mod(96, 96, 97), 1);
        assert_eq!(mul_mod(u64::MAX % 97, 2, 97), (u64::MAX % 97) * 2 % 97);
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let q = 132120577u64;
        for a in [0u64, 1, 2, q / 2, q - 1] {
            assert_eq!(sub_mod(add_mod(a, 5 % q, q), 5 % q, q), a);
            assert_eq!(add_mod(a, neg_mod(a, q), q), 0);
        }
    }

    #[test]
    fn pow_mod_fermat() {
        let q = 132120577u64; // prime
        for a in [2u64, 3, 12345, q - 1] {
            assert_eq!(pow_mod(a, q - 1, q), 1);
        }
    }

    #[test]
    fn inv_mod_matches_pow() {
        let q = 132120577u64;
        for a in [1u64, 2, 3, 65537, q - 2] {
            let inv = inv_mod(a, q).expect("invertible");
            assert_eq!(mul_mod(a, inv, q), 1);
            assert_eq!(inv, pow_mod(a, q - 2, q));
        }
    }

    #[test]
    fn inv_mod_noninvertible() {
        assert_eq!(inv_mod(6, 9), None);
        assert_eq!(inv_mod(0, 7), None);
        assert_eq!(inv_mod(5, 0), None);
    }

    #[test]
    fn signed_residue_roundtrip_examples() {
        let q = 132120577u64;
        for v in [-41i64, -1, 0, 1, 41] {
            assert_eq!(residue_to_signed(signed_to_residue(v, q), q), v);
        }
    }

    #[test]
    fn primality_known_values() {
        assert!(is_prime(2));
        assert!(is_prime(132120577));
        assert!(is_prime(0xffff_ffff_0000_0001)); // Goldilocks prime
        assert!(!is_prime(1));
        assert!(!is_prime(0));
        assert!(!is_prime(132120575));
        assert!(!is_prime((1u64 << 32) + 1)); // 641 * 6700417
    }

    #[test]
    fn div_round_ties() {
        assert_eq!(div_round(5, 2), 3);
        assert_eq!(div_round(4, 2), 2);
        assert_eq!(div_round(0, 7), 0);
        assert_eq!(div_round(20, 7), 3);
    }

    proptest! {
        #[test]
        fn prop_mul_mod_commutative(a in 0u64..u64::MAX, b in 0u64..u64::MAX, q in 2u64..(1u64<<62)) {
            prop_assert_eq!(mul_mod(a % q, b % q, q), mul_mod(b % q, a % q, q));
        }

        #[test]
        fn prop_add_mod_associative(a in 0u64..(1u64<<61), b in 0u64..(1u64<<61), c in 0u64..(1u64<<61), q in 2u64..(1u64<<61)) {
            let (a, b, c) = (a % q, b % q, c % q);
            prop_assert_eq!(add_mod(add_mod(a, b, q), c, q), add_mod(a, add_mod(b, c, q), q));
        }

        #[test]
        fn prop_signed_roundtrip(v in -(1i64<<40)..(1i64<<40), q in 3u64..(1u64<<62)) {
            prop_assume!((v.unsigned_abs()) < q / 2);
            prop_assert_eq!(residue_to_signed(signed_to_residue(v, q), q), v);
        }

        #[test]
        fn prop_inv_mod_is_inverse(a in 1u64..(1u64<<61), q in 2u64..(1u64<<61)) {
            let a = a % q;
            prop_assume!(a != 0);
            if let Some(inv) = inv_mod(a, q) {
                prop_assert_eq!(mul_mod(a, inv, q), 1);
            } else {
                prop_assert!(gcd(a, q) != 1);
            }
        }

        #[test]
        fn prop_pow_mod_add_law(a in 1u64..(1u64<<61), e1 in 0u64..1000, e2 in 0u64..1000, q in 2u64..(1u64<<61)) {
            let a = a % q;
            let lhs = mul_mod(pow_mod(a, e1, q), pow_mod(a, e2, q), q);
            let rhs = pow_mod(a, e1 + e2, q);
            prop_assert_eq!(lhs, rhs);
        }
    }
}
