//! Dense polynomials over `Z_q[x]/(x^n + 1)` for a single modulus.

use crate::modulus::Modulus;
use crate::ntt::{negacyclic_multiply_naive, NttTables};
use std::fmt;
use std::sync::Arc;

/// A polynomial in `Z_q[x]/(x^n + 1)` with coefficients stored low-to-high.
///
/// The NTT tables are shared behind an [`Arc`] so cloning a polynomial is a
/// coefficient copy only. All ring operations panic when the operands come
/// from different `(n, q)` contexts — mixing contexts is a programming error,
/// not a runtime condition.
///
/// # Examples
///
/// ```
/// use reveal_math::{Modulus, PolyContext};
/// let ctx = PolyContext::new(8, Modulus::new(132120577)?)?;
/// let a = ctx.polynomial_from_signed(&[1, -2, 3, 0, 0, 0, 0, 0]);
/// let b = ctx.polynomial_from_signed(&[0, 1, 0, 0, 0, 0, 0, 0]); // x
/// let c = a.mul(&b);
/// assert_eq!(c.to_signed()[1], 1);
/// assert_eq!(c.to_signed()[2], -2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct Polynomial {
    context: Arc<PolyContextInner>,
    coeffs: Vec<u64>,
}

/// Shared `(n, q, NTT)` context from which polynomials are minted.
#[derive(Clone)]
pub struct PolyContext {
    inner: Arc<PolyContextInner>,
}

struct PolyContextInner {
    n: usize,
    modulus: Modulus,
    ntt: Option<NttTables>,
}

impl fmt::Debug for PolyContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolyContext")
            .field("n", &self.inner.n)
            .field("q", &self.inner.modulus.value())
            .field("ntt", &self.inner.ntt.is_some())
            .finish()
    }
}

impl PolyContext {
    /// Creates a context for degree `n` (power of two) and modulus `q`.
    ///
    /// NTT tables are built when the modulus supports them; otherwise
    /// multiplication falls back to the schoolbook algorithm.
    ///
    /// # Errors
    ///
    /// Returns an error when `n` is not a power of two ≥ 2.
    pub fn new(n: usize, modulus: Modulus) -> Result<Self, crate::ntt::NttError> {
        if n < 2 || !n.is_power_of_two() {
            return Err(crate::ntt::NttError::DegreeNotPowerOfTwo(n));
        }
        let ntt = NttTables::new(n, modulus).ok();
        Ok(Self {
            inner: Arc::new(PolyContextInner { n, modulus, ntt }),
        })
    }

    /// Polynomial degree bound `n`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.inner.n
    }

    /// The coefficient modulus.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.inner.modulus
    }

    /// Whether fast NTT multiplication is available.
    #[inline]
    pub fn has_ntt(&self) -> bool {
        self.inner.ntt.is_some()
    }

    /// The zero polynomial.
    pub fn zero(&self) -> Polynomial {
        Polynomial {
            context: Arc::clone(&self.inner),
            coeffs: vec![0; self.inner.n],
        }
    }

    /// Builds a polynomial from already-reduced residues.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n` or any coefficient is not reduced.
    pub fn polynomial(&self, coeffs: &[u64]) -> Polynomial {
        assert_eq!(coeffs.len(), self.inner.n, "coefficient count must equal n");
        let q = self.inner.modulus.value();
        assert!(
            coeffs.iter().all(|&c| c < q),
            "coefficients must be reduced mod q"
        );
        Polynomial {
            context: Arc::clone(&self.inner),
            coeffs: coeffs.to_vec(),
        }
    }

    /// Builds a polynomial from signed coefficients (centered representation).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n`.
    pub fn polynomial_from_signed(&self, coeffs: &[i64]) -> Polynomial {
        assert_eq!(coeffs.len(), self.inner.n, "coefficient count must equal n");
        let m = &self.inner.modulus;
        Polynomial {
            context: Arc::clone(&self.inner),
            coeffs: coeffs.iter().map(|&c| m.from_signed(c)).collect(),
        }
    }

    /// The constant polynomial `value`.
    pub fn constant(&self, value: u64) -> Polynomial {
        let mut p = self.zero();
        p.coeffs[0] = self.inner.modulus.reduce(value);
        p
    }

    fn same_context(&self, other: &PolyContext) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
            || (self.inner.n == other.inner.n && self.inner.modulus == other.inner.modulus)
    }
}

impl PartialEq for PolyContext {
    fn eq(&self, other: &Self) -> bool {
        self.same_context(other)
    }
}

impl Polynomial {
    /// The owning context.
    pub fn context(&self) -> PolyContext {
        PolyContext {
            inner: Arc::clone(&self.context),
        }
    }

    /// Borrow of the reduced coefficients, low-to-high.
    #[inline]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutable borrow of the coefficients.
    ///
    /// Callers must keep values reduced; the debug assertions in ring
    /// operations will catch violations.
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// Centered signed representation of every coefficient.
    pub fn to_signed(&self) -> Vec<i64> {
        let m = &self.context.modulus;
        self.coeffs.iter().map(|&c| m.to_signed(c)).collect()
    }

    /// Whether all coefficients are zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Infinity norm of the centered representation.
    pub fn infinity_norm(&self) -> u64 {
        let m = &self.context.modulus;
        self.coeffs
            .iter()
            .map(|&c| m.to_signed(c).unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    fn check_same(&self, other: &Polynomial) {
        assert!(
            self.context.n == other.context.n && self.context.modulus == other.context.modulus,
            "polynomials come from different contexts"
        );
    }

    /// Pointwise ring addition.
    ///
    /// # Panics
    ///
    /// Panics when the operands come from different contexts.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        self.check_same(other);
        let m = &self.context.modulus;
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| m.add(a, b))
            .collect();
        Polynomial {
            context: Arc::clone(&self.context),
            coeffs,
        }
    }

    /// Pointwise ring subtraction.
    ///
    /// # Panics
    ///
    /// Panics when the operands come from different contexts.
    pub fn sub(&self, other: &Polynomial) -> Polynomial {
        self.check_same(other);
        let m = &self.context.modulus;
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| m.sub(a, b))
            .collect();
        Polynomial {
            context: Arc::clone(&self.context),
            coeffs,
        }
    }

    /// Coefficient-wise negation.
    pub fn neg(&self) -> Polynomial {
        let m = &self.context.modulus;
        Polynomial {
            context: Arc::clone(&self.context),
            coeffs: self.coeffs.iter().map(|&a| m.neg(a)).collect(),
        }
    }

    /// Negacyclic product, via NTT when available.
    ///
    /// # Panics
    ///
    /// Panics when the operands come from different contexts.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        self.check_same(other);
        let coeffs = match &self.context.ntt {
            Some(t) => t.negacyclic_multiply(&self.coeffs, &other.coeffs),
            None => negacyclic_multiply_naive(&self.coeffs, &other.coeffs, &self.context.modulus),
        };
        Polynomial {
            context: Arc::clone(&self.context),
            coeffs,
        }
    }

    /// Multiplicative inverse in `Z_q[x]/(x^n + 1)`, when it exists.
    ///
    /// Requires NTT support (prime `q ≡ 1 mod 2n`); the inverse exists iff
    /// no NTT evaluation is zero. Used by the attack's message-recovery step
    /// (`u = (c1 - e2) / p1`, Eq. 2 of the paper).
    pub fn inverse(&self) -> Option<Polynomial> {
        let ntt = self.context.ntt.as_ref()?;
        let m = &self.context.modulus;
        let mut evals = self.coeffs.clone();
        ntt.forward(&mut evals);
        for e in &mut evals {
            *e = m.inv(*e)?;
        }
        ntt.inverse(&mut evals);
        Some(Polynomial {
            context: Arc::clone(&self.context),
            coeffs: evals,
        })
    }

    /// Multiplies every coefficient by a scalar.
    pub fn scalar_mul(&self, scalar: u64) -> Polynomial {
        let m = &self.context.modulus;
        let s = m.reduce(scalar);
        Polynomial {
            context: Arc::clone(&self.context),
            coeffs: self.coeffs.iter().map(|&a| m.mul(a, s)).collect(),
        }
    }
}

impl fmt::Debug for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shown: Vec<u64> = self.coeffs.iter().copied().take(8).collect();
        write!(
            f,
            "Polynomial(n={}, q={}, coeffs[..8]={:?}{})",
            self.context.n,
            self.context.modulus.value(),
            shown,
            if self.coeffs.len() > 8 { ", …" } else { "" }
        )
    }
}

impl PartialEq for Polynomial {
    fn eq(&self, other: &Self) -> bool {
        self.context.n == other.context.n
            && self.context.modulus == other.context.modulus
            && self.coeffs == other.coeffs
    }
}

impl Eq for Polynomial {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctx(n: usize) -> PolyContext {
        PolyContext::new(n, Modulus::new(132120577).unwrap()).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let c = ctx(8);
        assert_eq!(c.degree(), 8);
        assert!(c.has_ntt());
        let p = c.polynomial_from_signed(&[1, -1, 2, -2, 0, 0, 0, 41]);
        assert_eq!(p.to_signed(), vec![1, -1, 2, -2, 0, 0, 0, 41]);
        assert_eq!(p.infinity_norm(), 41);
        assert!(!p.is_zero());
        assert!(c.zero().is_zero());
    }

    #[test]
    #[should_panic(expected = "coefficient count")]
    fn wrong_length_panics() {
        ctx(8).polynomial(&[0; 4]);
    }

    #[test]
    #[should_panic(expected = "reduced")]
    fn unreduced_panics() {
        ctx(8).polynomial(&[u64::MAX; 8]);
    }

    #[test]
    fn add_sub_neg_laws() {
        let c = ctx(16);
        let a = c.polynomial_from_signed(&(0..16).map(|i| i - 8).collect::<Vec<_>>());
        let b = c.polynomial_from_signed(&(0..16).map(|i| 3 * i + 1).collect::<Vec<_>>());
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.add(&a.neg()), c.zero());
        assert_eq!(a.sub(&b), b.sub(&a).neg());
    }

    #[test]
    fn mul_distributes_over_add() {
        let c = ctx(32);
        let a = c.polynomial_from_signed(&(0..32).map(|i| i * 7 - 100).collect::<Vec<_>>());
        let b = c.polynomial_from_signed(&(0..32).map(|i| i * i - 50).collect::<Vec<_>>());
        let d = c.polynomial_from_signed(&(0..32).map(|i| -i * 3 + 9).collect::<Vec<_>>());
        assert_eq!(a.mul(&b.add(&d)), a.mul(&b).add(&a.mul(&d)));
    }

    #[test]
    fn inverse_multiplies_to_one() {
        let c = ctx(16);
        let p = c.polynomial_from_signed(&(0..16).map(|i| i * 13 + 5).collect::<Vec<_>>());
        let inv = p.inverse().expect("generic polynomial is invertible");
        assert_eq!(p.mul(&inv), c.constant(1));
    }

    #[test]
    fn zero_and_noninvertible_have_no_inverse() {
        let c = ctx(8);
        assert!(c.zero().inverse().is_none());
        // Without NTT support there is no inversion path.
        let no_ntt = PolyContext::new(8, Modulus::new(101).unwrap()).unwrap();
        let p = no_ntt.polynomial_from_signed(&[1, 2, 0, 0, 0, 0, 0, 0]);
        assert!(p.inverse().is_none());
    }

    #[test]
    fn constant_is_multiplicative_identity() {
        let c = ctx(8);
        let one = c.constant(1);
        let p = c.polynomial_from_signed(&[5, -4, 3, -2, 1, 0, -1, 2]);
        assert_eq!(p.mul(&one), p);
        assert_eq!(p.scalar_mul(1), p);
    }

    #[test]
    fn no_ntt_fallback_matches() {
        // A prime that is not ≡ 1 mod 2n still supports schoolbook multiply
        // (101 ≡ 5 mod 16, so no 16th root of unity exists).
        let q = Modulus::new(101).unwrap();
        let c = PolyContext::new(8, q).unwrap();
        assert!(!c.has_ntt());
        let a = c.polynomial_from_signed(&[1, 2, 3, 4, 0, 0, 0, 0]);
        let b = c.polynomial_from_signed(&[0, 0, 0, 0, 0, 0, 0, 1]);
        // a * x^7 = x^7 + 2x^8 + 3x^9 + 4x^10 ≡ -2 - 3x - 4x^2 + x^7.
        assert_eq!(a.mul(&b).to_signed(), vec![-2, -3, -4, 0, 0, 0, 0, 1]);
    }

    proptest! {
        #[test]
        fn prop_ring_commutative(
            a in proptest::collection::vec(-1000i64..1000, 16),
            b in proptest::collection::vec(-1000i64..1000, 16),
        ) {
            let c = ctx(16);
            let pa = c.polynomial_from_signed(&a);
            let pb = c.polynomial_from_signed(&b);
            prop_assert_eq!(pa.mul(&pb), pb.mul(&pa));
            prop_assert_eq!(pa.add(&pb), pb.add(&pa));
        }

        #[test]
        fn prop_mul_associative(
            a in proptest::collection::vec(-100i64..100, 8),
            b in proptest::collection::vec(-100i64..100, 8),
            d in proptest::collection::vec(-100i64..100, 8),
        ) {
            let c = ctx(8);
            let pa = c.polynomial_from_signed(&a);
            let pb = c.polynomial_from_signed(&b);
            let pd = c.polynomial_from_signed(&d);
            prop_assert_eq!(pa.mul(&pb).mul(&pd), pa.mul(&pb.mul(&pd)));
        }

        #[test]
        fn prop_signed_roundtrip(a in proptest::collection::vec(-(66060288i64)..66060288, 8)) {
            let c = ctx(8);
            let p = c.polynomial_from_signed(&a);
            prop_assert_eq!(p.to_signed(), a);
        }
    }
}
