//! A minimal arbitrary-precision unsigned integer.
//!
//! BFV decryption computes `round(t * |c(s)|_q / q)` where `q` is the product
//! of all RNS primes — up to a few hundred bits for large parameter sets.
//! This module provides exactly the operations that computation needs
//! (add, sub, compare, mul by u64, divmod by u64, full divmod) on a
//! little-endian `Vec<u64>` limb representation, with no external
//! dependencies.

use std::cmp::Ordering;
use std::fmt;

/// An unsigned big integer stored as little-endian 64-bit limbs.
///
/// The representation is normalized: no trailing zero limbs (zero is the
/// empty limb vector).
///
/// # Examples
///
/// ```
/// use reveal_math::BigUint;
/// let a = BigUint::from(u64::MAX);
/// let b = a.mul_u64(2).add(&BigUint::from(2u64));
/// assert_eq!(b, BigUint::from(1u64).shl_limbs(1).mul_u64(2)); // 2^65
/// ```
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The zero value.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// Builds from little-endian limbs (normalizing trailing zeros).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Self { limbs }
    }

    /// Borrow of the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bit_count(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// Shifts left by whole 64-bit limbs (multiply by 2^(64k)).
    pub fn shl_limbs(&self, k: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let mut limbs = vec![0u64; k];
        limbs.extend_from_slice(&self.limbs);
        Self { limbs }
    }

    /// Addition.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        Self::from_limbs(out)
    }

    /// Subtraction; returns `None` when `other > self`.
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(Self::from_limbs(out))
    }

    /// Multiplication by a single limb.
    pub fn mul_u64(&self, m: u64) -> Self {
        if m == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            let wide = l as u128 * m as u128 + carry as u128;
            out.push(wide as u64);
            carry = (wide >> 64) as u64;
        }
        if carry > 0 {
            out.push(carry);
        }
        Self::from_limbs(out)
    }

    /// Full multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let wide = a as u128 * b as u128 + out[i + j] as u128 + carry as u128;
                out[i + j] = wide as u64;
                carry = (wide >> 64) as u64;
            }
            out[i + other.limbs.len()] = out[i + other.limbs.len()].wrapping_add(carry);
        }
        Self::from_limbs(out)
    }

    /// Divides by a single limb, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn divmod_u64(&self, d: u64) -> (Self, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = ((rem as u128) << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = (cur % d as u128) as u64;
        }
        (Self::from_limbs(out), rem)
    }

    /// Long division, returning `(quotient, remainder)`.
    ///
    /// Uses simple bitwise long division — adequate for the few-hundred-bit
    /// values BFV decryption produces.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divmod(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero");
        if divisor.limbs.len() == 1 {
            let (q, r) = self.divmod_u64(divisor.limbs[0]);
            return (q, Self::from(r));
        }
        if self < divisor {
            return (Self::zero(), self.clone());
        }
        let bits = self.bit_count();
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = Self::zero();
        for bit in (0..bits).rev() {
            // rem = rem * 2 + bit(self, bit)
            rem = rem.add(&rem);
            let limb = (bit / 64) as usize;
            if (self.limbs[limb] >> (bit % 64)) & 1 == 1 {
                rem = rem.add(&Self::one());
            }
            if rem >= *divisor {
                rem = rem.checked_sub(divisor).expect("rem >= divisor");
                quotient[(bit / 64) as usize] |= 1u64 << (bit % 64);
            }
        }
        (Self::from_limbs(quotient), rem)
    }

    /// Reduces modulo a `u64` value.
    pub fn rem_u64(&self, m: u64) -> u64 {
        self.divmod_u64(m).1
    }

    /// Converts to `u64`, if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128`, if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// `round(self * numerator / denominator)` with ties rounding up.
    pub fn mul_div_round(&self, numerator: u64, denominator: &Self) -> Self {
        let scaled = self.mul_u64(numerator);
        let (half, _) = denominator.divmod_u64(2);
        let (q, _) = scaled.add(&half).divmod(denominator);
        q
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_limbs(vec![v])
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Decimal conversion by repeated division; values are small.
        let mut digits = Vec::new();
        let mut v = self.clone();
        while !v.is_zero() {
            let (q, r) = v.divmod_u64(10);
            digits.push(char::from(b'0' + r as u8));
            v = q;
        }
        let s: String = digits.into_iter().rev().collect();
        write!(f, "{s}")
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_normalization() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::from_limbs(vec![5, 0, 0]), BigUint::from(5u64));
        assert_eq!(BigUint::from(0u64), BigUint::zero());
        assert_eq!(BigUint::one().bit_count(), 1);
        assert_eq!(BigUint::from(u64::MAX).bit_count(), 64);
        assert_eq!(BigUint::from(1u128 << 64).bit_count(), 65);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BigUint::from(0xffff_ffff_ffff_ffffu64);
        let b = BigUint::from(1u64);
        let s = a.add(&b);
        assert_eq!(s.to_u128(), Some(1u128 << 64));
        assert_eq!(s.checked_sub(&b), Some(a.clone()));
        assert_eq!(b.checked_sub(&a), None);
    }

    #[test]
    fn mul_and_divmod() {
        let a = BigUint::from(132120577u64);
        let sq = a.mul(&a);
        assert_eq!(sq.to_u128(), Some(132120577u128 * 132120577));
        let (q, r) = sq.divmod(&a);
        assert_eq!(q, a);
        assert!(r.is_zero());
    }

    #[test]
    fn divmod_u64_matches() {
        let a = BigUint::from(u128::MAX);
        let (q, r) = a.divmod_u64(97);
        assert_eq!(r as u128, u128::MAX % 97);
        assert_eq!(q.to_u128(), Some(u128::MAX / 97));
    }

    #[test]
    fn long_division_multi_limb_divisor() {
        // (2^130 + 12345) / (2^70 + 3)
        let dividend = BigUint::from(1u64)
            .shl_limbs(2)
            .mul_u64(4)
            .add(&BigUint::from(12345u64));
        let divisor = BigUint::from(1u128 << 70).add(&BigUint::from(3u64));
        let (q, r) = dividend.divmod(&divisor);
        assert_eq!(q.mul(&divisor).add(&r), dividend);
        assert!(r < divisor);
    }

    #[test]
    fn mul_div_round_rounds_to_nearest() {
        // round(7 * 3 / 4) = round(5.25) = 5
        let v = BigUint::from(7u64);
        assert_eq!(v.mul_div_round(3, &BigUint::from(4u64)).to_u64(), Some(5));
        // round(5 * 1 / 2) = round(2.5) = 3 (ties up)
        let v = BigUint::from(5u64);
        assert_eq!(v.mul_div_round(1, &BigUint::from(2u64)).to_u64(), Some(3));
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(
            BigUint::from(1234567890123456789u64).to_string(),
            "1234567890123456789"
        );
        let big = BigUint::from(u64::MAX).add(&BigUint::one());
        assert_eq!(big.to_string(), "18446744073709551616");
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in any::<u128>(), b in any::<u128>()) {
            let ba = BigUint::from(a);
            let bb = BigUint::from(b);
            let s = ba.add(&bb);
            prop_assert_eq!(s.checked_sub(&bb), Some(ba));
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let prod = BigUint::from(a).mul(&BigUint::from(b));
            prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
        }

        #[test]
        fn prop_divmod_identity(a in any::<u128>(), d in 1u128..u128::MAX) {
            let ba = BigUint::from(a);
            let bd = BigUint::from(d);
            let (q, r) = ba.divmod(&bd);
            prop_assert_eq!(q.mul(&bd).add(&r), ba);
            prop_assert!(r < bd);
        }

        #[test]
        fn prop_rem_u64(a in any::<u128>(), d in 1u64..u64::MAX) {
            prop_assert_eq!(BigUint::from(a).rem_u64(d) as u128, a % d as u128);
        }

        #[test]
        fn prop_ordering_matches_u128(a in any::<u128>(), b in any::<u128>()) {
            prop_assert_eq!(BigUint::from(a).cmp(&BigUint::from(b)), a.cmp(&b));
        }
    }
}
