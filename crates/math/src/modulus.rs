//! A prime (or at least odd) modulus with precomputed Barrett constants,
//! mirroring SEAL's `SmallModulus` type.

use crate::arith::{self, is_prime};
use std::fmt;

/// Errors produced when constructing a [`Modulus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModulusError {
    /// The value was zero or one.
    TooSmall(u64),
    /// The value exceeded the 62-bit bound required by the Barrett routines.
    TooLarge(u64),
}

impl fmt::Display for ModulusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModulusError::TooSmall(v) => write!(f, "modulus {v} must be at least 2"),
            ModulusError::TooLarge(v) => write!(f, "modulus {v} exceeds 62 bits"),
        }
    }
}

impl std::error::Error for ModulusError {}

/// An integer modulus `q < 2^62` with precomputed Barrett reduction data.
///
/// The Barrett constant is `floor(2^128 / q)` stored as two 64-bit limbs,
/// which is exactly SEAL's `const_ratio` layout. All arithmetic methods keep
/// operands reduced.
///
/// # Examples
///
/// ```
/// use reveal_math::Modulus;
/// let q = Modulus::new(132120577)?;
/// assert_eq!(q.mul(2, q.value() - 1), q.value() - 2);
/// # Ok::<(), reveal_math::ModulusError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    /// floor(2^128 / value), low limb then high limb.
    const_ratio: [u64; 2],
    bit_count: u32,
    is_prime: bool,
}

impl Modulus {
    /// Creates a modulus with precomputed Barrett data.
    ///
    /// # Errors
    ///
    /// Returns [`ModulusError::TooSmall`] for values below 2 and
    /// [`ModulusError::TooLarge`] for values needing more than 62 bits.
    pub fn new(value: u64) -> Result<Self, ModulusError> {
        if value < 2 {
            return Err(ModulusError::TooSmall(value));
        }
        if value >> 62 != 0 {
            return Err(ModulusError::TooLarge(value));
        }
        // floor(2^128 / value) via long division of 2^128 by value.
        let high = u128::MAX / value as u128; // floor((2^128 - 1)/value)
                                              // 2^128 = (u128::MAX) + 1; floor(2^128/v) differs from
                                              // floor((2^128-1)/v) only when v divides 2^128, i.e. v is a power of
                                              // two.
        let ratio = if value.is_power_of_two() {
            high + 1
        } else {
            high
        };
        Ok(Self {
            value,
            const_ratio: [ratio as u64, (ratio >> 64) as u64],
            bit_count: 64 - value.leading_zeros(),
            is_prime: is_prime(value),
        })
    }

    /// The raw modulus value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of significant bits in the modulus.
    #[inline]
    pub fn bit_count(&self) -> u32 {
        self.bit_count
    }

    /// Whether the modulus is prime (checked at construction).
    #[inline]
    pub fn is_prime(&self) -> bool {
        self.is_prime
    }

    /// Barrett constant `floor(2^128 / q)` as `[low, high]` limbs.
    #[inline]
    pub fn const_ratio(&self) -> [u64; 2] {
        self.const_ratio
    }

    /// Reduces an arbitrary `u64` modulo `q` using Barrett reduction.
    #[inline]
    pub fn reduce(&self, input: u64) -> u64 {
        // tmp = floor(input * const_ratio / 2^128) approximates input / q.
        let tmp = ((input as u128 * self.const_ratio[1] as u128) >> 64) as u64;
        let r = input.wrapping_sub(tmp.wrapping_mul(self.value));
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Reduces an arbitrary `u128` modulo `q`.
    #[inline]
    pub fn reduce_u128(&self, input: u128) -> u64 {
        (input % self.value as u128) as u64
    }

    /// Modular addition of two reduced residues.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        arith::add_mod(a, b, self.value)
    }

    /// Modular subtraction of two reduced residues.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        arith::sub_mod(a, b, self.value)
    }

    /// Modular negation of a reduced residue.
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        arith::neg_mod(a, self.value)
    }

    /// Modular multiplication of two reduced residues.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Modular exponentiation.
    #[inline]
    pub fn pow(&self, base: u64, exp: u64) -> u64 {
        arith::pow_mod(base, exp, self.value)
    }

    /// Multiplicative inverse, if it exists.
    #[inline]
    pub fn inv(&self, a: u64) -> Option<u64> {
        arith::inv_mod(a, self.value)
    }

    /// Maps a signed integer to its residue in `[0, q)`.
    #[inline]
    pub fn from_signed(&self, value: i64) -> u64 {
        arith::signed_to_residue(value, self.value)
    }

    /// Lifts a residue to its centered signed representative.
    #[inline]
    pub fn to_signed(&self, value: u64) -> i64 {
        arith::residue_to_signed(value, self.value)
    }

    /// Finds a generator of the multiplicative group when `q` is prime.
    ///
    /// Returns `None` when the modulus is not prime.
    pub fn primitive_generator(&self) -> Option<u64> {
        if !self.is_prime {
            return None;
        }
        let order = self.value - 1;
        let factors = distinct_prime_factors(order);
        'candidate: for g in 2..self.value {
            for &f in &factors {
                if self.pow(g, order / f) == 1 {
                    continue 'candidate;
                }
            }
            return Some(g);
        }
        None
    }

    /// Finds a primitive `2n`-th root of unity ψ modulo prime `q`
    /// (requires `q ≡ 1 mod 2n`). Used to build negacyclic NTT tables.
    ///
    /// Returns `None` when the modulus is not prime or no such root exists.
    pub fn primitive_root_of_unity(&self, two_n: u64) -> Option<u64> {
        if !self.is_prime || !(self.value - 1).is_multiple_of(two_n) {
            return None;
        }
        let g = self.primitive_generator()?;
        let root = self.pow(g, (self.value - 1) / two_n);
        // root has order dividing 2n; verify it is exactly 2n.
        if self.pow(root, two_n / 2) == self.value - 1 {
            Some(root)
        } else {
            // Try successive powers of the generator (cannot happen for a true
            // generator, but keep the check defensive).
            None
        }
    }
}

impl fmt::Display for Modulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// Returns the distinct prime factors of `n` by trial division with a
/// Pollard-rho fallback for large cofactors.
fn distinct_prime_factors(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
        if n.is_multiple_of(p) {
            factors.push(p);
            while n.is_multiple_of(p) {
                n /= p;
            }
        }
    }
    let mut stack = vec![n];
    while let Some(m) = stack.pop() {
        if m < 2 {
            continue;
        }
        if is_prime(m) {
            if !factors.contains(&m) {
                factors.push(m);
            }
            continue;
        }
        let d = pollard_rho(m);
        stack.push(d);
        stack.push(m / d);
    }
    factors.sort_unstable();
    factors
}

/// Pollard's rho with Brent cycle detection; `n` must be composite and odd.
fn pollard_rho(n: u64) -> u64 {
    debug_assert!(!is_prime(n) && n > 3);
    let mut c = 1u64;
    loop {
        let f = |x: u64| (arith::mul_mod(x, x, n) + c) % n;
        let (mut x, mut y, mut d) = (2u64, 2u64, 1u64);
        while d == 1 {
            x = f(x);
            y = f(f(y));
            d = arith::gcd(x.abs_diff(y), n);
        }
        if d != n {
            return d;
        }
        c += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_values() {
        assert_eq!(Modulus::new(0), Err(ModulusError::TooSmall(0)));
        assert_eq!(Modulus::new(1), Err(ModulusError::TooSmall(1)));
        assert!(Modulus::new(1u64 << 62).is_err());
        assert!(Modulus::new((1u64 << 62) - 1).is_ok());
    }

    #[test]
    fn barrett_reduce_matches_rem() {
        let q = Modulus::new(132120577).unwrap();
        for x in [
            0u64,
            1,
            132120576,
            132120577,
            132120578,
            u64::MAX,
            0xdead_beef_cafe_f00d,
        ] {
            assert_eq!(q.reduce(x), x % q.value());
        }
    }

    #[test]
    fn seal_128_modulus_properties() {
        let q = Modulus::new(132120577).unwrap();
        assert!(q.is_prime());
        assert_eq!(q.bit_count(), 27);
        // NTT-friendly for n = 1024: q ≡ 1 (mod 2048).
        assert_eq!((q.value() - 1) % 2048, 0);
    }

    #[test]
    fn generator_has_full_order() {
        let q = Modulus::new(132120577).unwrap();
        let g = q.primitive_generator().unwrap();
        let order = q.value() - 1;
        for &f in &[2u64, 3, 7, 11] {
            if order.is_multiple_of(f) {
                assert_ne!(q.pow(g, order / f), 1);
            }
        }
        assert_eq!(q.pow(g, order), 1);
    }

    #[test]
    fn root_of_unity_order_is_exact() {
        let q = Modulus::new(132120577).unwrap();
        let psi = q.primitive_root_of_unity(2048).unwrap();
        assert_eq!(q.pow(psi, 2048), 1);
        assert_eq!(q.pow(psi, 1024), q.value() - 1);
    }

    #[test]
    fn root_of_unity_missing_for_nonfriendly_modulus() {
        let q = Modulus::new(97).unwrap(); // 96 not divisible by 2048
        assert_eq!(q.primitive_root_of_unity(2048), None);
    }

    #[test]
    fn power_of_two_modulus_reduces() {
        let q = Modulus::new(1u64 << 32).unwrap();
        assert!(!q.is_prime());
        assert_eq!(q.reduce(u64::MAX), u64::MAX % (1u64 << 32));
    }

    #[test]
    fn distinct_factors_of_composites() {
        assert_eq!(distinct_prime_factors(2 * 2 * 3 * 53), vec![2, 3, 53]);
        assert_eq!(distinct_prime_factors(132120576), vec![2, 3, 7]);
        // 132120576 = 2^21 * 63 = 2^21 * 9 * 7 = 2^21 * 3^2 * 7
    }

    proptest! {
        #[test]
        fn prop_reduce_matches_rem(x in any::<u64>(), q in 2u64..(1u64<<62)) {
            let m = Modulus::new(q).unwrap();
            prop_assert_eq!(m.reduce(x), x % q);
        }

        #[test]
        fn prop_mul_matches_naive(a in any::<u64>(), b in any::<u64>(), q in 2u64..(1u64<<62)) {
            let m = Modulus::new(q).unwrap();
            let (a, b) = (a % q, b % q);
            prop_assert_eq!(m.mul(a, b), ((a as u128 * b as u128) % q as u128) as u64);
        }

        #[test]
        fn prop_signed_center_bounds(x in any::<u64>(), q in 3u64..(1u64<<62)) {
            let m = Modulus::new(q).unwrap();
            let s = m.to_signed(x % q);
            prop_assert!(s.unsigned_abs() <= q / 2 + 1);
            prop_assert_eq!(m.from_signed(s), x % q);
        }
    }
}
