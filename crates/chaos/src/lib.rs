#![forbid(unsafe_code)]
// Fault injection must corrupt traces, never the injector: malformed
// spans and degenerate captures get typed handling, not panics.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![allow(clippy::needless_range_loop)]

//! # reveal-chaos
//!
//! A seeded, composable acquisition-fault injector for stress-testing the
//! RevEAL attack pipeline. Real capture campaigns suffer clock jitter,
//! amplifier drift, glitch spikes, ADC saturation and trigger failures; the
//! paper's clean SAKURA-G traces sidestep all of that, so the reproduction
//! synthesizes it here instead — deterministically, with ground truth.
//!
//! Every fault is a typed [`Fault`] value; a [`ChaosPlan`] applies a list of
//! them from a master seed and returns both the corrupted trace and an
//! [`InjectionLog`] recording exactly which samples were touched and which
//! coefficients' decision zones were corrupted. Tests use the log to assert
//! the robust attack driver never upgrades a corrupted coefficient to a
//! wrong "perfect" hint.
//!
//! ## Example
//!
//! ```
//! use reveal_chaos::{ChaosPlan, Fault};
//!
//! let samples = vec![1.0; 512];
//! let windows = vec![(100, 300)];
//! let plan = ChaosPlan::noise_only(42, 0.25);
//! let injected = plan.inject(&samples, &windows);
//! assert_eq!(injected.samples.len(), samples.len());
//! assert!((injected.log.injected_noise_sigma - 0.25).abs() < 1e-12);
//! ```

pub mod fault;
pub mod frame;
pub mod inject;

pub use fault::Fault;
pub use frame::{
    split_frames, FrameChunk, FrameEvent, FrameFault, FrameLog, FramePlan, ScrambledFrames,
};
pub use inject::{
    ChaosPlan, FaultEvent, Injected, InjectionLog, GAIN_CORRUPTION_TOLERANCE, ZONE_MARGIN,
};
