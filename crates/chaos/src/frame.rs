//! Frame-level stream faults: what goes wrong *between* the probe and the
//! analysis service.
//!
//! The sample-level taxonomy in [`crate::fault`] corrupts the physics of a
//! capture; this module corrupts its **transport**. A serving pipeline
//! receives traces chopped into frames over a lossy link, and the four
//! classic failure modes are: a frame arrives cut short, a frame arrives
//! twice, frames arrive out of order, and the stream dies mid-flight.
//!
//! The ground-truth contract mirrors [`crate::inject::InjectionLog`]:
//! [`FramePlan::scramble`] returns both the perturbed arrival sequence and
//! a [`FrameLog`] recording exactly which frames were touched and —
//! crucially — whether any *data* was lost. Duplication and reordering are
//! **benign**: a correct reassembler must recover the original trace
//! bit-identically. Truncation and disconnect are **lossy**: the service
//! must degrade (or quarantine), never panic. Tests key off
//! [`FrameLog::data_lost`] to assert exactly that split.
//!
//! Seeding follows the sample-level injector: every fault kind has a stable
//! [`FrameFault::seed_tag`] (disjoint from the [`crate::Fault`] tags), and
//! the per-stream RNG is `derive_seed(derive_seed(derive_seed(seed, tag),
//! stream_id), occurrence)`, so one plan drives an entire many-victim load
//! test reproducibly while every stream sees independent randomness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reveal_par::derive_seed;
use std::collections::BTreeMap;
use std::fmt;

/// One frame of a trace stream: `samples[..]` is the payload carrying the
/// contiguous slice of the capture at position `seq` of the stream, and
/// `last` marks the final frame (so a receiver knows the expected count).
#[derive(Debug, Clone, PartialEq)]
pub struct FrameChunk {
    /// Zero-based position of this frame in the original stream.
    pub seq: u32,
    /// Whether this is the final frame of the trace.
    pub last: bool,
    /// The payload samples.
    pub samples: Vec<f64>,
}

/// Splits a capture into frames of `frame_len` samples (the final frame
/// carries the remainder and is marked `last`). `frame_len` is floored at 1;
/// an empty capture yields a single empty last frame so the stream still
/// terminates.
pub fn split_frames(samples: &[f64], frame_len: usize) -> Vec<FrameChunk> {
    let frame_len = frame_len.max(1);
    if samples.is_empty() {
        return vec![FrameChunk {
            seq: 0,
            last: true,
            samples: Vec::new(),
        }];
    }
    let count = samples.len().div_ceil(frame_len);
    (0..count)
        .map(|i| {
            let start = i * frame_len;
            let end = (start + frame_len).min(samples.len());
            FrameChunk {
                seq: i as u32,
                last: i + 1 == count,
                samples: samples[start..end].to_vec(),
            }
        })
        .collect()
}

/// One transport fault. As with [`crate::Fault`], the zero value of every
/// knob is a no-op so intensity sweeps start provably clean.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameFault {
    /// Each frame is independently cut short with probability `rate`,
    /// keeping `keep_fraction` of its payload (at least one sample).
    /// **Lossy**: samples are gone.
    TruncatedFrame { rate: f64, keep_fraction: f64 },
    /// Each frame is independently retransmitted with probability `rate`:
    /// an identical copy arrives right after the original. **Benign**: a
    /// deduplicating reassembler recovers the stream exactly.
    DuplicatedFrame { rate: f64 },
    /// Each arrival position is independently swapped `distance` places
    /// forward with probability `rate`. **Benign**: a sequence-numbered
    /// reassembler recovers the stream exactly.
    OutOfOrderArrival { rate: f64, distance: usize },
    /// With probability `rate` (one draw per stream) the connection dies at
    /// a seeded cut point: at least one frame is delivered, the rest never
    /// arrive. **Lossy**: the trace can never complete.
    MidStreamDisconnect { rate: f64 },
}

impl FrameFault {
    /// Stable short name, used in logs and the bench artifact.
    pub fn name(&self) -> &'static str {
        match self {
            FrameFault::TruncatedFrame { .. } => "truncated_frame",
            FrameFault::DuplicatedFrame { .. } => "duplicated_frame",
            FrameFault::OutOfOrderArrival { .. } => "out_of_order_arrival",
            FrameFault::MidStreamDisconnect { .. } => "mid_stream_disconnect",
        }
    }

    /// Stable per-kind tag mixed into the RNG seed derivation; disjoint
    /// from every [`crate::Fault::seed_tag`] so frame- and sample-level
    /// faults sharing one master seed stay decorrelated.
    pub fn seed_tag(&self) -> u64 {
        match self {
            FrameFault::TruncatedFrame { .. } => 0x7F4A,
            FrameFault::DuplicatedFrame { .. } => 0xA0D5,
            FrameFault::OutOfOrderArrival { .. } => 0x0F0E,
            FrameFault::MidStreamDisconnect { .. } => 0xD15C,
        }
    }

    /// Whether every knob is at its no-op value.
    pub fn is_noop(&self) -> bool {
        match *self {
            FrameFault::TruncatedFrame {
                rate,
                keep_fraction,
            } => rate <= 0.0 || keep_fraction >= 1.0,
            FrameFault::DuplicatedFrame { rate }
            | FrameFault::OutOfOrderArrival { rate, .. }
            | FrameFault::MidStreamDisconnect { rate } => rate <= 0.0,
        }
    }

    /// Whether this fault can destroy payload data (as opposed to merely
    /// permuting or repeating it).
    pub fn is_lossy(&self) -> bool {
        matches!(
            self,
            FrameFault::TruncatedFrame { .. } | FrameFault::MidStreamDisconnect { .. }
        )
    }
}

impl fmt::Display for FrameFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameFault::TruncatedFrame {
                rate,
                keep_fraction,
            } => write!(f, "truncated_frame(rate={rate}, keep={keep_fraction})"),
            FrameFault::DuplicatedFrame { rate } => write!(f, "duplicated_frame(rate={rate})"),
            FrameFault::OutOfOrderArrival { rate, distance } => {
                write!(f, "out_of_order_arrival(rate={rate}, d={distance})")
            }
            FrameFault::MidStreamDisconnect { rate } => {
                write!(f, "mid_stream_disconnect(rate={rate})")
            }
        }
    }
}

/// One applied frame fault: which fault hit which original frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameEvent {
    /// The fault that ran.
    pub fault: FrameFault,
    /// The original sequence number it landed on.
    pub seq: u32,
}

/// Ground truth for one scrambled stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameLog {
    /// Every fault application, in application order.
    pub events: Vec<FrameEvent>,
    /// Sequence numbers whose payload was cut short.
    pub truncated: Vec<u32>,
    /// Sequence numbers that arrived more than once.
    pub duplicated: Vec<u32>,
    /// Number of arrival-order swaps performed.
    pub reordered: usize,
    /// First original sequence number lost to a disconnect, if one fired.
    pub disconnected_at: Option<u32>,
    /// Whether any payload data is unrecoverable (truncation or
    /// disconnect). When `false`, a correct reassembler must reproduce the
    /// original trace bit-identically.
    pub data_lost: bool,
}

/// The scrambled arrival sequence plus its ground-truth log.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrambledFrames {
    /// Frames in arrival order (possibly truncated, duplicated, reordered,
    /// or cut short by a disconnect).
    pub frames: Vec<FrameChunk>,
    /// What was done to them.
    pub log: FrameLog,
}

/// A seeded list of frame faults applied to trace streams. The transport
/// counterpart of [`crate::ChaosPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FramePlan {
    /// Master seed; combined with each fault's tag and the caller's
    /// `stream_id` for per-stream reproducible randomness.
    pub seed: u64,
    /// The faults, applied in order.
    pub faults: Vec<FrameFault>,
}

impl FramePlan {
    /// A plan that scrambles nothing.
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// The standard transport sweep at `intensity` ∈ [0, 1] (clamped), the
    /// frame-level sibling of [`crate::ChaosPlan::standard_sweep`]: all
    /// four fault kinds with rates scaling linearly in the intensity,
    /// no-ops filtered out so intensity 0 is provably clean.
    pub fn standard_sweep(seed: u64, intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        let faults = vec![
            FrameFault::TruncatedFrame {
                rate: 0.08 * i,
                keep_fraction: 0.5,
            },
            FrameFault::DuplicatedFrame { rate: 0.12 * i },
            FrameFault::OutOfOrderArrival {
                rate: 0.15 * i,
                distance: 2,
            },
            FrameFault::MidStreamDisconnect { rate: 0.20 * i },
        ];
        Self {
            seed,
            faults: faults.into_iter().filter(|f| !f.is_noop()).collect(),
        }
    }

    /// Applies the plan to one stream's frames. `stream_id` decorrelates
    /// streams sharing a plan (hash the victim key and trace number into
    /// it); the same `(seed, stream_id, frames)` triple always produces the
    /// same scramble.
    pub fn scramble(&self, stream_id: u64, frames: Vec<FrameChunk>) -> ScrambledFrames {
        let mut arrival = frames;
        let mut log = FrameLog::default();
        let mut occurrences: BTreeMap<u64, u64> = BTreeMap::new();
        for fault in &self.faults {
            if fault.is_noop() {
                continue;
            }
            let tag = fault.seed_tag();
            let occurrence = occurrences.entry(tag).or_insert(0);
            let seed = derive_seed(
                derive_seed(derive_seed(self.seed, tag), stream_id),
                *occurrence,
            );
            *occurrence += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            match *fault {
                FrameFault::TruncatedFrame {
                    rate,
                    keep_fraction,
                } => {
                    for frame in &mut arrival {
                        if frame.samples.len() > 1 && rng.gen_bool(rate.clamp(0.0, 1.0)) {
                            let keep = ((frame.samples.len() as f64
                                * keep_fraction.clamp(0.0, 1.0))
                            .ceil() as usize)
                                .max(1);
                            if keep < frame.samples.len() {
                                frame.samples.truncate(keep);
                                log.truncated.push(frame.seq);
                                log.events.push(FrameEvent {
                                    fault: fault.clone(),
                                    seq: frame.seq,
                                });
                            }
                        }
                    }
                }
                FrameFault::DuplicatedFrame { rate } => {
                    let mut duplicated = Vec::new();
                    let mut i = 0;
                    while i < arrival.len() {
                        if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                            let copy = arrival[i].clone();
                            log.duplicated.push(copy.seq);
                            log.events.push(FrameEvent {
                                fault: fault.clone(),
                                seq: copy.seq,
                            });
                            duplicated.push((i + 1, copy));
                        }
                        i += 1;
                    }
                    // Insert back-to-front so earlier indices stay valid.
                    for (at, copy) in duplicated.into_iter().rev() {
                        arrival.insert(at, copy);
                    }
                }
                FrameFault::OutOfOrderArrival { rate, distance } => {
                    if distance > 0 {
                        let mut i = 0;
                        while i + 1 < arrival.len() {
                            if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                                let target = (i + distance).min(arrival.len() - 1);
                                if target > i {
                                    log.events.push(FrameEvent {
                                        fault: fault.clone(),
                                        seq: arrival[i].seq,
                                    });
                                    arrival.swap(i, target);
                                    log.reordered += 1;
                                    // Skip past the displaced frame so one
                                    // pass cannot cascade a frame to the end.
                                    i = target;
                                    continue;
                                }
                            }
                            i += 1;
                        }
                    }
                }
                FrameFault::MidStreamDisconnect { rate } => {
                    if arrival.len() >= 2 && rng.gen_bool(rate.clamp(0.0, 1.0)) {
                        let cut = rng.gen_range(1..arrival.len());
                        let lost_seq = arrival[cut].seq;
                        log.events.push(FrameEvent {
                            fault: fault.clone(),
                            seq: lost_seq,
                        });
                        arrival.truncate(cut);
                        log.disconnected_at = Some(lost_seq);
                    }
                }
            }
        }
        log.data_lost = !log.truncated.is_empty() || log.disconnected_at.is_some();
        ScrambledFrames {
            frames: arrival,
            log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fault;
    use std::collections::BTreeSet;

    fn trace(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 * 0.25).collect()
    }

    /// Reference reassembler: dedup by seq, order by seq, concatenate.
    fn reassemble(frames: &[FrameChunk]) -> Vec<f64> {
        let mut by_seq: BTreeMap<u32, &FrameChunk> = BTreeMap::new();
        for f in frames {
            by_seq.entry(f.seq).or_insert(f);
        }
        by_seq
            .values()
            .flat_map(|f| f.samples.iter().copied())
            .collect()
    }

    fn all_faults() -> Vec<FrameFault> {
        vec![
            FrameFault::TruncatedFrame {
                rate: 1.0,
                keep_fraction: 0.5,
            },
            FrameFault::DuplicatedFrame { rate: 1.0 },
            FrameFault::OutOfOrderArrival {
                rate: 1.0,
                distance: 2,
            },
            FrameFault::MidStreamDisconnect { rate: 1.0 },
        ]
    }

    #[test]
    fn split_frames_round_trips() {
        let samples = trace(1000);
        let frames = split_frames(&samples, 256);
        assert_eq!(frames.len(), 4);
        assert!(frames[..3]
            .iter()
            .all(|f| f.samples.len() == 256 && !f.last));
        assert_eq!(frames[3].samples.len(), 232);
        assert!(frames[3].last);
        assert_eq!(reassemble(&frames), samples);
        // Degenerate inputs still terminate the stream.
        assert!(split_frames(&[], 64)[0].last);
        assert_eq!(split_frames(&samples, 0).len(), 1000);
    }

    #[test]
    fn seed_tags_are_distinct_including_sample_level() {
        let frame_tags: Vec<u64> = all_faults().iter().map(FrameFault::seed_tag).collect();
        let sample_tags = [
            Fault::ClockJitter {
                drop_rate: 0.0,
                dup_rate: 0.0,
            }
            .seed_tag(),
            Fault::AmplitudeDrift {
                per_kilosample: 0.0,
            }
            .seed_tag(),
            Fault::GainWander {
                amplitude: 0.0,
                period: 1,
            }
            .seed_tag(),
            Fault::GlitchSpikes {
                rate: 0.0,
                magnitude: 0.0,
            }
            .seed_tag(),
            Fault::Clipping {
                lower_fraction: 0.0,
                upper_fraction: 1.0,
            }
            .seed_tag(),
            Fault::BurstMerge { pairs: 0 }.seed_tag(),
            Fault::BurstSplit {
                count: 0,
                notch_len: 0,
            }
            .seed_tag(),
            Fault::GaussianNoise { sigma: 0.0 }.seed_tag(),
        ];
        let mut all: BTreeSet<u64> = frame_tags.iter().copied().collect();
        assert_eq!(all.len(), frame_tags.len());
        all.extend(sample_tags);
        assert_eq!(all.len(), frame_tags.len() + sample_tags.len());
    }

    #[test]
    fn zero_intensity_sweep_is_provably_clean() {
        let plan = FramePlan::standard_sweep(9, 0.0);
        assert!(plan.faults.is_empty());
        let frames = split_frames(&trace(512), 128);
        let out = plan.scramble(0, frames.clone());
        assert_eq!(out.frames, frames);
        assert_eq!(out.log, FrameLog::default());
        assert!(!out.log.data_lost);
    }

    #[test]
    fn full_intensity_sweep_has_all_four_faults() {
        let plan = FramePlan::standard_sweep(9, 1.0);
        let names: BTreeSet<&str> = plan.faults.iter().map(FrameFault::name).collect();
        assert_eq!(names.len(), 4);
        // Clamping: over-unity intensity is the same plan.
        assert_eq!(plan.faults, FramePlan::standard_sweep(9, 7.0).faults);
    }

    #[test]
    fn scramble_is_deterministic_per_stream() {
        let plan = FramePlan::standard_sweep(42, 0.9);
        let frames = split_frames(&trace(2048), 128);
        let a = plan.scramble(3, frames.clone());
        let b = plan.scramble(3, frames.clone());
        assert_eq!(a, b);
        let c = plan.scramble(4, frames);
        assert_ne!(a.frames, c.frames);
    }

    #[test]
    fn benign_faults_reassemble_bit_identically() {
        let samples = trace(4096);
        let frames = split_frames(&samples, 256);
        let plan = FramePlan {
            seed: 7,
            faults: vec![
                FrameFault::DuplicatedFrame { rate: 0.8 },
                FrameFault::OutOfOrderArrival {
                    rate: 0.8,
                    distance: 3,
                },
            ],
        };
        let out = plan.scramble(1, frames);
        assert!(!out.log.data_lost);
        assert!(!out.log.duplicated.is_empty());
        assert!(out.log.reordered > 0);
        let rebuilt = reassemble(&out.frames);
        assert_eq!(rebuilt.len(), samples.len());
        assert!(rebuilt
            .iter()
            .zip(&samples)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn truncation_loses_samples_and_is_logged() {
        let samples = trace(1024);
        let frames = split_frames(&samples, 128);
        let plan = FramePlan {
            seed: 11,
            faults: vec![FrameFault::TruncatedFrame {
                rate: 1.0,
                keep_fraction: 0.25,
            }],
        };
        let out = plan.scramble(0, frames);
        assert!(out.log.data_lost);
        assert_eq!(out.log.truncated.len(), 8);
        assert!(reassemble(&out.frames).len() < samples.len());
        assert!(out
            .log
            .events
            .iter()
            .all(|e| e.fault.name() == "truncated_frame" && e.fault.is_lossy()));
    }

    #[test]
    fn disconnect_cuts_the_tail() {
        let frames = split_frames(&trace(1024), 128);
        let plan = FramePlan {
            seed: 13,
            faults: vec![FrameFault::MidStreamDisconnect { rate: 1.0 }],
        };
        let out = plan.scramble(5, frames.clone());
        assert!(out.log.data_lost);
        assert!(out.frames.len() < frames.len());
        assert!(!out.frames.is_empty());
        let lost = out.log.disconnected_at.expect("disconnect fired");
        assert!(out.frames.iter().all(|f| f.seq != lost));
    }

    #[test]
    fn noop_knobs_are_noops() {
        assert!(FrameFault::TruncatedFrame {
            rate: 0.0,
            keep_fraction: 0.5
        }
        .is_noop());
        assert!(FrameFault::TruncatedFrame {
            rate: 1.0,
            keep_fraction: 1.0
        }
        .is_noop());
        assert!(FrameFault::DuplicatedFrame { rate: 0.0 }.is_noop());
        assert!(FrameFault::OutOfOrderArrival {
            rate: 0.0,
            distance: 2
        }
        .is_noop());
        assert!(FrameFault::MidStreamDisconnect { rate: 0.0 }.is_noop());
    }
}
