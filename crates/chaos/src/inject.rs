//! The injector: applies a [`ChaosPlan`]'s faults to a capture and records
//! ground truth about every corruption in an [`InjectionLog`].
//!
//! Coordinate discipline: faults that keep the sample count (noise, gain,
//! glitches, clipping, merge, split) are applied first, in plan order;
//! index-remapping faults (clock jitter) run last, and the log's window and
//! event spans are remapped through the jitter map so everything the log
//! reports is in *output* trace coordinates.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reveal_par::derive_seed;

use crate::fault::Fault;

/// Multiplicative gain error above which a coefficient's decision zone is
/// considered corrupted (template amplitudes shift by more than the
/// inter-value spacing the classifier relies on).
pub const GAIN_CORRUPTION_TOLERANCE: f64 = 0.02;

/// Samples of slack added around each ground-truth window when deciding
/// whether a point defect corrupts that coefficient (absorbs burst-end
/// refinement error).
pub const ZONE_MARGIN: usize = 8;

/// A seeded, composable corruption plan: which faults to apply, in which
/// order, from which master seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Master seed; every fault derives its own stream from this and its
    /// kind tag, so plans are reproducible and individually stable.
    pub seed: u64,
    /// Faults, applied in order (jitter-class faults always last).
    pub faults: Vec<Fault>,
}

impl ChaosPlan {
    /// A plan that does nothing (zero faults).
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Only additive Gaussian noise. Thanks to per-kind seed derivation the
    /// unit noise vector is identical for every `sigma` at a fixed seed —
    /// raising `sigma` scales the *same* perturbation, which makes
    /// degradation monotonicity testable without sampling error.
    pub fn noise_only(seed: u64, sigma: f64) -> Self {
        Self {
            seed,
            faults: if sigma == 0.0 {
                Vec::new()
            } else {
                vec![Fault::GaussianNoise { sigma }]
            },
        }
    }

    /// The default mixed-fault sweep at `intensity ∈ [0, 1]`: every fault
    /// kind with knobs scaled linearly, chosen so `0.0` is provably clean
    /// and `1.0` is a badly degraded but still segmentable capture.
    pub fn standard_sweep(seed: u64, intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        let structural = (2.0 * i).round() as usize;
        let faults = vec![
            Fault::GaussianNoise { sigma: 0.45 * i },
            Fault::AmplitudeDrift {
                per_kilosample: 0.012 * i,
            },
            Fault::GainWander {
                amplitude: 0.05 * i,
                period: 1500,
            },
            Fault::GlitchSpikes {
                rate: 0.0008 * i,
                magnitude: 1.2,
            },
            Fault::Clipping {
                lower_fraction: 0.0,
                upper_fraction: 1.0 - 0.18 * i,
            },
            Fault::BurstSplit {
                count: structural,
                notch_len: 32,
            },
            Fault::BurstMerge { pairs: structural },
            Fault::ClockJitter {
                drop_rate: 0.0015 * i,
                dup_rate: 0.0015 * i,
            },
        ];
        Self {
            seed,
            faults: faults.into_iter().filter(|f| !f.is_noop()).collect(),
        }
    }

    /// The desync / low-SNR sweep at `intensity ∈ [0, 1]`: the regime the
    /// two-rail arbitration targets. No structural faults (no merges,
    /// splits, glitches, or clipping) — just the gradual degradations a
    /// drifting acquisition produces: broadband noise, slow gain wander,
    /// and sampling-clock jitter. Segmentation keeps finding every burst;
    /// what erodes is the per-window SNR and alignment the pooled-LDA
    /// templates were profiled at.
    pub fn desync_sweep(seed: u64, intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        let faults = vec![
            Fault::GaussianNoise { sigma: 0.6 * i },
            Fault::GainWander {
                amplitude: 0.03 * i,
                period: 900,
            },
            Fault::ClockJitter {
                drop_rate: 0.002 * i,
                dup_rate: 0.002 * i,
            },
        ];
        Self {
            seed,
            faults: faults.into_iter().filter(|f| !f.is_noop()).collect(),
        }
    }

    /// Applies the plan to `samples`, using the capture's ground-truth
    /// per-coefficient `windows` to attribute corruption. Returns the
    /// corrupted trace plus the injection log (window/event spans in output
    /// coordinates).
    pub fn inject(&self, samples: &[f64], windows: &[(usize, usize)]) -> Injected {
        Injector::new(self, samples, windows).run()
    }
}

/// One applied fault: what ran, where it landed, which coefficients it hit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The fault as configured.
    pub fault: Fault,
    /// `[start, end)` span of affected samples, in output coordinates.
    pub span: (usize, usize),
    /// Number of samples the fault actually changed.
    pub affected_samples: usize,
    /// Coefficients whose decision zone this event corrupted.
    pub corrupted: Vec<usize>,
}

/// Ground truth about an injection: what the tests check recovered results
/// against.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InjectionLog {
    /// One event per applied (non-no-op) fault occurrence.
    pub events: Vec<FaultEvent>,
    /// Union of every event's corrupted coefficients.
    pub corrupted: BTreeSet<usize>,
    /// The ground-truth coefficient windows remapped to output coordinates.
    pub windows: Vec<(usize, usize)>,
    /// Quadrature sum of all injected Gaussian noise σ (0.0 when no noise
    /// fault ran).
    pub injected_noise_sigma: f64,
}

impl InjectionLog {
    /// Whether coefficient `i`'s decision zone was touched by any fault.
    pub fn is_corrupted(&self, i: usize) -> bool {
        self.corrupted.contains(&i)
    }
}

/// A corrupted capture plus its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Injected {
    /// The faulted trace.
    pub samples: Vec<f64>,
    /// What was done to it.
    pub log: InjectionLog,
}

/// Draws a standard Gaussian via Box–Muller (the rand shim has no normal
/// distribution).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

struct Injector<'a> {
    plan: &'a ChaosPlan,
    out: Vec<f64>,
    windows: Vec<(usize, usize)>,
    events: Vec<FaultEvent>,
    noise_variance: f64,
    /// Dynamic range of the *input* trace: relative fault magnitudes stay
    /// stable no matter how earlier faults deformed the trace.
    range_min: f64,
    range_max: f64,
    occurrences: BTreeMap<u64, u64>,
}

impl<'a> Injector<'a> {
    fn new(plan: &'a ChaosPlan, samples: &[f64], windows: &[(usize, usize)]) -> Self {
        let finite = samples.iter().copied().filter(|s| s.is_finite());
        let range_min = finite.clone().fold(f64::INFINITY, f64::min);
        let range_max = finite.fold(f64::NEG_INFINITY, f64::max);
        Self {
            plan,
            out: samples.to_vec(),
            windows: windows.to_vec(),
            events: Vec::new(),
            noise_variance: 0.0,
            range_min: if range_min.is_finite() {
                range_min
            } else {
                0.0
            },
            range_max: if range_max.is_finite() {
                range_max
            } else {
                0.0
            },
            occurrences: BTreeMap::new(),
        }
    }

    fn run(mut self) -> Injected {
        // Length-preserving faults first, jitter-class faults last (see the
        // module docs for why).
        let (jitter, in_place): (Vec<&Fault>, Vec<&Fault>) = self
            .plan
            .faults
            .iter()
            .partition(|f| matches!(f, Fault::ClockJitter { .. }));
        for fault in in_place.into_iter().chain(jitter) {
            if fault.is_noop() {
                continue;
            }
            let mut rng = self.fault_rng(fault);
            match *fault {
                Fault::GaussianNoise { sigma } => self.apply_noise(fault, sigma, &mut rng),
                Fault::AmplitudeDrift { per_kilosample } => {
                    self.apply_gain(fault, |t| 1.0 + per_kilosample * t as f64 / 1000.0)
                }
                Fault::GainWander { amplitude, period } => {
                    let phase = rng.gen::<f64>() * std::f64::consts::TAU;
                    let period = period.max(1) as f64;
                    self.apply_gain(fault, |t| {
                        1.0 + amplitude * (std::f64::consts::TAU * t as f64 / period + phase).sin()
                    });
                }
                Fault::GlitchSpikes { rate, magnitude } => {
                    self.apply_glitches(fault, rate, magnitude, &mut rng)
                }
                Fault::Clipping {
                    lower_fraction,
                    upper_fraction,
                } => self.apply_clipping(fault, lower_fraction, upper_fraction),
                Fault::BurstMerge { pairs } => self.apply_merge(fault, pairs, &mut rng),
                Fault::BurstSplit { count, notch_len } => {
                    self.apply_split(fault, count, notch_len, &mut rng)
                }
                Fault::ClockJitter {
                    drop_rate,
                    dup_rate,
                } => self.apply_jitter(fault, drop_rate, dup_rate, &mut rng),
            }
        }
        let corrupted = self
            .events
            .iter()
            .flat_map(|e| e.corrupted.iter().copied())
            .collect();
        Injected {
            samples: self.out,
            log: InjectionLog {
                events: self.events,
                corrupted,
                windows: self.windows,
                injected_noise_sigma: self.noise_variance.sqrt(),
            },
        }
    }

    fn fault_rng(&mut self, fault: &Fault) -> StdRng {
        let tag = fault.seed_tag();
        let occurrence = self.occurrences.entry(tag).or_insert(0);
        let seed = derive_seed(derive_seed(self.plan.seed, tag), *occurrence);
        *occurrence += 1;
        StdRng::seed_from_u64(seed)
    }

    fn dynamic_range(&self) -> f64 {
        (self.range_max - self.range_min).max(1e-12)
    }

    /// Coefficients whose margin-padded decision zone intersects
    /// `[start, end)`.
    fn zone_hits(&self, start: usize, end: usize) -> Vec<usize> {
        self.windows
            .iter()
            .enumerate()
            .filter(|(_, &(s, e))| {
                let zs = s.saturating_sub(ZONE_MARGIN);
                let ze = e + ZONE_MARGIN;
                start < ze && zs < end
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn apply_noise(&mut self, fault: &Fault, sigma: f64, rng: &mut StdRng) {
        for s in &mut self.out {
            *s += sigma * gaussian(rng);
        }
        self.noise_variance += sigma * sigma;
        let n = self.out.len();
        self.events.push(FaultEvent {
            fault: fault.clone(),
            span: (0, n),
            affected_samples: n,
            // Global noise is attributed via the confidence derating, not
            // the per-coefficient corruption set.
            corrupted: Vec::new(),
        });
    }

    fn apply_gain(&mut self, fault: &Fault, gain: impl Fn(usize) -> f64) {
        let mut affected = 0usize;
        for (t, s) in self.out.iter_mut().enumerate() {
            let g = gain(t);
            if (g - 1.0).abs() > GAIN_CORRUPTION_TOLERANCE {
                affected += 1;
            }
            *s *= g;
        }
        let corrupted = self
            .windows
            .iter()
            .enumerate()
            .filter(|(_, &(s, e))| {
                let zs = s.saturating_sub(ZONE_MARGIN);
                let ze = (e + ZONE_MARGIN).min(self.out.len());
                (zs..ze).any(|t| (gain(t) - 1.0).abs() > GAIN_CORRUPTION_TOLERANCE)
            })
            .map(|(i, _)| i)
            .collect();
        let n = self.out.len();
        self.events.push(FaultEvent {
            fault: fault.clone(),
            span: (0, n),
            affected_samples: affected,
            corrupted,
        });
    }

    fn apply_glitches(&mut self, fault: &Fault, rate: f64, magnitude: f64, rng: &mut StdRng) {
        let amp = magnitude * self.dynamic_range();
        for t in 0..self.out.len() {
            if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                let scale = 1.0 + rng.gen::<f64>();
                self.out[t] += sign * amp * scale;
                let corrupted = self.zone_hits(t, t + 1);
                self.events.push(FaultEvent {
                    fault: fault.clone(),
                    span: (t, t + 1),
                    affected_samples: 1,
                    corrupted,
                });
            }
        }
    }

    fn apply_clipping(&mut self, fault: &Fault, lower_fraction: f64, upper_fraction: f64) {
        let lo = self.range_min + lower_fraction * self.dynamic_range();
        let hi = self.range_min + upper_fraction * self.dynamic_range();
        let mut clipped = Vec::new();
        for (t, s) in self.out.iter_mut().enumerate() {
            let c = s.clamp(lo.min(hi), hi.max(lo));
            if c != *s {
                clipped.push(t);
                *s = c;
            }
        }
        if clipped.is_empty() {
            return;
        }
        let first = clipped[0];
        let last = clipped[clipped.len() - 1];
        let corrupted: BTreeSet<usize> = clipped
            .iter()
            .flat_map(|&t| self.zone_hits(t, t + 1))
            .collect();
        self.events.push(FaultEvent {
            fault: fault.clone(),
            span: (first, last + 1),
            affected_samples: clipped.len(),
            corrupted: corrupted.into_iter().collect(),
        });
    }

    /// Picks `count` distinct values in `0..bound`, deterministically.
    fn pick_distinct(count: usize, bound: usize, rng: &mut StdRng) -> Vec<usize> {
        let mut picked = BTreeSet::new();
        if bound == 0 {
            return Vec::new();
        }
        let want = count.min(bound);
        let mut attempts = 0usize;
        while picked.len() < want && attempts < 16 * want + 16 {
            picked.insert(rng.gen_range(0..bound));
            attempts += 1;
        }
        picked.into_iter().collect()
    }

    fn apply_merge(&mut self, fault: &Fault, pairs: usize, rng: &mut StdRng) {
        if self.windows.len() < 2 {
            return;
        }
        for i in Self::pick_distinct(pairs, self.windows.len() - 1, rng) {
            let (s, e) = self.windows[i];
            let e = e.min(self.out.len());
            if e <= s {
                continue;
            }
            // The inter-burst ladder region is the tail of window `i`; fill
            // it at burst level so segmentation fuses bursts i and i+1.
            let len = e - s;
            let fill = (len / 2).clamp(1, 140);
            let mut level_pool: Vec<f64> = self.out[s..e].to_vec();
            level_pool.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let level = level_pool[(level_pool.len() * 9) / 10];
            for t in e - fill..e {
                self.out[t] = level;
            }
            self.events.push(FaultEvent {
                fault: fault.clone(),
                span: (e - fill, e),
                affected_samples: fill,
                corrupted: vec![i, i + 1],
            });
        }
    }

    fn apply_split(&mut self, fault: &Fault, count: usize, notch_len: usize, rng: &mut StdRng) {
        if notch_len == 0 {
            return;
        }
        let baseline = {
            let mut sorted: Vec<f64> = self.out.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            sorted[sorted.len() / 50]
        };
        for i in Self::pick_distinct(count, self.windows.len(), rng) {
            let (s, e) = self.windows[i];
            let e = e.min(self.out.len());
            if e <= s {
                continue;
            }
            let len = e - s;
            // Aim at the dist burst (the window head); windows end with a
            // ~96-sample ladder, so the burst spans roughly the first
            // `len − 96` samples.
            let burst_len = len.saturating_sub(96);
            if burst_len < notch_len + 16 {
                continue;
            }
            let notch_start = s + (burst_len - notch_len) / 2;
            for t in notch_start..notch_start + notch_len {
                self.out[t] = baseline;
            }
            self.events.push(FaultEvent {
                fault: fault.clone(),
                span: (notch_start, notch_start + notch_len),
                affected_samples: notch_len,
                corrupted: vec![i],
            });
        }
    }

    fn apply_jitter(&mut self, fault: &Fault, drop_rate: f64, dup_rate: f64, rng: &mut StdRng) {
        let drop = drop_rate.clamp(0.0, 0.45);
        let dup = dup_rate.clamp(0.0, 0.45);
        let old_len = self.out.len();
        let mut new = Vec::with_capacity(old_len + old_len / 8);
        // map[old] = new index of the first surviving sample at or after
        // `old`; map[old_len] = new length.
        let mut map = Vec::with_capacity(old_len + 1);
        let mut defects: Vec<usize> = Vec::new();
        for (t, &s) in self.out.iter().enumerate() {
            map.push(new.len());
            let r: f64 = rng.gen();
            if r < drop {
                defects.push(t);
                continue;
            }
            new.push(s);
            if r < drop + dup {
                defects.push(t);
                new.push(s);
            }
        }
        map.push(new.len());
        // Attribute corruption in *old* coordinates (zones are still old).
        let corrupted: BTreeSet<usize> = defects
            .iter()
            .flat_map(|&t| self.zone_hits(t, t + 1))
            .collect();
        // Remap prior event spans and the ground-truth windows.
        for event in &mut self.events {
            event.span = (map[event.span.0], map[event.span.1]);
        }
        for w in &mut self.windows {
            *w = (map[w.0], map[w.1.min(old_len)]);
        }
        let new_len = new.len();
        self.out = new;
        self.events.push(FaultEvent {
            fault: fault.clone(),
            span: (0, new_len),
            affected_samples: defects.len(),
            corrupted: corrupted.into_iter().collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic 4-burst capture mimicking the kernel's geometry: each
    /// window = high burst then low ladder tail.
    fn synthetic() -> (Vec<f64>, Vec<(usize, usize)>) {
        let mut samples = vec![1.0; 40];
        let mut windows = Vec::new();
        for _ in 0..4 {
            let start = samples.len();
            for t in 0..180 {
                samples.push(4.0 + 0.3 * ((t % 7) as f64) / 7.0);
            }
            for t in 0..120 {
                samples.push(1.8 + 0.2 * ((t % 5) as f64) / 5.0);
            }
            windows.push((start, samples.len()));
        }
        samples.extend(std::iter::repeat_n(1.0, 40));
        (samples, windows)
    }

    #[test]
    fn clean_plan_is_identity() {
        let (samples, windows) = synthetic();
        let injected = ChaosPlan::clean(7).inject(&samples, &windows);
        assert_eq!(injected.samples, samples);
        assert!(injected.log.events.is_empty());
        assert!(injected.log.corrupted.is_empty());
        assert_eq!(injected.log.windows, windows);
        assert_eq!(injected.log.injected_noise_sigma, 0.0);
    }

    #[test]
    fn zero_intensity_sweep_is_clean() {
        let plan = ChaosPlan::standard_sweep(3, 0.0);
        assert!(plan.faults.is_empty());
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let (samples, windows) = synthetic();
        let a = ChaosPlan::standard_sweep(11, 0.8).inject(&samples, &windows);
        let b = ChaosPlan::standard_sweep(11, 0.8).inject(&samples, &windows);
        let c = ChaosPlan::standard_sweep(12, 0.8).inject(&samples, &windows);
        assert_eq!(a, b);
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn noise_is_nested_across_sigma() {
        let (samples, windows) = synthetic();
        let low = ChaosPlan::noise_only(5, 0.1).inject(&samples, &windows);
        let high = ChaosPlan::noise_only(5, 0.2).inject(&samples, &windows);
        for ((&s, &l), &h) in samples.iter().zip(&low.samples).zip(&high.samples) {
            let dl = l - s;
            let dh = h - s;
            assert!(
                (dh - 2.0 * dl).abs() < 1e-12,
                "noise not nested: {dl} vs {dh}"
            );
        }
        assert!((low.log.injected_noise_sigma - 0.1).abs() < 1e-15);
        // Noise alone corrupts nothing (confidence gating owns that regime).
        assert!(low.log.corrupted.is_empty());
    }

    #[test]
    fn merge_corrupts_both_neighbours() {
        let (samples, windows) = synthetic();
        let plan = ChaosPlan {
            seed: 9,
            faults: vec![Fault::BurstMerge { pairs: 1 }],
        };
        let injected = plan.inject(&samples, &windows);
        assert_eq!(injected.log.events.len(), 1);
        let event = &injected.log.events[0];
        assert_eq!(event.corrupted.len(), 2);
        assert_eq!(event.corrupted[1], event.corrupted[0] + 1);
        // The filled span sits at burst level.
        let (s, e) = event.span;
        assert!(injected.samples[s..e].iter().all(|&v| v > 3.0));
    }

    #[test]
    fn split_notches_the_burst() {
        let (samples, windows) = synthetic();
        let plan = ChaosPlan {
            seed: 13,
            faults: vec![Fault::BurstSplit {
                count: 1,
                notch_len: 32,
            }],
        };
        let injected = plan.inject(&samples, &windows);
        assert_eq!(injected.log.events.len(), 1);
        let event = &injected.log.events[0];
        assert_eq!(event.corrupted.len(), 1);
        let (s, e) = event.span;
        assert_eq!(e - s, 32);
        // Notch dropped to baseline, inside the target's burst head.
        assert!(injected.samples[s..e].iter().all(|&v| v < 1.5));
        let (ws, we) = windows[event.corrupted[0]];
        assert!(s >= ws && e <= we);
    }

    #[test]
    fn clipping_flattens_burst_tops() {
        let (samples, windows) = synthetic();
        let plan = ChaosPlan {
            seed: 1,
            faults: vec![Fault::Clipping {
                lower_fraction: 0.0,
                upper_fraction: 0.5,
            }],
        };
        let injected = plan.inject(&samples, &windows);
        let max_after = injected.samples.iter().cloned().fold(f64::MIN, f64::max);
        let max_before = samples.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max_after < max_before);
        // Every burst top clipped → every coefficient corrupted.
        assert_eq!(injected.log.corrupted.len(), windows.len());
    }

    #[test]
    fn jitter_remaps_windows_and_spans() {
        let (samples, windows) = synthetic();
        let plan = ChaosPlan {
            seed: 21,
            faults: vec![
                Fault::GlitchSpikes {
                    rate: 0.002,
                    magnitude: 2.0,
                },
                Fault::ClockJitter {
                    drop_rate: 0.03,
                    dup_rate: 0.0,
                },
            ],
        };
        let injected = plan.inject(&samples, &windows);
        assert!(injected.samples.len() < samples.len());
        let new_len = injected.samples.len();
        assert_eq!(injected.log.windows.len(), windows.len());
        for (i, &(s, e)) in injected.log.windows.iter().enumerate() {
            assert!(s < e && e <= new_len, "window {i} out of range");
            if i > 0 {
                assert!(s >= injected.log.windows[i - 1].1);
            }
        }
        for event in &injected.log.events {
            assert!(event.span.0 <= event.span.1 && event.span.1 <= new_len);
        }
        // With a 3% drop rate over ~1300 samples, some zone must be hit.
        assert!(!injected.log.corrupted.is_empty());
    }

    #[test]
    fn gain_wander_marks_only_zones_seeing_large_gain() {
        let (samples, windows) = synthetic();
        let plan = ChaosPlan {
            seed: 2,
            faults: vec![Fault::AmplitudeDrift {
                per_kilosample: 0.025,
            }],
        };
        let injected = plan.inject(&samples, &windows);
        // |gain−1| > 0.02 only after t = 800: the first window (ending ≈340)
        // stays clean, the last is corrupted.
        assert!(!injected.log.is_corrupted(0));
        assert!(injected.log.is_corrupted(windows.len() - 1));
    }

    #[test]
    fn desync_sweep_degrades_without_structural_damage() {
        let (samples, windows) = synthetic();
        assert!(ChaosPlan::desync_sweep(6, 0.0).faults.is_empty());
        let plan = ChaosPlan::desync_sweep(6, 1.0);
        assert!(plan.faults.iter().all(|f| matches!(
            f,
            Fault::GaussianNoise { .. } | Fault::GainWander { .. } | Fault::ClockJitter { .. }
        )));
        let mild = ChaosPlan::desync_sweep(6, 0.3).inject(&samples, &windows);
        let harsh = plan.inject(&samples, &windows);
        assert!(harsh.log.injected_noise_sigma > mild.log.injected_noise_sigma);
        // Every window survives as a non-empty, ordered span.
        assert_eq!(harsh.log.windows.len(), windows.len());
        for (i, &(s, e)) in harsh.log.windows.iter().enumerate() {
            assert!(s < e, "window {i} collapsed");
            if i > 0 {
                assert!(s >= harsh.log.windows[i - 1].1);
            }
        }
        // Deterministic per seed.
        let again = ChaosPlan::desync_sweep(6, 1.0).inject(&samples, &windows);
        assert_eq!(harsh, again);
    }

    #[test]
    fn standard_sweep_scales_with_intensity() {
        let (samples, windows) = synthetic();
        let mild = ChaosPlan::standard_sweep(4, 0.2).inject(&samples, &windows);
        let harsh = ChaosPlan::standard_sweep(4, 1.0).inject(&samples, &windows);
        assert!(harsh.log.injected_noise_sigma > mild.log.injected_noise_sigma);
        assert!(harsh.log.corrupted.len() >= mild.log.corrupted.len());
    }
}
