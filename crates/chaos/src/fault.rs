//! The fault taxonomy: every acquisition defect the injector can synthesize,
//! as a typed value with enough parameters to reproduce it exactly.

use std::fmt;

/// One acquisition fault. Parameters are chosen so that the zero value of
/// every knob is a no-op, which lets intensity sweeps start from a provably
/// clean capture.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Sampling-clock jitter: each sample is independently dropped with
    /// probability `drop_rate` or emitted twice with probability `dup_rate`.
    /// Changes the trace length and shifts everything downstream.
    ClockJitter { drop_rate: f64, dup_rate: f64 },
    /// Slow multiplicative drift: gain `1 + per_kilosample · t/1000` — a
    /// warming amplifier front-end.
    AmplitudeDrift { per_kilosample: f64 },
    /// Periodic gain wander: gain `1 + amplitude · sin(2π t/period + φ)`
    /// with a seeded random phase — supply ripple coupling into the probe.
    GainWander { amplitude: f64, period: usize },
    /// Isolated glitch spikes: each sample is hit with probability `rate`
    /// by an additive spike of `magnitude` × the trace's dynamic range,
    /// random sign.
    GlitchSpikes { rate: f64, magnitude: f64 },
    /// ADC saturation: samples are clamped to the
    /// `[lower_fraction, upper_fraction]` band of the trace's dynamic range
    /// (`0.0..=1.0` leaves the trace untouched).
    Clipping {
        lower_fraction: f64,
        upper_fraction: f64,
    },
    /// Trigger failure merging bursts: for `pairs` randomly chosen adjacent
    /// coefficient windows, the inter-burst ladder region is overwritten at
    /// burst level, so segmentation sees one long burst.
    BurstMerge { pairs: usize },
    /// Trigger failure splitting bursts: for `count` randomly chosen
    /// windows, a notch of `notch_len` baseline-level samples is carved
    /// into the burst, so segmentation sees two short bursts.
    BurstSplit { count: usize, notch_len: usize },
    /// Additive white Gaussian noise of standard deviation `sigma`, on top
    /// of whatever the power model already injected.
    GaussianNoise { sigma: f64 },
}

impl Fault {
    /// Stable short name, used in logs and the bench artifact.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::ClockJitter { .. } => "clock_jitter",
            Fault::AmplitudeDrift { .. } => "amplitude_drift",
            Fault::GainWander { .. } => "gain_wander",
            Fault::GlitchSpikes { .. } => "glitch_spikes",
            Fault::Clipping { .. } => "clipping",
            Fault::BurstMerge { .. } => "burst_merge",
            Fault::BurstSplit { .. } => "burst_split",
            Fault::GaussianNoise { .. } => "gaussian_noise",
        }
    }

    /// Stable per-kind tag mixed into the RNG seed derivation, so the same
    /// plan seed reproduces the same randomness for a fault kind even when
    /// other faults are added or reparameterized. This is what makes
    /// `noise_only(seed, σ)` use the *same unit noise vector* at every σ —
    /// a nested-noise property the monotone-degradation tests rely on.
    pub fn seed_tag(&self) -> u64 {
        match self {
            Fault::ClockJitter { .. } => 0x4A17,
            Fault::AmplitudeDrift { .. } => 0xD21F,
            Fault::GainWander { .. } => 0x3A1D,
            Fault::GlitchSpikes { .. } => 0x61C4,
            Fault::Clipping { .. } => 0xC11F,
            Fault::BurstMerge { .. } => 0x3E26,
            Fault::BurstSplit { .. } => 0x5F11,
            Fault::GaussianNoise { .. } => 0x901E,
        }
    }

    /// Whether every knob is at its no-op value (the fault cannot change a
    /// single sample).
    pub fn is_noop(&self) -> bool {
        match *self {
            Fault::ClockJitter {
                drop_rate,
                dup_rate,
            } => drop_rate <= 0.0 && dup_rate <= 0.0,
            Fault::AmplitudeDrift { per_kilosample } => per_kilosample == 0.0,
            Fault::GainWander { amplitude, .. } => amplitude == 0.0,
            Fault::GlitchSpikes { rate, magnitude } => rate <= 0.0 || magnitude == 0.0,
            Fault::Clipping {
                lower_fraction,
                upper_fraction,
            } => lower_fraction <= 0.0 && upper_fraction >= 1.0,
            Fault::BurstMerge { pairs } => pairs == 0,
            Fault::BurstSplit { count, .. } => count == 0,
            Fault::GaussianNoise { sigma } => sigma == 0.0,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::ClockJitter {
                drop_rate,
                dup_rate,
            } => write!(f, "clock_jitter(drop={drop_rate}, dup={dup_rate})"),
            Fault::AmplitudeDrift { per_kilosample } => {
                write!(f, "amplitude_drift({per_kilosample}/ksample)")
            }
            Fault::GainWander { amplitude, period } => {
                write!(f, "gain_wander(a={amplitude}, T={period})")
            }
            Fault::GlitchSpikes { rate, magnitude } => {
                write!(f, "glitch_spikes(rate={rate}, mag={magnitude})")
            }
            Fault::Clipping {
                lower_fraction,
                upper_fraction,
            } => write!(f, "clipping([{lower_fraction}, {upper_fraction}])"),
            Fault::BurstMerge { pairs } => write!(f, "burst_merge({pairs})"),
            Fault::BurstSplit { count, notch_len } => {
                write!(f, "burst_split({count}×{notch_len})")
            }
            Fault::GaussianNoise { sigma } => write!(f, "gaussian_noise(σ={sigma})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_detection_matches_zero_knobs() {
        assert!(Fault::GaussianNoise { sigma: 0.0 }.is_noop());
        assert!(!Fault::GaussianNoise { sigma: 0.1 }.is_noop());
        assert!(Fault::ClockJitter {
            drop_rate: 0.0,
            dup_rate: 0.0
        }
        .is_noop());
        assert!(Fault::Clipping {
            lower_fraction: 0.0,
            upper_fraction: 1.0
        }
        .is_noop());
        assert!(!Fault::BurstMerge { pairs: 1 }.is_noop());
    }

    #[test]
    fn seed_tags_are_distinct() {
        let faults = [
            Fault::ClockJitter {
                drop_rate: 0.0,
                dup_rate: 0.0,
            },
            Fault::AmplitudeDrift {
                per_kilosample: 0.0,
            },
            Fault::GainWander {
                amplitude: 0.0,
                period: 1,
            },
            Fault::GlitchSpikes {
                rate: 0.0,
                magnitude: 0.0,
            },
            Fault::Clipping {
                lower_fraction: 0.0,
                upper_fraction: 1.0,
            },
            Fault::BurstMerge { pairs: 0 },
            Fault::BurstSplit {
                count: 0,
                notch_len: 0,
            },
            Fault::GaussianNoise { sigma: 0.0 },
        ];
        let mut tags: Vec<u64> = faults.iter().map(Fault::seed_tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), faults.len());
    }
}
