#![forbid(unsafe_code)]

//! # reveal-par
//!
//! A zero-dependency, **deterministic** data-parallel runtime for the RevEAL
//! pipeline, built on [`std::thread::scope`]. The workspace has no crates.io
//! access, so `rayon` is unavailable; the hot paths of a template attack are
//! embarrassingly parallel per trace / per window, and this crate provides
//! exactly the primitives they need.
//!
//! ## Determinism contract
//!
//! Every primitive returns results **in input order**, and every reduction
//! combines partial results in a **fixed order** that depends only on the
//! input length and the caller-chosen chunk size — never on the thread count
//! or on scheduling. Consequently the output of any `reveal-par` call is
//! bit-for-bit identical whether it runs on 1 thread or 64:
//!
//! - [`par_map`] / [`par_map_index`]: each element is a pure function of its
//!   index; results are written back by index.
//! - [`par_map_min`] / [`par_map_index_min`]: identical output, but a
//!   minimum-work-per-worker heuristic drops tiny batches to the calling
//!   thread (no spawn) — the worker count depends only on the batch size and
//!   the configured thread count, so determinism is preserved.
//! - [`par_map_chunks`]: chunk boundaries are `chunk_size`-aligned and
//!   independent of the thread count.
//! - [`par_reduce`]: each chunk is folded left-to-right and chunk results are
//!   combined left-to-right, so even non-associative floating-point
//!   reductions are reproducible across thread counts.
//!
//! ## Thread-count resolution
//!
//! 1. a process-wide override set by [`with_threads`] (tests, benches),
//! 2. the `REVEAL_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! ## Example
//!
//! ```
//! let squares = reveal_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! let sum = reveal_par::par_reduce(&squares, 2, 0u64, |a, &x| a + x, |a, b| a + b);
//! assert_eq!(sum, 30);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread-count override (0 = unset). Written only under
/// [`OVERRIDE_LOCK`] by [`with_threads`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`with_threads`] callers so concurrent tests cannot observe
/// each other's override.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// The number of worker threads a parallel call will use: the
/// [`with_threads`] override if active, else `REVEAL_THREADS`, else
/// [`std::thread::available_parallelism`] (1 if unavailable).
pub fn max_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var("REVEAL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `body` with the thread count pinned to `threads`, restoring the
/// previous setting afterwards. Callers are serialized process-wide, so two
/// concurrent `with_threads` blocks (e.g. parallel tests) cannot leak their
/// setting into each other. Results are unchanged by construction — this
/// only controls how much hardware the work is spread over.
pub fn with_threads<R>(threads: usize, body: impl FnOnce() -> R) -> R {
    let guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let previous = THREAD_OVERRIDE.swap(threads.max(1), Ordering::Relaxed);
    let result = body();
    THREAD_OVERRIDE.store(previous, Ordering::Relaxed);
    drop(guard);
    result
}

/// Derives an independent 64-bit seed from a master seed and a task index
/// (SplitMix64 finalizer over the golden-ratio sequence). Used to give every
/// parallel task its own RNG stream: task `i`'s randomness depends only on
/// `(master, i)`, never on how much randomness other tasks consumed — the
/// root fix for order-dependent collection.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core executor: evaluates `task(0..count)` on up to `threads` scoped
/// workers and returns the results in index order. Work is claimed
/// dynamically (an atomic cursor), but since every task is a pure function
/// of its index and results are placed by index, scheduling cannot affect
/// the output.
fn run_indexed_capped<R: Send>(
    count: usize,
    threads: usize,
    task: &(impl Fn(usize) -> R + Sync),
) -> Vec<R> {
    if threads <= 1 {
        return (0..count).map(task).collect();
    }
    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        produced.push((index, task(index)));
                    }
                    produced
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
    for bucket in buckets {
        for (index, value) in bucket {
            slots[index] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is claimed exactly once"))
        .collect()
}

fn run_indexed<R: Send>(count: usize, task: &(impl Fn(usize) -> R + Sync)) -> Vec<R> {
    run_indexed_capped(count, max_threads().min(count), task)
}

/// The worker count the minimum-work heuristic allows for `count` items when
/// each worker should receive at least `min_items_per_worker` of them: small
/// batches degenerate to one worker (pure serial, no threads spawned at
/// all), large batches still fan out to [`max_threads`]. The result depends
/// only on `(count, min_items_per_worker)` and the configured thread count —
/// never on scheduling — so the determinism contract is unaffected (results
/// are placed by index regardless of the worker count).
fn capped_workers(count: usize, min_items_per_worker: usize) -> usize {
    max_threads()
        .min(count / min_items_per_worker.max(1))
        .max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Intended for coarse tasks (a device capture, a trace segmentation, a
/// candidate's full correlation sweep); for element counts in the millions
/// prefer [`par_map_chunks`] to amortize the per-task claim, and for cheap
/// per-item work prefer [`par_map_min`] so tiny batches skip the thread
/// spawn entirely.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    run_indexed(items.len(), &|i| f(&items[i]))
}

/// Maps `f` over `0..count` in parallel, returning results in index order.
pub fn par_map_index<R: Send>(count: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    run_indexed(count, &f)
}

/// [`par_map`] with a minimum-work-per-worker heuristic: workers are capped
/// so each receives at least `min_items_per_worker` items, and batches
/// smaller than `2 × min_items_per_worker` run serially on the calling
/// thread — spawning threads for a handful of microseconds of work costs
/// more than it saves (the `cpa_rank` regression of `BENCH_pipeline.json`).
/// Output is bit-identical to [`par_map`] for any thread count.
pub fn par_map_min<T: Sync, R: Send>(
    items: &[T],
    min_items_per_worker: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let workers = capped_workers(items.len(), min_items_per_worker);
    run_indexed_capped(items.len(), workers, &|i| f(&items[i]))
}

/// [`par_map_index`] with the minimum-work-per-worker heuristic of
/// [`par_map_min`].
pub fn par_map_index_min<R: Send>(
    count: usize,
    min_items_per_worker: usize,
    f: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let workers = capped_workers(count, min_items_per_worker);
    run_indexed_capped(count, workers, &f)
}

/// Splits `items` into `chunk_size`-aligned chunks (the last may be short),
/// maps `f(chunk_index, chunk)` over them in parallel, and returns one result
/// per chunk in chunk order. Chunk boundaries depend only on `items.len()`
/// and `chunk_size`, never on the thread count.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_map_chunks<T: Sync, R: Send>(
    items: &[T],
    chunk_size: usize,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunk_count = items.len().div_ceil(chunk_size);
    run_indexed(chunk_count, &|c| {
        let lo = c * chunk_size;
        let hi = (lo + chunk_size).min(items.len());
        f(c, &items[lo..hi])
    })
}

/// Deterministic parallel reduction: folds each `chunk_size`-aligned chunk
/// left-to-right from a fresh `identity`, then combines the chunk results
/// left-to-right (again from `identity`). The combining order is fixed by
/// the chunking alone, so floating-point reductions are bit-identical across
/// thread counts. For associative-exact operations (integer sums, set
/// unions) the result equals the plain serial fold.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_reduce<T: Sync, A: Send + Sync + Clone>(
    items: &[T],
    chunk_size: usize,
    identity: A,
    fold: impl Fn(A, &T) -> A + Sync,
    combine: impl Fn(A, A) -> A,
) -> A {
    let partials = par_map_chunks(items, chunk_size, |_, chunk| {
        chunk.iter().fold(identity.clone(), &fold)
    });
    partials.into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = with_threads(threads, || par_map(&items, |&x| x * 3 + 1));
            assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_index_matches_serial() {
        for threads in [1, 4] {
            let out = with_threads(threads, || par_map_index(257, |i| i * i));
            assert_eq!(out, (0..257).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunk_boundaries_are_thread_independent() {
        let items: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let reference = with_threads(1, || {
            par_reduce(&items, 512, 0.0f64, |a, &x| a + x, |a, b| a + b)
        });
        for threads in [2, 3, 5, 8] {
            let sum = with_threads(threads, || {
                par_reduce(&items, 512, 0.0f64, |a, &x| a + x, |a, b| a + b)
            });
            // Bit-for-bit, not approximately: the combining order is fixed.
            assert_eq!(sum.to_bits(), reference.to_bits(), "threads {threads}");
        }
    }

    #[test]
    fn map_chunks_covers_everything_once() {
        let items: Vec<usize> = (0..103).collect();
        let chunks = with_threads(4, || {
            par_map_chunks(&items, 10, |c, chunk| (c, chunk.to_vec()))
        });
        assert_eq!(chunks.len(), 11);
        let mut rebuilt = Vec::new();
        for (i, (c, chunk)) in chunks.into_iter().enumerate() {
            assert_eq!(c, i);
            rebuilt.extend(chunk);
        }
        assert_eq!(rebuilt, items);
    }

    #[test]
    fn min_work_variants_match_plain_maps() {
        let items: Vec<u64> = (0..500).collect();
        for threads in [1, 2, 4, 8] {
            for min in [1, 16, 250, 1000] {
                let a = with_threads(threads, || par_map_min(&items, min, |&x| x * 7 + 1));
                assert_eq!(a, items.iter().map(|&x| x * 7 + 1).collect::<Vec<_>>());
                let b = with_threads(threads, || par_map_index_min(257, min, |i| i * i));
                assert_eq!(b, (0..257).map(|i| i * i).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn min_work_heuristic_caps_workers() {
        // count / min < 2 ⇒ one worker (serial); larger batches fan out but
        // never give a worker less than `min` items.
        assert_eq!(with_threads(8, || capped_workers(29, 32)), 1);
        assert_eq!(with_threads(8, || capped_workers(63, 32)), 1);
        assert_eq!(with_threads(8, || capped_workers(64, 32)), 2);
        assert_eq!(with_threads(8, || capped_workers(1024, 32)), 8);
        assert_eq!(with_threads(2, || capped_workers(1024, 32)), 2);
        // min = 0 behaves like min = 1.
        assert_eq!(with_threads(4, || capped_workers(8, 0)), 4);
        // Empty batches stay serial.
        assert_eq!(with_threads(8, || capped_workers(0, 16)), 1);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(par_map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map_index(0, |i| i), Vec::<usize>::new());
        assert_eq!(
            par_reduce(&[] as &[i64], 8, 7i64, |a, &x| a + x, |a, b| a + b),
            7
        );
    }

    #[test]
    fn derived_seeds_decorrelate_tasks() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "collisions in derived seeds");
        // Different masters give different streams.
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn with_threads_restores_previous_setting() {
        let outer = max_threads();
        with_threads(3, || {
            assert_eq!(max_threads(), 3);
            // Nesting is allowed; the inner value wins, then unwinds.
        });
        assert_eq!(max_threads(), outer);
    }

    proptest! {
        #[test]
        fn prop_par_map_equals_serial(
            items in proptest::collection::vec(-1_000_000i64..1_000_000, 0..300),
            threads in 1usize..9,
        ) {
            let serial: Vec<i64> = items.iter().map(|&x| x.wrapping_mul(31) ^ 7).collect();
            let parallel = with_threads(threads, || par_map(&items, |&x| x.wrapping_mul(31) ^ 7));
            prop_assert_eq!(parallel, serial);
        }

        #[test]
        fn prop_par_reduce_equals_serial_fold(
            items in proptest::collection::vec(-1_000_000i64..1_000_000, 0..300),
            threads in 1usize..9,
            chunk in 1usize..64,
        ) {
            let serial = items.iter().fold(0i64, |a, &x| a.wrapping_add(x));
            let parallel = with_threads(threads, || {
                par_reduce(
                    &items,
                    chunk,
                    0i64,
                    |a, &x| a.wrapping_add(x),
                    |a, b| a.wrapping_add(b),
                )
            });
            prop_assert_eq!(parallel, serial);
        }
    }
}
