#![forbid(unsafe_code)]
#![deny(clippy::pedantic)]
// The runtime is all index arithmetic over f64 payloads: precision-lossy
// casts between counts and cost estimates are deliberate, and the scalar
// SIMD references are *defined* as indexed loops.
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::needless_range_loop,
    clippy::must_use_candidate,
    clippy::missing_panics_doc,
    clippy::module_name_repetitions,
    clippy::inline_always
)]

//! # reveal-par
//!
//! A zero-dependency, **deterministic** data-parallel runtime for the `RevEAL`
//! pipeline, built on [`std::thread::scope`]. The workspace has no crates.io
//! access, so `rayon` is unavailable; the hot paths of a template attack are
//! embarrassingly parallel per trace / per window, and this crate provides
//! exactly the primitives they need.
//!
//! ## Determinism contract
//!
//! Every primitive returns results **in input order**, and every reduction
//! combines partial results in a **fixed order** that depends only on the
//! input length and the caller-chosen chunk size — never on the thread count
//! or on scheduling. Consequently the output of any `reveal-par` call is
//! bit-for-bit identical whether it runs on 1 thread or 64:
//!
//! - [`par_map`] / [`par_map_index`]: each element is a pure function of its
//!   index; results are written back by index.
//! - [`par_map_min`] / [`par_map_index_min`]: identical output, but a
//!   minimum-work-per-worker heuristic drops tiny batches to the calling
//!   thread (no spawn) — the worker count depends only on the batch size and
//!   the configured thread count, so determinism is preserved.
//! - [`par_map_modeled`] / [`par_map_index_modeled`] /
//!   [`par_map_index_with_scratch`]: identical output, but the worker count
//!   and the claim granularity come from a measured [`cost::CostModel`]
//!   instead of a hard-coded minimum. The plan varies with the machine and
//!   with past observations — scheduling only; results are still placed by
//!   index.
//! - [`par_map_index_with_scratch`] additionally gives each worker one
//!   long-lived scratch value for its entire share of the work (a warm
//!   memo cache, a reusable buffer). The caller promises the scratch is
//!   **value-transparent** — it may change how fast a task runs, never what
//!   the task returns — which keeps the output independent of how indices
//!   happen to be partitioned across workers.
//! - [`par_map_chunks`]: chunk boundaries are `chunk_size`-aligned and
//!   independent of the thread count.
//! - [`par_reduce`]: each chunk is folded left-to-right and chunk results are
//!   combined left-to-right, so even non-associative floating-point
//!   reductions are reproducible across thread counts.
//!
//! ## Thread-count resolution
//!
//! 1. a process-wide override set by [`with_threads`] (tests, benches),
//! 2. the `REVEAL_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! ## Example
//!
//! ```
//! let squares = reveal_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! let sum = reveal_par::par_reduce(&squares, 2, 0u64, |a, &x| a + x, |a, b| a + b);
//! assert_eq!(sum, 30);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub mod channel;
pub mod cost;
pub mod simd;

pub use channel::{bounded, OverflowPolicy, QueueMetrics, RecvError, SendError};
pub use cost::{
    hardware_threads, snapshots as cost_snapshots, spawn_cost_ns, CostModel, CostSnapshot, Plan,
};

/// Process-wide thread-count override (0 = unset). Written only under
/// [`OVERRIDE_LOCK`] by [`with_threads`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`with_threads`] callers so concurrent tests cannot observe
/// each other's override.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// The number of worker threads a parallel call will use: the
/// [`with_threads`] override if active, else `REVEAL_THREADS`, else
/// [`std::thread::available_parallelism`] (1 if unavailable).
pub fn max_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var("REVEAL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Runs `body` with the thread count pinned to `threads`, restoring the
/// previous setting afterwards. Callers are serialized process-wide, so two
/// concurrent `with_threads` blocks (e.g. parallel tests) cannot leak their
/// setting into each other. Results are unchanged by construction — this
/// only controls how much hardware the work is spread over.
pub fn with_threads<R>(threads: usize, body: impl FnOnce() -> R) -> R {
    let guard = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let previous = THREAD_OVERRIDE.swap(threads.max(1), Ordering::Relaxed);
    let result = body();
    THREAD_OVERRIDE.store(previous, Ordering::Relaxed);
    drop(guard);
    result
}

/// Derives an independent 64-bit seed from a master seed and a task index
/// (`SplitMix64` finalizer over the golden-ratio sequence). Used to give every
/// parallel task its own RNG stream: task `i`'s randomness depends only on
/// `(master, i)`, never on how much randomness other tasks consumed — the
/// root fix for order-dependent collection.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core executor: evaluates `task(0..count)` on up to `threads` scoped
/// workers and returns the results in index order, along with the final
/// scratch value each worker carried.
///
/// Work is claimed dynamically — an atomic cursor advanced `claim_chunk`
/// indices at a time — but since every task must be a pure function of its
/// index (the scratch is value-transparent by the caller's contract) and
/// results are placed by index, neither scheduling nor the claim granularity
/// can affect the output.
///
/// Each worker builds its scratch with `init` exactly once and keeps it for
/// every index it claims; the serial path (`threads <= 1`) likewise uses one
/// scratch for the whole loop, so "one worker" and "the calling thread"
/// behave identically.
fn run_indexed_stateful<St: Send, R: Send>(
    count: usize,
    threads: usize,
    claim_chunk: usize,
    init: &(impl Fn() -> St + Sync),
    task: &(impl Fn(&mut St, usize) -> R + Sync),
) -> (Vec<R>, Vec<St>) {
    let claim_chunk = claim_chunk.max(1);
    if threads <= 1 || count <= 1 {
        let mut scratch = init();
        let results = (0..count).map(|i| task(&mut scratch, i)).collect();
        return (results, vec![scratch]);
    }
    let cursor = AtomicUsize::new(0);
    let worker_outputs: Vec<(Vec<(usize, R)>, St)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut produced = Vec::new();
                    loop {
                        let start = cursor.fetch_add(claim_chunk, Ordering::Relaxed);
                        if start >= count {
                            break;
                        }
                        let end = start.saturating_add(claim_chunk).min(count);
                        for index in start..end {
                            produced.push((index, task(&mut scratch, index)));
                        }
                    }
                    (produced, scratch)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
    let mut scratches = Vec::with_capacity(worker_outputs.len());
    for (bucket, scratch) in worker_outputs {
        for (index, value) in bucket {
            slots[index] = Some(value);
        }
        scratches.push(scratch);
    }
    let results = slots
        .into_iter()
        .map(|slot| slot.expect("every index is claimed exactly once"))
        .collect();
    (results, scratches)
}

/// Stateless single-claim executor (the pre-cost-model shape), kept as the
/// engine behind the plain and `_min` primitives.
fn run_indexed_capped<R: Send>(
    count: usize,
    threads: usize,
    task: &(impl Fn(usize) -> R + Sync),
) -> Vec<R> {
    run_indexed_stateful(count, threads, 1, &|| (), &|(): &mut (), i| task(i)).0
}

fn run_indexed<R: Send>(count: usize, task: &(impl Fn(usize) -> R + Sync)) -> Vec<R> {
    run_indexed_capped(count, max_threads().min(count), task)
}

/// The worker count the minimum-work heuristic allows for `count` items when
/// each worker should receive at least `min_items_per_worker` of them: small
/// batches degenerate to one worker (pure serial, no threads spawned at
/// all), large batches still fan out to [`max_threads`]. The result depends
/// only on `(count, min_items_per_worker)` and the configured thread count —
/// never on scheduling — so the determinism contract is unaffected (results
/// are placed by index regardless of the worker count).
fn capped_workers(count: usize, min_items_per_worker: usize) -> usize {
    max_threads()
        .min(count / min_items_per_worker.max(1))
        .max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Intended for coarse tasks (a device capture, a trace segmentation, a
/// candidate's full correlation sweep); for element counts in the millions
/// prefer [`par_map_chunks`] to amortize the per-task claim, and for cheap
/// per-item work prefer [`par_map_min`] so tiny batches skip the thread
/// spawn entirely.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    run_indexed(items.len(), &|i| f(&items[i]))
}

/// Maps `f` over `0..count` in parallel, returning results in index order.
pub fn par_map_index<R: Send>(count: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    run_indexed(count, &f)
}

/// [`par_map`] with a minimum-work-per-worker heuristic: workers are capped
/// so each receives at least `min_items_per_worker` items, and batches
/// smaller than `2 × min_items_per_worker` run serially on the calling
/// thread — spawning threads for a handful of microseconds of work costs
/// more than it saves (the `cpa_rank` regression of `BENCH_pipeline.json`).
/// Output is bit-identical to [`par_map`] for any thread count.
pub fn par_map_min<T: Sync, R: Send>(
    items: &[T],
    min_items_per_worker: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let workers = capped_workers(items.len(), min_items_per_worker);
    run_indexed_capped(items.len(), workers, &|i| f(&items[i]))
}

/// [`par_map_index`] with the minimum-work-per-worker heuristic of
/// [`par_map_min`].
pub fn par_map_index_min<R: Send>(
    count: usize,
    min_items_per_worker: usize,
    f: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let workers = capped_workers(count, min_items_per_worker);
    run_indexed_capped(count, workers, &f)
}

/// [`par_map_index`] scheduled by a measured [`CostModel`]: the model sizes
/// the worker count and the claim chunk from `count`, `units_per_item`
/// (the caller's relative work estimate per item — e.g. `dim²` for a matrix
/// row) and its observed nanoseconds-per-unit; the call's own wall time is
/// fed back afterwards. Output is bit-identical to [`par_map_index`] for any
/// thread count, plan, or timing noise.
pub fn par_map_index_modeled<R: Send>(
    count: usize,
    model: &'static CostModel,
    units_per_item: u64,
    f: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    let plan = model.plan(count, units_per_item);
    let start = Instant::now();
    let results =
        run_indexed_stateful(count, plan.workers, plan.claim_chunk, &|| (), &|(), i| f(i)).0;
    model.record(count, units_per_item, start.elapsed());
    results
}

/// [`par_map`] scheduled by a measured [`CostModel`] (see
/// [`par_map_index_modeled`]).
pub fn par_map_modeled<T: Sync, R: Send>(
    items: &[T],
    model: &'static CostModel,
    units_per_item: u64,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    par_map_index_modeled(items.len(), model, units_per_item, |i| f(&items[i]))
}

/// [`par_map_index_modeled`] where every worker owns one long-lived scratch
/// value for its entire share of the work, built by `init` exactly once per
/// worker. Returns the results in index order plus each worker's final
/// scratch (in worker order) for observability — cache hit counters, buffer
/// high-water marks.
///
/// ## Caller contract: the scratch must be value-transparent
///
/// `task(&mut scratch, i)` must return the same value whatever state the
/// scratch is in — the scratch may only make a task *faster* (memoized
/// noiseless templates, a pre-grown buffer), never change its result. Under
/// that contract the output is bit-identical for any thread count and any
/// partition of indices across workers, preserving the crate's determinism
/// guarantee. The scratch contents themselves are partition-dependent and
/// must only feed diagnostics.
pub fn par_map_index_with_scratch<St: Send, R: Send>(
    count: usize,
    model: &'static CostModel,
    units_per_item: u64,
    init: impl Fn() -> St + Sync,
    task: impl Fn(&mut St, usize) -> R + Sync,
) -> (Vec<R>, Vec<St>) {
    let plan = model.plan(count, units_per_item);
    let start = Instant::now();
    let out = run_indexed_stateful(count, plan.workers, plan.claim_chunk, &init, &task);
    model.record(count, units_per_item, start.elapsed());
    out
}

/// Splits `items` into `chunk_size`-aligned chunks (the last may be short),
/// maps `f(chunk_index, chunk)` over them in parallel, and returns one result
/// per chunk in chunk order. Chunk boundaries depend only on `items.len()`
/// and `chunk_size`, never on the thread count.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_map_chunks<T: Sync, R: Send>(
    items: &[T],
    chunk_size: usize,
    f: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunk_count = items.len().div_ceil(chunk_size);
    run_indexed(chunk_count, &|c| {
        let lo = c * chunk_size;
        let hi = (lo + chunk_size).min(items.len());
        f(c, &items[lo..hi])
    })
}

/// Deterministic parallel reduction: folds each `chunk_size`-aligned chunk
/// left-to-right from a fresh `identity`, then combines the chunk results
/// left-to-right (again from `identity`). The combining order is fixed by
/// the chunking alone, so floating-point reductions are bit-identical across
/// thread counts. For associative-exact operations (integer sums, set
/// unions) the result equals the plain serial fold.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_reduce<T: Sync, A: Send + Sync + Clone>(
    items: &[T],
    chunk_size: usize,
    identity: A,
    fold: impl Fn(A, &T) -> A + Sync,
    combine: impl Fn(A, A) -> A,
) -> A {
    let partials = par_map_chunks(items, chunk_size, |_, chunk| {
        chunk.iter().fold(identity.clone(), &fold)
    });
    partials.into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = with_threads(threads, || par_map(&items, |&x| x * 3 + 1));
            assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_index_matches_serial() {
        for threads in [1, 4] {
            let out = with_threads(threads, || par_map_index(257, |i| i * i));
            assert_eq!(out, (0..257).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunk_boundaries_are_thread_independent() {
        let items: Vec<f64> = (0..10_000).map(|i| f64::from(i).sin()).collect();
        let reference = with_threads(1, || {
            par_reduce(&items, 512, 0.0f64, |a, &x| a + x, |a, b| a + b)
        });
        for threads in [2, 3, 5, 8] {
            let sum = with_threads(threads, || {
                par_reduce(&items, 512, 0.0f64, |a, &x| a + x, |a, b| a + b)
            });
            // Bit-for-bit, not approximately: the combining order is fixed.
            assert_eq!(sum.to_bits(), reference.to_bits(), "threads {threads}");
        }
    }

    #[test]
    fn map_chunks_covers_everything_once() {
        let items: Vec<usize> = (0..103).collect();
        let chunks = with_threads(4, || {
            par_map_chunks(&items, 10, |c, chunk| (c, chunk.to_vec()))
        });
        assert_eq!(chunks.len(), 11);
        let mut rebuilt = Vec::new();
        for (i, (c, chunk)) in chunks.into_iter().enumerate() {
            assert_eq!(c, i);
            rebuilt.extend(chunk);
        }
        assert_eq!(rebuilt, items);
    }

    #[test]
    fn min_work_variants_match_plain_maps() {
        let items: Vec<u64> = (0..500).collect();
        for threads in [1, 2, 4, 8] {
            for min in [1, 16, 250, 1000] {
                let a = with_threads(threads, || par_map_min(&items, min, |&x| x * 7 + 1));
                assert_eq!(a, items.iter().map(|&x| x * 7 + 1).collect::<Vec<_>>());
                let b = with_threads(threads, || par_map_index_min(257, min, |i| i * i));
                assert_eq!(b, (0..257).map(|i| i * i).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn min_work_heuristic_caps_workers() {
        // count / min < 2 ⇒ one worker (serial); larger batches fan out but
        // never give a worker less than `min` items.
        assert_eq!(with_threads(8, || capped_workers(29, 32)), 1);
        assert_eq!(with_threads(8, || capped_workers(63, 32)), 1);
        assert_eq!(with_threads(8, || capped_workers(64, 32)), 2);
        assert_eq!(with_threads(8, || capped_workers(1024, 32)), 8);
        assert_eq!(with_threads(2, || capped_workers(1024, 32)), 2);
        // min = 0 behaves like min = 1.
        assert_eq!(with_threads(4, || capped_workers(8, 0)), 4);
        // Empty batches stay serial.
        assert_eq!(with_threads(8, || capped_workers(0, 16)), 1);
    }

    #[test]
    fn modeled_maps_match_serial() {
        static MODEL: CostModel = CostModel::new("par.test.modeled", 50.0);
        let items: Vec<u64> = (0..777).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 13 + 5).collect();
        for threads in [1, 2, 4, 8] {
            // Repeat so the EWMA warms up and plans change between calls —
            // the output must not.
            for _ in 0..3 {
                let out = with_threads(threads, || {
                    par_map_modeled(&items, &MODEL, 1, |&x| x * 13 + 5)
                });
                assert_eq!(out, expected, "threads {threads}");
                let idx =
                    with_threads(threads, || par_map_index_modeled(258, &MODEL, 1, |i| i * i));
                assert_eq!(idx, (0..258).map(|i| i * i).collect::<Vec<_>>());
            }
        }
        let snap = MODEL.snapshot();
        assert!(snap.calls > 0);
        assert!(snap.measured_ns_per_unit.is_some());
    }

    #[test]
    fn scratch_workers_initialize_once_and_results_stay_ordered() {
        static MODEL: CostModel = CostModel::new("par.test.scratch", 10_000.0);
        for threads in [1, 2, 4] {
            let (results, scratches) = with_threads(threads, || {
                par_map_index_with_scratch(
                    100,
                    &MODEL,
                    1,
                    || 0u64, // per-worker counter: how many tasks it ran
                    |seen, i| {
                        *seen += 1;
                        i * 2
                    },
                )
            });
            assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            // Every index ran on exactly one worker's scratch.
            assert_eq!(scratches.iter().sum::<u64>(), 100, "threads {threads}");
            assert!(!scratches.is_empty() && scratches.len() <= threads.max(1));
            if threads == 1 {
                // Serial path: one scratch for the full collection.
                assert_eq!(scratches, vec![100]);
            }
        }
    }

    #[test]
    fn scratch_path_is_value_transparent_across_thread_counts() {
        static MODEL: CostModel = CostModel::new("par.test.transparent", 20_000.0);
        // A memo-like scratch: caches f(i) but never changes the result.
        let run = |threads: usize| {
            with_threads(threads, || {
                par_map_index_with_scratch(
                    64,
                    &MODEL,
                    1,
                    std::collections::HashMap::<usize, u64>::new,
                    |memo, i| *memo.entry(i % 7).or_insert_with(|| (i % 7) as u64 * 3),
                )
                .0
            })
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "threads {threads}");
        }
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(par_map(&[] as &[u8], |&x| x), Vec::<u8>::new());
        assert_eq!(par_map_index(0, |i| i), Vec::<usize>::new());
        assert_eq!(
            par_reduce(&[] as &[i64], 8, 7i64, |a, &x| a + x, |a, b| a + b),
            7
        );
    }

    #[test]
    fn derived_seeds_decorrelate_tasks() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "collisions in derived seeds");
        // Different masters give different streams.
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn with_threads_restores_previous_setting() {
        let outer = max_threads();
        with_threads(3, || {
            assert_eq!(max_threads(), 3);
            // Nesting is allowed; the inner value wins, then unwinds.
        });
        assert_eq!(max_threads(), outer);
    }

    proptest! {
        #[test]
        fn prop_par_map_equals_serial(
            items in proptest::collection::vec(-1_000_000i64..1_000_000, 0..300),
            threads in 1usize..9,
        ) {
            let serial: Vec<i64> = items.iter().map(|&x| x.wrapping_mul(31) ^ 7).collect();
            let parallel = with_threads(threads, || par_map(&items, |&x| x.wrapping_mul(31) ^ 7));
            prop_assert_eq!(parallel, serial);
        }

        #[test]
        fn prop_par_reduce_equals_serial_fold(
            items in proptest::collection::vec(-1_000_000i64..1_000_000, 0..300),
            threads in 1usize..9,
            chunk in 1usize..64,
        ) {
            let serial = items.iter().fold(0i64, |a, &x| a.wrapping_add(x));
            let parallel = with_threads(threads, || {
                par_reduce(
                    &items,
                    chunk,
                    0i64,
                    |a, &x| a.wrapping_add(x),
                    i64::wrapping_add,
                )
            });
            prop_assert_eq!(parallel, serial);
        }
    }
}
