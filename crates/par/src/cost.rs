//! Measured cost model for sizing parallel work.
//!
//! The static minimum-work heuristics this replaces (`par_map_min`'s magic
//! numbers: "64k multiply-adds per worker") encoded a guess about how many
//! nanoseconds one work unit costs. A guess cannot distinguish a laptop from
//! a CI container, and it cannot see that a warm cache made the work 3×
//! cheaper than last time. A [`CostModel`] instead *observes*: every modeled
//! parallel call is timed, the per-unit cost feeds an exponential moving
//! average, and the next call's worker count and claim granularity are sized
//! from the measurement.
//!
//! ## What the model decides — and what it cannot affect
//!
//! A [`Plan`] fixes two scheduling knobs:
//!
//! - **workers**: enough that each worker's share of the estimated total
//!   work amortizes one measured thread-spawn (see [`spawn_cost_ns`]), capped
//!   by [`max_threads`](crate::max_threads) *and* by the machine's
//!   [`hardware_threads`] — a requested thread count above the hardware
//!   (benchmarks pinning "parallel = 2" on a 1-core runner) must not spawn
//!   workers that can only time-slice each other. Batches too small to pay
//!   for a single spawn stay on the calling thread.
//! - **claim chunk**: how many indices a worker claims per atomic
//!   `fetch_add`. Cheap items are claimed in blocks (so the cursor is not
//!   hammered once per microsecond of work), expensive items one at a time
//!   (so stragglers balance).
//!
//! Both knobs change *scheduling only*. Every modeled primitive places
//! results by index, so the output is bit-identical whatever the
//! measurements say — a noisy timer can cost speed, never correctness.
//!
//! ## Observability
//!
//! Models register themselves on first use; [`snapshots`] returns every
//! registered model's measured cost and last plan, which `bench_pipeline`
//! records in `BENCH_pipeline.json` (schema v3) so a committed benchmark
//! shows the chunk sizes it actually ran with.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A worker's share of the estimated work must cover this many thread
/// spawns before the plan adds that worker: spawning costs the spawn itself
/// plus scheduling jitter and result reassembly, so demanding an order of
/// magnitude of headroom keeps the parallel path from losing to serial on
/// small batches (the committed 0.89× regression this crate's cost model
/// exists to prevent).
const SPAWN_AMORTIZATION: f64 = 10.0;

/// Target nanoseconds of work per cursor claim: large enough that the
/// atomic `fetch_add` and loop overhead vanish, small enough that a worker
/// never holds more than a sliver of the tail when others idle.
const CLAIM_TARGET_NS: f64 = 20_000.0;

/// Weight of the newest observation in the per-unit EWMA. 0.5 adapts within
/// a couple of calls but one wildly descheduled run cannot wreck the model.
const EWMA_ALPHA: f64 = 0.5;

/// Hardware threads actually available to this process, sampled once.
///
/// Plans never exceed this, no matter what `REVEAL_THREADS` or
/// [`with_threads`](crate::with_threads) request: the modeled workloads are
/// compute-bound, so workers beyond the hardware merely time-slice one
/// another and pay the context-switch tax — the committed 0.936×
/// `attack_traces` "speedup" came from exactly that, a benchmark forcing two
/// workers onto a single-core runner.
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

/// The measured cost of spawning one scoped worker thread, sampled once per
/// process on first use (median-of-3 spawn/join rounds). Everything the
/// planner compares against work estimates flows from this number, so it is
/// measured on the machine at hand rather than assumed.
pub fn spawn_cost_ns() -> f64 {
    static SPAWN_NS: OnceLock<f64> = OnceLock::new();
    *SPAWN_NS.get_or_init(|| {
        let mut rounds = [0.0f64; 3];
        for slot in &mut rounds {
            const PROBE_THREADS: usize = 4;
            let start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..PROBE_THREADS {
                    scope.spawn(|| {});
                }
            });
            *slot = start.elapsed().as_secs_f64() * 1e9 / PROBE_THREADS as f64;
        }
        rounds.sort_by(f64::total_cmp);
        // Floor: even if the probe got lucky, a spawn is never free.
        rounds[1].max(1_000.0)
    })
}

/// Claim granularity for a plan of `workers` over `count` items costing
/// `per_item_ns` each: serial plans claim everything at once; parallel plans
/// claim ~[`CLAIM_TARGET_NS`] of work per cursor `fetch_add`, but never so
/// coarsely that a worker cannot get at least 4 claims (load balance on
/// tails). Pure, so the sizing arithmetic is testable on any machine
/// regardless of how many hardware threads the test runner has.
fn claim_chunk_for(per_item_ns: f64, count: usize, workers: usize) -> usize {
    if workers <= 1 {
        count.max(1)
    } else {
        let by_cost = (CLAIM_TARGET_NS / per_item_ns.max(1e-3)).floor() as usize;
        let by_balance = count / (workers * 4);
        by_cost.clamp(1, by_balance.max(1))
    }
}

/// The scheduling decision for one modeled call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Plan {
    /// Worker threads to run (1 = serial on the calling thread).
    pub workers: usize,
    /// Indices claimed per cursor `fetch_add`.
    pub claim_chunk: usize,
}

/// A per-call-site cost model: an EWMA of observed nanoseconds per work
/// unit, plus the prior used until the first measurement lands.
///
/// Declare one `static` per call site and pass it to the modeled primitives
/// ([`par_map_modeled`](crate::par_map_modeled),
/// [`par_map_index_modeled`](crate::par_map_index_modeled),
/// [`par_map_index_with_scratch`](crate::par_map_index_with_scratch)); the
/// `'static` lifetime is what lets the model register itself for
/// [`snapshots`].
#[derive(Debug)]
pub struct CostModel {
    name: &'static str,
    prior_ns_per_unit: f64,
    /// Bits of the measured EWMA (f64); 0 = no measurement yet.
    measured_bits: AtomicU64,
    /// Last plan issued, for the bench's honest-topology report.
    last_workers: AtomicUsize,
    last_claim_chunk: AtomicUsize,
    last_count: AtomicUsize,
    calls: AtomicUsize,
}

/// A read-only view of one model's state, for benchmark artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct CostSnapshot {
    /// The call-site name the model was declared with.
    pub name: &'static str,
    /// The prior assumed before any measurement.
    pub prior_ns_per_unit: f64,
    /// The measured EWMA, if at least one call completed.
    pub measured_ns_per_unit: Option<f64>,
    /// Workers of the most recent plan (0 if never planned).
    pub last_workers: usize,
    /// Claim chunk of the most recent plan (0 if never planned).
    pub last_claim_chunk: usize,
    /// Item count of the most recent call (0 if never planned).
    pub last_count: usize,
    /// Number of modeled calls observed.
    pub calls: usize,
}

static REGISTRY: Mutex<Vec<&'static CostModel>> = Mutex::new(Vec::new());

impl CostModel {
    /// A model named after its call site, with the nanoseconds one work unit
    /// is assumed to cost until the first real measurement replaces the
    /// guess.
    pub const fn new(name: &'static str, prior_ns_per_unit: f64) -> Self {
        Self {
            name,
            prior_ns_per_unit,
            measured_bits: AtomicU64::new(0),
            last_workers: AtomicUsize::new(0),
            last_claim_chunk: AtomicUsize::new(0),
            last_count: AtomicUsize::new(0),
            calls: AtomicUsize::new(0),
        }
    }

    /// The current nanoseconds-per-unit estimate (measured, else prior).
    pub fn ns_per_unit(&self) -> f64 {
        let bits = self.measured_bits.load(Ordering::Relaxed);
        if bits == 0 {
            self.prior_ns_per_unit
        } else {
            f64::from_bits(bits)
        }
    }

    /// Sizes a call of `count` items, each costing `units_per_item` work
    /// units: workers amortize the measured spawn cost, claims target
    /// [`CLAIM_TARGET_NS`] of work. Deterministic in its *effect* on output
    /// (none — results are placed by index); the plan itself varies with the
    /// machine and with what the model has observed, which is the point.
    pub fn plan(&'static self, count: usize, units_per_item: u64) -> Plan {
        self.register();
        let threads = crate::max_threads()
            .min(hardware_threads())
            .min(count)
            .max(1);
        let per_item_ns = self.ns_per_unit() * units_per_item.max(1) as f64;
        let total_ns = per_item_ns * count as f64;
        let spawn_budget = SPAWN_AMORTIZATION * spawn_cost_ns();
        // Each of w workers gets total/w of work; demand total/w ≥ budget.
        let affordable = (total_ns / spawn_budget).floor() as usize;
        let workers = threads.min(affordable).max(1);
        let claim_chunk = claim_chunk_for(per_item_ns, count, workers);
        let plan = Plan {
            workers,
            claim_chunk,
        };
        self.last_workers.store(plan.workers, Ordering::Relaxed);
        self.last_claim_chunk
            .store(plan.claim_chunk, Ordering::Relaxed);
        self.last_count.store(count, Ordering::Relaxed);
        plan
    }

    /// Feeds one observed call back into the EWMA.
    pub fn record(&self, count: usize, units_per_item: u64, elapsed: Duration) {
        let units = count as f64 * units_per_item.max(1) as f64;
        if units <= 0.0 {
            return;
        }
        let observed = elapsed.as_secs_f64() * 1e9 / units;
        if !observed.is_finite() || observed <= 0.0 {
            return;
        }
        let bits = self.measured_bits.load(Ordering::Relaxed);
        let blended = if bits == 0 {
            observed
        } else {
            EWMA_ALPHA * observed + (1.0 - EWMA_ALPHA) * f64::from_bits(bits)
        };
        // A racing writer loses one observation; the model only steers
        // scheduling, so that is acceptable.
        self.measured_bits
            .store(blended.to_bits(), Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// This model's current state.
    pub fn snapshot(&self) -> CostSnapshot {
        let bits = self.measured_bits.load(Ordering::Relaxed);
        CostSnapshot {
            name: self.name,
            prior_ns_per_unit: self.prior_ns_per_unit,
            measured_ns_per_unit: (bits != 0).then(|| f64::from_bits(bits)),
            last_workers: self.last_workers.load(Ordering::Relaxed),
            last_claim_chunk: self.last_claim_chunk.load(Ordering::Relaxed),
            last_count: self.last_count.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
        }
    }

    fn register(&'static self) {
        let mut registry = REGISTRY
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !registry.iter().any(|m| std::ptr::eq(*m, self)) {
            registry.push(self);
        }
    }
}

/// Snapshots of every cost model that has planned at least one call this
/// process, in registration order.
pub fn snapshots() -> Vec<CostSnapshot> {
    let registry = REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    registry.iter().map(|m| m.snapshot()).collect()
}

#[cfg(test)]
mod tests {
    // Exact comparison is the point: an unmeasured model must return its
    // prior unchanged, not approximately.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::with_threads;

    static TEST_MODEL: CostModel = CostModel::new("cost.test", 100.0);
    static CHEAP_MODEL: CostModel = CostModel::new("cost.cheap", 1.0);

    #[test]
    fn unmeasured_model_uses_prior() {
        static FRESH: CostModel = CostModel::new("cost.fresh", 42.0);
        assert_eq!(FRESH.ns_per_unit(), 42.0);
        assert_eq!(FRESH.snapshot().measured_ns_per_unit, None);
    }

    #[test]
    fn tiny_batches_stay_serial() {
        // 4 items × 1 unit × 1ns prior can never pay for a spawn.
        let plan = with_threads(8, || CHEAP_MODEL.plan(4, 1));
        assert_eq!(plan.workers, 1);
    }

    #[test]
    fn huge_batches_fan_out_and_chunk() {
        // 1e6 items at ~100ns each = 100ms of work: far beyond any spawn
        // budget, so the plan uses every thread the *hardware* has, up to
        // the requested 4. On a single-core runner that is 1 — the requested
        // count must not leak through (that oversubscription was the 0.936×
        // attack_traces regression).
        let expected = 4.min(hardware_threads());
        let plan = with_threads(4, || TEST_MODEL.plan(1_000_000, 1));
        assert_eq!(plan.workers, expected);
        if expected > 1 {
            assert!(plan.claim_chunk > 1, "chunk {}", plan.claim_chunk);
            // Expensive items claim singly: 1 item ≥ the 20µs claim target.
            let plan = with_threads(4, || TEST_MODEL.plan(1_000, 1_000_000));
            assert_eq!(plan.claim_chunk, 1);
        } else {
            // Serial plans claim the whole range in one go.
            assert_eq!(plan.claim_chunk, 1_000_000);
        }
    }

    #[test]
    fn plans_never_oversubscribe_hardware() {
        // Even an absurd requested thread count caps at the machine.
        let plan = with_threads(64, || TEST_MODEL.plan(10_000_000, 1));
        assert!(
            plan.workers <= hardware_threads(),
            "plan spawned {} workers on {} hardware threads",
            plan.workers,
            hardware_threads()
        );
    }

    #[test]
    fn claim_chunks_size_from_cost_and_balance() {
        // Serial: one claim covering everything.
        assert_eq!(claim_chunk_for(100.0, 1_000, 1), 1_000);
        assert_eq!(claim_chunk_for(100.0, 0, 1), 1);
        // 100ns items, 20µs target → 200-item claims; balance cap allows it.
        assert_eq!(claim_chunk_for(100.0, 1_000_000, 4), 200);
        // Expensive items (1ms each) claim singly.
        assert_eq!(claim_chunk_for(1e6, 1_000, 4), 1);
        // Balance cap: claims shrink so each of 4 workers gets ≥4 claims.
        assert_eq!(claim_chunk_for(1.0, 64, 4), 4);
    }

    #[test]
    fn record_feeds_the_estimate() {
        static LEARNED: CostModel = CostModel::new("cost.learned", 1.0);
        LEARNED.record(1_000, 1, Duration::from_millis(1));
        // 1ms / 1000 units = 1µs per unit.
        assert!((LEARNED.ns_per_unit() - 1_000.0).abs() < 1.0);
        // Second observation blends.
        LEARNED.record(1_000, 1, Duration::from_millis(3));
        assert!((LEARNED.ns_per_unit() - 2_000.0).abs() < 1.0);
        assert_eq!(LEARNED.snapshot().calls, 2);
    }

    #[test]
    fn plans_never_exceed_thread_cap_or_count() {
        for threads in [1, 2, 8] {
            for count in [0usize, 1, 7, 4096] {
                let plan = with_threads(threads, || TEST_MODEL.plan(count, 64));
                assert!(plan.workers >= 1 && plan.workers <= threads.max(1));
                assert!(plan.workers <= count.max(1));
                assert!(plan.claim_chunk >= 1);
            }
        }
    }

    #[test]
    fn spawn_cost_is_positive_and_cached() {
        let a = spawn_cost_ns();
        let b = spawn_cost_ns();
        assert!(a >= 1_000.0);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn registry_lists_used_models() {
        let _ = with_threads(2, || TEST_MODEL.plan(10, 1));
        let names: Vec<&str> = snapshots().iter().map(|s| s.name).collect();
        assert!(names.contains(&"cost.test"));
        // Registration is idempotent.
        let _ = with_threads(2, || TEST_MODEL.plan(10, 1));
        let again: Vec<&str> = snapshots().iter().map(|s| s.name).collect();
        assert_eq!(
            again.iter().filter(|n| **n == "cost.test").count(),
            1,
            "{again:?}"
        );
    }
}
