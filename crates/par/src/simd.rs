//! SIMD-shaped `f64` kernels with scalar-identical references.
//!
//! The workspace forbids `unsafe` and builds on stable Rust, so there are no
//! intrinsics and no `std::simd` here. Instead each kernel is written in the
//! *chunked-lanes* shape LLVM's autovectorizer reliably turns into packed
//! `f64x4` arithmetic: a fixed-size `[f64; LANES]` accumulator updated from
//! `chunks_exact(LANES)` windows, with no cross-lane dependence inside the
//! loop.
//!
//! ## The bit-identity contract
//!
//! Floating-point addition is not associative, so "vectorize the sum" is a
//! semantic change unless the lane structure is part of the kernel's
//! definition. It is, here: every reducing kernel is **defined** by the
//! recurrence its `_scalar` reference spells out with plain indexed loops —
//! lane `j` accumulates the elements at `i ≡ j (mod LANES)` over the chunked
//! prefix, lanes combine pairwise as `(l0+l1) + (l2+l3)`, and the remainder
//! folds element-by-element onto that total. The vectorized form performs
//! the exact same operations in the exact same order per lane, so the two
//! are bit-identical for *every* input and length — including lengths that
//! leave a 1–3 element remainder — which the proptests below pin down.
//!
//! Callers that adopt these kernels therefore change their results relative
//! to a plain sequential sum (reassociation), but stay deterministic: the
//! same input gives the same bits on every run, thread count, and machine.
//! Element-wise kernels ([`axpy`]) involve no reduction and are bit-identical
//! to any evaluation order by construction.

/// Lanes per accumulator: matches one AVX2 / NEON-pair `f64x4` register.
pub const LANES: usize = 4;

/// Pairwise combine of one lane accumulator: `(l0 + l1) + (l2 + l3)`.
#[inline]
fn combine(acc: [f64; LANES]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Four-lane dot product `Σ a[i]·b[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot operands must match in length");
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        for j in 0..LANES {
            acc[j] += ca[j] * cb[j];
        }
    }
    let mut total = combine(acc);
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        total += x * y;
    }
    total
}

/// The defining recurrence of [`dot`], spelled out scalar-by-scalar.
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot operands must match in length");
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f64; LANES];
    let mut i = 0;
    while i < split {
        acc[i % LANES] += a[i] * b[i];
        i += 1;
    }
    let mut total = combine(acc);
    while i < a.len() {
        total += a[i] * b[i];
        i += 1;
    }
    total
}

/// Four-lane sum `Σ a[i]`.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f64; LANES];
    for chunk in a[..split].chunks_exact(LANES) {
        for j in 0..LANES {
            acc[j] += chunk[j];
        }
    }
    let mut total = combine(acc);
    for x in &a[split..] {
        total += x;
    }
    total
}

/// The defining recurrence of [`sum`].
pub fn sum_scalar(a: &[f64]) -> f64 {
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f64; LANES];
    let mut i = 0;
    while i < split {
        acc[i % LANES] += a[i];
        i += 1;
    }
    let mut total = combine(acc);
    while i < a.len() {
        total += a[i];
        i += 1;
    }
    total
}

/// Four-lane centered dot product `Σ (a[i] − ma)·(b[i] − mb)` — the
/// covariance kernel of CPA correlation (means precomputed by the caller).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn centered_dot(a: &[f64], ma: f64, b: &[f64], mb: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "centered_dot operands must match");
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        for j in 0..LANES {
            acc[j] += (ca[j] - ma) * (cb[j] - mb);
        }
    }
    let mut total = combine(acc);
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        total += (x - ma) * (y - mb);
    }
    total
}

/// The defining recurrence of [`centered_dot`].
pub fn centered_dot_scalar(a: &[f64], ma: f64, b: &[f64], mb: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "centered_dot operands must match");
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f64; LANES];
    let mut i = 0;
    while i < split {
        acc[i % LANES] += (a[i] - ma) * (b[i] - mb);
        i += 1;
    }
    let mut total = combine(acc);
    while i < a.len() {
        total += (a[i] - ma) * (b[i] - mb);
        i += 1;
    }
    total
}

/// Element-wise `y[i] += alpha · x[i]` — the matmul row-update kernel. No
/// reduction is involved, so this is bit-identical to the plain loop under
/// any evaluation order; the chunked shape exists to guarantee packed code
/// without relying on the optimizer seeing through iterator adapters.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy operands must match in length");
    let split = x.len() - x.len() % LANES;
    for (cx, cy) in x[..split]
        .chunks_exact(LANES)
        .zip(y[..split].chunks_exact_mut(LANES))
    {
        for j in 0..LANES {
            cy[j] += alpha * cx[j];
        }
    }
    for (xv, yv) in x[split..].iter().zip(&mut y[split..]) {
        *yv += alpha * xv;
    }
}

/// The defining loop of [`axpy`].
pub fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy operands must match in length");
    for i in 0..x.len() {
        y[i] += alpha * x[i];
    }
}

#[cfg(test)]
mod tests {
    // Exact comparison is the point of the bit-identity contract.
    #![allow(clippy::float_cmp)]

    use super::*;
    use proptest::prelude::*;

    fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-1.0e12f64..1.0e12, 0..max_len)
    }

    #[test]
    fn empty_and_short_inputs() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(centered_dot(&[], 1.0, &[], 2.0), 0.0);
        // Remainder-only inputs (length < LANES) exercise the tail path.
        for len in 1..LANES {
            let a: Vec<f64> = (0..len).map(|i| i as f64 + 0.5).collect();
            let b: Vec<f64> = (0..len).map(|i| 2.0 - i as f64).collect();
            assert_eq!(dot(&a, &b).to_bits(), dot_scalar(&a, &b).to_bits());
            assert_eq!(sum(&a).to_bits(), sum_scalar(&a).to_bits());
        }
    }

    #[test]
    fn dot_known_value() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 2.0, 2.0, 2.0, 2.0];
        assert_eq!(dot(&a, &b), 30.0);
        assert_eq!(sum(&a), 15.0);
    }

    #[test]
    fn axpy_matches_scalar_in_place() {
        let x: Vec<f64> = (0..37).map(|i| f64::from(i).sin()).collect();
        let mut y1: Vec<f64> = (0..37).map(|i| f64::from(i).cos()).collect();
        let mut y2 = y1.clone();
        axpy(0.37, &x, &mut y1);
        axpy_scalar(0.37, &x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    proptest! {
        // The contract of this whole module: vectorized shape ≡ scalar
        // reference, bit for bit, at every length (remainders included).
        // Equal-length pairs come from truncating two independent vectors
        // to their shorter length, which still visits every remainder class.
        #[test]
        fn prop_dot_bit_identical(a in finite_vec(130), b in finite_vec(130)) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            prop_assert_eq!(dot(a, b).to_bits(), dot_scalar(a, b).to_bits());
        }

        #[test]
        fn prop_sum_bit_identical(a in finite_vec(130)) {
            prop_assert_eq!(sum(&a).to_bits(), sum_scalar(&a).to_bits());
        }

        #[test]
        fn prop_centered_dot_bit_identical(
            a in finite_vec(130),
            b in finite_vec(130),
            ma in -1.0e6f64..1.0e6,
            mb in -1.0e6f64..1.0e6,
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            prop_assert_eq!(
                centered_dot(a, ma, b, mb).to_bits(),
                centered_dot_scalar(a, ma, b, mb).to_bits()
            );
        }

        #[test]
        fn prop_axpy_bit_identical(
            x in finite_vec(130),
            y in finite_vec(130),
            alpha in -1.0e6f64..1.0e6,
        ) {
            let n = x.len().min(y.len());
            let x = &x[..n];
            let mut fast = y[..n].to_vec();
            let mut reference = fast.clone();
            axpy(alpha, x, &mut fast);
            axpy_scalar(alpha, x, &mut reference);
            for (a, b) in fast.iter().zip(&reference) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // Sanity: the lane-structured sum is a *correct* sum (close to the
        // sequential one), not just self-consistent.
        #[test]
        fn prop_dot_close_to_sequential(
            a in proptest::collection::vec(-1.0e3f64..1.0e3, 0..64usize),
            b in proptest::collection::vec(-1.0e3f64..1.0e3, 0..64usize),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let sequential: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let magnitude: f64 = a.iter().zip(b).map(|(x, y)| (x * y).abs()).sum();
            prop_assert!((dot(a, b) - sequential).abs() <= 1e-12 * (1.0 + magnitude));
        }
    }
}
