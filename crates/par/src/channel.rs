//! A bounded multi-producer single-consumer channel with explicit overflow
//! policy and occupancy metrics.
//!
//! `std::sync::mpsc::sync_channel` blocks producers when full and reports
//! nothing about how full it ever got. A long-running service needs both
//! choices to be explicit: **block** (propagate backpressure upstream) or
//! **shed** (reject the item now, count it, keep latency bounded), and it
//! needs the high-water mark to prove its queues stayed bounded. This
//! module provides exactly that on `Mutex` + `Condvar` — no unsafe, no
//! spinning.
//!
//! ## Semantics
//!
//! - Capacity is a hard bound: the queue never holds more than `capacity`
//!   items, and [`QueueMetrics::high_water`] records the deepest it got.
//! - [`Sender::send`] honours an [`OverflowPolicy`]: `Block` waits for
//!   space (or channel close), `Shed` fails fast with the item returned.
//! - Dropping the last [`Sender`] closes the channel: the receiver drains
//!   what is buffered, then sees [`RecvError::Closed`]. Dropping the
//!   [`Receiver`] also closes it, so blocked producers always wake up.
//! - FIFO order is preserved (single consumer).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// What a producer does when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Wait until space frees up (backpressure propagates upstream).
    Block,
    /// Reject the item immediately and count it as shed.
    Shed,
}

impl std::fmt::Display for OverflowPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverflowPolicy::Block => write!(f, "block"),
            OverflowPolicy::Shed => write!(f, "shed"),
        }
    }
}

/// Why a send did not enqueue. The item is always handed back.
#[derive(Debug, PartialEq, Eq)]
pub enum SendError<T> {
    /// The channel is closed (receiver dropped or explicitly closed).
    Closed(T),
    /// The queue was full under [`OverflowPolicy::Shed`].
    Full(T),
}

impl<T> SendError<T> {
    /// Recovers the item that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            SendError::Closed(item) | SendError::Full(item) => item,
        }
    }
}

/// Why a receive returned no item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The deadline passed with the queue still empty.
    Timeout,
    /// The channel is closed and fully drained.
    Closed,
}

/// Occupancy counters for one channel, taken atomically under the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueMetrics {
    /// The configured hard bound.
    pub capacity: usize,
    /// Deepest occupancy ever observed (never exceeds `capacity`).
    pub high_water: usize,
    /// Current occupancy.
    pub depth: usize,
    /// Items accepted into the queue.
    pub pushed: u64,
    /// Items handed to the consumer.
    pub popped: u64,
    /// Items rejected under [`OverflowPolicy::Shed`].
    pub shed: u64,
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
    senders: usize,
    high_water: usize,
    pushed: u64,
    popped: u64,
    shed: u64,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn metrics(&self) -> QueueMetrics {
        let state = self.lock();
        QueueMetrics {
            capacity: self.capacity,
            high_water: state.high_water,
            depth: state.queue.len(),
            pushed: state.pushed,
            popped: state.popped,
            shed: state.shed,
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// The producing half. Cloneable; the channel closes when the last clone
/// is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half. Dropping it closes the channel so blocked
/// producers wake with [`SendError::Closed`].
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel with the given hard capacity (floored at 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            closed: false,
            senders: 1,
            high_water: 0,
            pushed: 0,
            popped: 0,
            shed: 0,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity: capacity.max(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        if state.senders == 0 {
            state.closed = true;
            drop(state);
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.close();
    }
}

impl<T> Sender<T> {
    /// Enqueues `item` under `policy`.
    ///
    /// # Errors
    ///
    /// [`SendError::Closed`] when the channel is closed;
    /// [`SendError::Full`] when the queue is at capacity under
    /// [`OverflowPolicy::Shed`] (the shed counter is incremented).
    pub fn send(&self, item: T, policy: OverflowPolicy) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        loop {
            if state.closed {
                return Err(SendError::Closed(item));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(item);
                state.pushed += 1;
                state.high_water = state.high_water.max(state.queue.len());
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            match policy {
                OverflowPolicy::Shed => {
                    state.shed += 1;
                    return Err(SendError::Full(item));
                }
                OverflowPolicy::Block => {
                    state = self
                        .shared
                        .not_full
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// [`Sender::send`] with [`OverflowPolicy::Block`], but giving up after
    /// `deadline` — the typed stall detector for a stage that stops
    /// draining.
    ///
    /// # Errors
    ///
    /// [`SendError::Closed`] when the channel is closed; [`SendError::Full`]
    /// when the deadline passed with the queue still at capacity.
    pub fn send_deadline(&self, item: T, deadline: Duration) -> Result<(), SendError<T>> {
        let start = Instant::now();
        let mut state = self.shared.lock();
        loop {
            if state.closed {
                return Err(SendError::Closed(item));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(item);
                state.pushed += 1;
                state.high_water = state.high_water.max(state.queue.len());
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                state.shed += 1;
                return Err(SendError::Full(item));
            }
            let (guard, _) = self
                .shared
                .not_full
                .wait_timeout(state, deadline.saturating_sub(elapsed))
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Marks the channel closed without consuming the sender; later sends
    /// fail with [`SendError::Closed`] and the receiver drains then stops.
    pub fn close(&self) {
        self.shared.close();
    }

    /// A snapshot of the channel's occupancy counters.
    pub fn metrics(&self) -> QueueMetrics {
        self.shared.metrics()
    }
}

impl<T> Receiver<T> {
    /// Waits until an item arrives or the channel closes and drains.
    ///
    /// # Errors
    ///
    /// [`RecvError::Closed`] once the channel is closed and empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(item) = state.queue.pop_front() {
                state.popped += 1;
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if state.closed {
                return Err(RecvError::Closed);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// [`Receiver::recv`] with a deadline, so consumer loops can interleave
    /// periodic work (expiry sweeps, kill-flag checks) with draining.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] when the deadline passes with the queue still
    /// empty; [`RecvError::Closed`] once the channel is closed and empty.
    pub fn recv_timeout(&self, deadline: Duration) -> Result<T, RecvError> {
        let start = Instant::now();
        let mut state = self.shared.lock();
        loop {
            if let Some(item) = state.queue.pop_front() {
                state.popped += 1;
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if state.closed {
                return Err(RecvError::Closed);
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return Err(RecvError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline.saturating_sub(elapsed))
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// A snapshot of the channel's occupancy counters.
    pub fn metrics(&self) -> QueueMetrics {
        self.shared.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::thread;

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = bounded(8);
        for i in 0..8 {
            tx.send(i, OverflowPolicy::Block).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn shed_policy_rejects_at_capacity_and_counts() {
        let (tx, rx) = bounded(2);
        tx.send(1, OverflowPolicy::Shed).unwrap();
        tx.send(2, OverflowPolicy::Shed).unwrap();
        assert_eq!(tx.send(3, OverflowPolicy::Shed), Err(SendError::Full(3)));
        let m = tx.metrics();
        assert_eq!((m.depth, m.high_water, m.shed), (2, 2, 1));
        assert_eq!(rx.recv(), Ok(1));
        tx.send(4, OverflowPolicy::Shed).unwrap();
        assert_eq!(tx.metrics().high_water, 2);
    }

    #[test]
    fn block_policy_waits_for_space() {
        let (tx, rx) = bounded(1);
        tx.send(1, OverflowPolicy::Block).unwrap();
        let producer = thread::spawn(move || tx.send(2, OverflowPolicy::Block));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        producer.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn close_unblocks_both_sides() {
        let (tx, rx) = bounded(1);
        tx.send(1, OverflowPolicy::Block).unwrap();
        let tx2 = tx.clone();
        let producer = thread::spawn(move || tx2.send(2, OverflowPolicy::Block));
        thread::sleep(Duration::from_millis(20));
        tx.close();
        assert_eq!(producer.join().unwrap(), Err(SendError::Closed(2)));
        // Buffered item still drains, then Closed.
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError::Closed));
    }

    #[test]
    fn dropping_last_sender_closes() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.send(7, OverflowPolicy::Block).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(50)),
            Err(RecvError::Timeout)
        );
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError::Closed));
    }

    #[test]
    fn dropping_receiver_fails_sends() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.send(1, OverflowPolicy::Block), Err(SendError::Closed(1)));
    }

    #[test]
    fn send_deadline_times_out_when_stalled() {
        let (tx, _rx) = bounded(1);
        tx.send(1, OverflowPolicy::Block).unwrap();
        let err = tx.send_deadline(2, Duration::from_millis(30));
        assert_eq!(err, Err(SendError::Full(2)));
        assert_eq!(tx.metrics().shed, 1);
    }

    proptest! {
        /// Under any interleaving of sends (either policy) and receives,
        /// occupancy never exceeds capacity, the high-water mark is honest,
        /// and conservation holds: pushed = popped + depth.
        #[test]
        fn capacity_is_a_hard_bound(
            capacity in 1usize..6,
            ops in proptest::collection::vec(0u8..3, 1..80),
        ) {
            let (tx, rx) = bounded(capacity);
            let mut max_seen = 0usize;
            for op in ops {
                match op {
                    0 => { let _ = tx.send(op, OverflowPolicy::Shed); }
                    1 => { let _ = tx.send_deadline(op, Duration::from_millis(1)); }
                    _ => { let _ = rx.recv_timeout(Duration::from_millis(1)); }
                }
                let m = tx.metrics();
                max_seen = max_seen.max(m.depth);
                prop_assert!(m.depth <= capacity);
                prop_assert!(m.high_water <= capacity);
                prop_assert_eq!(m.pushed, m.popped + m.depth as u64);
            }
            prop_assert!(tx.metrics().high_water >= max_seen);
        }
    }
}
