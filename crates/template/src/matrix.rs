//! Small dense symmetric-positive-definite matrix routines (Cholesky based)
//! for multivariate Gaussian templates.
//!
//! The contiguous inner products and row updates go through the
//! [`reveal_par::simd`] kernels: lane-structured, autovectorizable, and
//! deterministic (the lane recurrence is part of the kernel definition, so
//! results are identical across thread counts and machines). Strided
//! accesses (the backward substitution, the Jacobi rotations) stay scalar —
//! gathering a column defeats packed loads anyway.

use reveal_par::simd;
use std::fmt;

/// Errors from matrix factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// The matrix is not (numerically) positive definite.
    NotPositiveDefinite { pivot: usize, value: f64 },
    /// Dimension mismatch between operands.
    DimensionMismatch { expected: usize, got: usize },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::NotPositiveDefinite { pivot, value } => {
                write!(
                    f,
                    "matrix not positive definite at pivot {pivot} (value {value})"
                )
            }
            MatrixError::DimensionMismatch { expected, got } => {
                write!(f, "expected dimension {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix,
/// retaining `L` (lower triangular) for solves and log-determinants.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    dim: usize,
    /// Row-major lower-triangular factor (upper part unused).
    l: Vec<f64>,
}

impl Cholesky {
    /// Factorizes a row-major symmetric matrix.
    ///
    /// # Errors
    ///
    /// Fails when a pivot is non-positive (matrix not positive definite).
    pub fn new(matrix: &[f64], dim: usize) -> Result<Self, MatrixError> {
        assert_eq!(matrix.len(), dim * dim, "matrix must be dim x dim");
        let mut l = vec![0.0; dim * dim];
        for i in 0..dim {
            for j in 0..=i {
                // Rows i and j of L are contiguous prefixes — a dot kernel.
                let sum = matrix[i * dim + j]
                    - simd::dot(&l[i * dim..i * dim + j], &l[j * dim..j * dim + j]);
                if i == j {
                    if sum <= 0.0 {
                        return Err(MatrixError::NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    l[i * dim + j] = sum.sqrt();
                } else {
                    l[i * dim + j] = sum / l[j * dim + j];
                }
            }
        }
        Ok(Self { dim, l })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `ln(det A) = 2 · Σ ln L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim)
            .map(|i| self.l[i * self.dim + i].ln())
            .sum::<f64>()
            * 2.0
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if b.len() != self.dim {
            return Err(MatrixError::DimensionMismatch {
                expected: self.dim,
                got: b.len(),
            });
        }
        // Forward: L·y = b. Row i of L and the solved prefix of y are both
        // contiguous, so the inner product vectorizes.
        let mut y = vec![0.0; self.dim];
        for i in 0..self.dim {
            let sum = b[i] - simd::dot(&self.l[i * self.dim..i * self.dim + i], &y[..i]);
            y[i] = sum / self.l[i * self.dim + i];
        }
        // Backward: Lᵀ·x = y.
        let mut x = vec![0.0; self.dim];
        for i in (0..self.dim).rev() {
            let mut sum = y[i];
            for k in i + 1..self.dim {
                sum -= self.l[k * self.dim + i] * x[k];
            }
            x[i] = sum / self.l[i * self.dim + i];
        }
        Ok(x)
    }

    /// The Mahalanobis quadratic form `(x−μ)ᵀ A⁻¹ (x−μ)`.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn mahalanobis_squared(&self, x: &[f64], mean: &[f64]) -> Result<f64, MatrixError> {
        if x.len() != self.dim || mean.len() != self.dim {
            return Err(MatrixError::DimensionMismatch {
                expected: self.dim,
                got: x.len(),
            });
        }
        let diff: Vec<f64> = x.iter().zip(mean).map(|(a, b)| a - b).collect();
        let solved = self.solve(&diff)?;
        Ok(simd::dot(&diff, &solved))
    }
}

/// Eigen-decomposition of a symmetric matrix by the cyclic Jacobi method:
/// returns `(eigenvalues, eigenvectors)` with eigenvectors as rows, sorted
/// by descending eigenvalue.
///
/// # Panics
///
/// Panics if `matrix.len() != dim * dim`.
pub fn symmetric_eigen(matrix: &[f64], dim: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    assert_eq!(matrix.len(), dim * dim, "matrix must be dim x dim");
    let mut a = matrix.to_vec();
    // v starts as identity; accumulates the rotations (columns = eigenvectors).
    let mut v = vec![0.0; dim * dim];
    for i in 0..dim {
        v[i * dim + i] = 1.0;
    }
    let idx = |r: usize, c: usize| r * dim + c;
    for _sweep in 0..100 {
        // Largest off-diagonal magnitude decides convergence.
        let mut off = 0.0f64;
        for p in 0..dim {
            for q in p + 1..dim {
                off = off.max(a[idx(p, q)].abs());
            }
        }
        if off < 1e-12 {
            break;
        }
        for p in 0..dim {
            for q in p + 1..dim {
                let apq = a[idx(p, q)];
                if apq.abs() < 1e-14 {
                    continue;
                }
                let app = a[idx(p, p)];
                let aqq = a[idx(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of A.
                for k in 0..dim {
                    let akp = a[idx(k, p)];
                    let akq = a[idx(k, q)];
                    a[idx(k, p)] = c * akp - s * akq;
                    a[idx(k, q)] = s * akp + c * akq;
                }
                for k in 0..dim {
                    let apk = a[idx(p, k)];
                    let aqk = a[idx(q, k)];
                    a[idx(p, k)] = c * apk - s * aqk;
                    a[idx(q, k)] = s * apk + c * aqk;
                }
                // Accumulate rotation into V.
                for k in 0..dim {
                    let vkp = v[idx(k, p)];
                    let vkq = v[idx(k, q)];
                    v[idx(k, p)] = c * vkp - s * vkq;
                    v[idx(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..dim)
        .map(|i| {
            let value = a[idx(i, i)];
            let vector: Vec<f64> = (0..dim).map(|k| v[idx(k, i)]).collect();
            (value, vector)
        })
        .collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
    let values = pairs.iter().map(|(e, _)| *e).collect();
    let vectors = pairs.into_iter().map(|(_, v)| v).collect();
    (values, vectors)
}

/// Adds `lambda` to the diagonal of a row-major square matrix (ridge
/// regularization for nearly singular covariance estimates).
pub fn regularize(matrix: &mut [f64], dim: usize, lambda: f64) {
    for i in 0..dim {
        matrix[i * dim + i] += lambda;
    }
}

/// Cost model for one output row of a `dim × dim` product (units: `dim²`
/// multiply-adds): small matrices (the common POI-sized fits) stay serial
/// instead of paying thread handoff for microseconds of work, large LDA
/// fits fan out with measured claim sizes.
static MATMUL_ROW_COST: reveal_par::CostModel =
    reveal_par::CostModel::new("matrix.matmul.row", 1.0);

/// Dense square matrix product `C = A·B` (row-major), in the cache-friendly
/// **i-k-j** loop order: the inner loop walks row `k` of `B` and row `i` of
/// `C` contiguously, so wide-window LDA fits stop thrashing the cache the
/// way the textbook i-j-k order (which strides down a column of `B`) does.
/// Rows of `C` are independent and are computed in parallel via `reveal-par`,
/// each row bit-identical regardless of thread count.
///
/// # Panics
///
/// Panics if either operand is not `dim × dim`.
pub fn mat_mul(a: &[f64], b: &[f64], dim: usize) -> Vec<f64> {
    assert_eq!(a.len(), dim * dim, "left operand must be dim x dim");
    assert_eq!(b.len(), dim * dim, "right operand must be dim x dim");
    let units = (dim * dim) as u64;
    let rows = reveal_par::par_map_index_modeled(dim, &MATMUL_ROW_COST, units, |i| {
        let mut row = vec![0.0; dim];
        for k in 0..dim {
            let aik = a[i * dim + k];
            if aik == 0.0 {
                continue; // triangular operands skip half the work
            }
            // axpy is element-wise — bit-identical to the plain loop.
            simd::axpy(aik, &b[k * dim..(k + 1) * dim], &mut row);
        }
        row
    });
    let mut out = Vec::with_capacity(dim * dim);
    for row in rows {
        out.extend(row);
    }
    out
}

/// Dense square product with the right operand transposed, `C = A·Bᵀ`
/// (row-major). Transposing the right operand turns every inner product into
/// a scan of two contiguous rows — the other standard fix for the i-j-k
/// stride problem, used where the transposed operand is already at hand.
///
/// # Panics
///
/// Panics if either operand is not `dim × dim`.
pub fn mat_mul_transpose_right(a: &[f64], b: &[f64], dim: usize) -> Vec<f64> {
    assert_eq!(a.len(), dim * dim, "left operand must be dim x dim");
    assert_eq!(b.len(), dim * dim, "right operand must be dim x dim");
    let units = (dim * dim) as u64;
    let rows = reveal_par::par_map_index_modeled(dim, &MATMUL_ROW_COST, units, |i| {
        let a_row = &a[i * dim..(i + 1) * dim];
        (0..dim)
            .map(|j| simd::dot(a_row, &b[j * dim..(j + 1) * dim]))
            .collect::<Vec<f64>>()
    });
    let mut out = Vec::with_capacity(dim * dim);
    for row in rows {
        out.extend(row);
    }
    out
}

/// Multiplies a row-major square matrix by a vector.
pub fn mat_vec(matrix: &[f64], dim: usize, v: &[f64]) -> Vec<f64> {
    assert_eq!(v.len(), dim);
    (0..dim)
        .map(|i| simd::dot(&matrix[i * dim..(i + 1) * dim], v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn factorizes_identity() {
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let ch = Cholesky::new(&eye, 2).unwrap();
        assert_eq!(ch.log_determinant(), 0.0);
        assert_eq!(ch.solve(&[3.0, 4.0]).unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn known_factorization() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, sqrt(2)]].
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let ch = Cholesky::new(&a, 2).unwrap();
        assert!((ch.log_determinant() - (8.0f64).ln()).abs() < 1e-12);
        // Solve A x = [8, 7] → x = [ (8*3-7*2)/8, (4*7-2*8)/8 ] = [1.25, 1.5].
        let x = ch.solve(&[8.0, 7.0]).unwrap();
        assert!((x[0] - 1.25).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a, 2),
            Err(MatrixError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn mahalanobis_identity_is_euclidean() {
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let ch = Cholesky::new(&eye, 2).unwrap();
        let d2 = ch.mahalanobis_squared(&[3.0, 4.0], &[0.0, 0.0]).unwrap();
        assert!((d2 - 25.0).abs() < 1e-12);
    }

    #[test]
    fn regularization_fixes_singularity() {
        let mut singular = vec![1.0, 1.0, 1.0, 1.0];
        assert!(Cholesky::new(&singular, 2).is_err());
        regularize(&mut singular, 2, 1e-6);
        assert!(Cholesky::new(&singular, 2).is_ok());
    }

    #[test]
    fn dimension_mismatch_reported() {
        let ch = Cholesky::new(&[1.0], 1).unwrap();
        assert!(matches!(
            ch.solve(&[1.0, 2.0]),
            Err(MatrixError::DimensionMismatch {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn eigen_diagonal_matrix() {
        let m = vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0];
        let (values, vectors) = symmetric_eigen(&m, 3);
        assert!((values[0] - 3.0).abs() < 1e-10);
        assert!((values[1] - 2.0).abs() < 1e-10);
        assert!((values[2] - 1.0).abs() < 1e-10);
        // Dominant eigenvector is e0.
        assert!(vectors[0][0].abs() > 0.999);
    }

    #[test]
    fn eigen_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = vec![2.0, 1.0, 1.0, 2.0];
        let (values, vectors) = symmetric_eigen(&m, 2);
        assert!((values[0] - 3.0).abs() < 1e-10);
        assert!((values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/√2 up to sign.
        let v = &vectors[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((v[0] - v[1]).abs() < 1e-9 || (v[0] + v[1]).abs() < 1e-9);
        assert!((v[0] * v[1]).signum() > 0.0);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        // A = Σ λ_i v_i v_iᵀ.
        let m = vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 1.0];
        let (values, vectors) = symmetric_eigen(&m, 3);
        for r in 0..3 {
            for c in 0..3 {
                let mut acc = 0.0;
                for i in 0..3 {
                    acc += values[i] * vectors[i][r] * vectors[i][c];
                }
                assert!((acc - m[r * 3 + c]).abs() < 1e-9, "({r},{c})");
            }
        }
        // Eigenvectors are orthonormal.
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = vectors[i].iter().zip(&vectors[j]).map(|(a, b)| a * b).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mat_mul_known_product() {
        // [[1,2],[3,4]] · [[5,6],[7,8]] = [[19,22],[43,50]].
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        assert_eq!(mat_mul(&a, &b, 2), vec![19.0, 22.0, 43.0, 50.0]);
        // A·Bᵀ with Bᵀ = [[5,7],[6,8]] → [[17,23],[39,53]].
        assert_eq!(
            mat_mul_transpose_right(&a, &b, 2),
            vec![17.0, 23.0, 39.0, 53.0]
        );
    }

    #[test]
    fn mat_mul_matches_naive_and_threads() {
        // Pseudo-random 17×17 operands; ikj must agree with the naive ijk
        // order exactly (each c_ij is the same left-to-right sum over k).
        let dim = 17;
        let fill = |seed: u64| -> Vec<f64> {
            (0..dim * dim)
                .map(|i| {
                    let h = (i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(seed)
                        .rotate_left(21);
                    (h % 2000) as f64 / 1000.0 - 1.0
                })
                .collect()
        };
        let a = fill(1);
        let b = fill(2);
        let mut naive = vec![0.0; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                let mut acc = 0.0;
                for k in 0..dim {
                    acc += a[i * dim + k] * b[k * dim + j];
                }
                naive[i * dim + j] = acc;
            }
        }
        for threads in [1, 4] {
            let fast = reveal_par::with_threads(threads, || mat_mul(&a, &b, dim));
            for (got, want) in fast.iter().zip(&naive) {
                assert!((got - want).abs() < 1e-12);
            }
        }
        // A·Bᵀ equals A·(Bᵀ) computed naively.
        let mut bt = vec![0.0; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                bt[r * dim + c] = b[c * dim + r];
            }
        }
        let via_transpose = mat_mul_transpose_right(&a, &b, dim);
        let reference = mat_mul(&a, &bt, dim);
        for (got, want) in via_transpose.iter().zip(&reference) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    proptest! {
        #[test]
        fn prop_solve_inverts(
            diag in proptest::collection::vec(0.5f64..10.0, 1..6),
            b_seed in proptest::collection::vec(-10.0f64..10.0, 6),
        ) {
            // Build SPD matrix A = D + 0.1 * ones-outer (still SPD for our diag range).
            let dim = diag.len();
            let mut a = vec![0.1; dim * dim];
            for i in 0..dim {
                a[i * dim + i] += diag[i];
            }
            let ch = Cholesky::new(&a, dim).unwrap();
            let b = &b_seed[..dim];
            let x = ch.solve(b).unwrap();
            let back = mat_vec(&a, dim, &x);
            for (got, want) in back.iter().zip(b) {
                prop_assert!((got - want).abs() < 1e-8, "{got} vs {want}");
            }
        }

        #[test]
        fn prop_mahalanobis_nonnegative(
            diag in proptest::collection::vec(0.5f64..10.0, 2..6),
            x in proptest::collection::vec(-10.0f64..10.0, 6),
        ) {
            let dim = diag.len();
            let mut a = vec![0.0; dim * dim];
            for i in 0..dim {
                a[i * dim + i] = diag[i];
            }
            let ch = Cholesky::new(&a, dim).unwrap();
            let mean = vec![0.0; dim];
            let d2 = ch.mahalanobis_squared(&x[..dim], &mean).unwrap();
            prop_assert!(d2 >= 0.0);
        }
    }
}
