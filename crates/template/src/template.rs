//! Multivariate Gaussian templates in the style of Chari et al. \[28\].
//!
//! A template per candidate secret (here: per sampled coefficient value)
//! captures the mean and covariance of the POI-projected traces. The attack
//! evaluates the log-likelihood of a single observed trace under every
//! template and picks the maximizer; soft probabilities (needed by the
//! LWE-with-hints export, Table II) come from a softmax over the
//! log-likelihoods.

use crate::matrix::{regularize, Cholesky, MatrixError};
use crate::scores::ScoreTable;
use reveal_trace::stats::Covariance;
use reveal_trace::TraceSet;
use std::collections::BTreeMap;
use std::fmt;

/// Cost model for classifying one observation (units: `classes · dim²`
/// multiply-adds across the Mahalanobis solves).
static CLASSIFY_COST: reveal_par::CostModel = reveal_par::CostModel::new("template.classify", 1.0);

/// Errors from template construction or classification.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateError {
    /// A class had fewer traces than dimensions (covariance singular).
    NotEnoughTraces {
        label: i64,
        count: usize,
        dim: usize,
    },
    /// The profiling set was empty or unlabelled.
    NoClasses,
    /// Factorization failed even after regularization.
    Matrix(MatrixError),
    /// An observation had the wrong dimension.
    DimensionMismatch { expected: usize, got: usize },
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::NotEnoughTraces { label, count, dim } => write!(
                f,
                "class {label} has {count} traces for {dim} dimensions — covariance would be singular"
            ),
            TemplateError::NoClasses => write!(f, "profiling set has no labelled traces"),
            TemplateError::Matrix(e) => write!(f, "covariance factorization failed: {e}"),
            TemplateError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected}-dimensional observation, got {got}")
            }
        }
    }
}

impl std::error::Error for TemplateError {}

impl From<MatrixError> for TemplateError {
    fn from(e: MatrixError) -> Self {
        TemplateError::Matrix(e)
    }
}

/// Covariance strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CovarianceMode {
    /// One covariance per class (classic template attack).
    PerClass,
    /// A single covariance pooled over all classes (more robust with few
    /// traces per class; standard practice since Choudary & Kuhn).
    Pooled,
}

/// One class template: mean vector plus (shared or own) covariance factor.
#[derive(Debug, Clone)]
struct ClassTemplate {
    mean: Vec<f64>,
    /// Index into the factor table (pooled mode shares index 0).
    factor: usize,
}

/// A trained set of Gaussian templates over POI vectors.
///
/// # Examples
///
/// ```
/// use reveal_template::{TemplateSet, CovarianceMode};
/// // Two 1-D classes at -1 and +1 with small jitter.
/// let obs: Vec<(i64, Vec<f64>)> = (0..20)
///     .flat_map(|i| {
///         let j = (i as f64) * 0.01;
///         [(-1i64, vec![-1.0 + j]), (1i64, vec![1.0 - j])]
///     })
///     .collect();
/// let set = TemplateSet::fit(&obs, CovarianceMode::Pooled, 1e-9)?;
/// assert_eq!(set.classify(&[0.9])?.best_label(), 1);
/// assert_eq!(set.classify(&[-0.8])?.best_label(), -1);
/// # Ok::<(), reveal_template::TemplateError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TemplateSet {
    dim: usize,
    classes: BTreeMap<i64, ClassTemplate>,
    factors: Vec<(Cholesky, f64)>, // (factor, log_det)
    mode: CovarianceMode,
}

impl TemplateSet {
    /// Fits templates from `(label, poi_vector)` observations.
    ///
    /// `ridge` is added to covariance diagonals before factorization; pass a
    /// small value like `1e-6` for numerical robustness.
    ///
    /// # Errors
    ///
    /// Fails when there are no observations, a class is too small in
    /// per-class mode, or the covariance cannot be factorized.
    pub fn fit(
        observations: &[(i64, Vec<f64>)],
        mode: CovarianceMode,
        ridge: f64,
    ) -> Result<Self, TemplateError> {
        let dim = observations
            .first()
            .map(|(_, v)| v.len())
            .ok_or(TemplateError::NoClasses)?;
        let mut by_label: BTreeMap<i64, Vec<&Vec<f64>>> = BTreeMap::new();
        for (label, v) in observations {
            if v.len() != dim {
                return Err(TemplateError::DimensionMismatch {
                    expected: dim,
                    got: v.len(),
                });
            }
            by_label.entry(*label).or_default().push(v);
        }
        let mut classes = BTreeMap::new();
        let mut factors = Vec::new();
        match mode {
            CovarianceMode::Pooled => {
                let mut pooled = Covariance::new(dim);
                let mut means: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
                for (&label, vecs) in &by_label {
                    let mut acc = Covariance::new(dim);
                    for v in vecs {
                        acc.push(v);
                    }
                    means.insert(label, acc.mean().to_vec());
                }
                // Pool the *centered* observations across classes.
                for (&label, vecs) in &by_label {
                    let mean = &means[&label];
                    for v in vecs {
                        let centered: Vec<f64> = v.iter().zip(mean).map(|(a, b)| a - b).collect();
                        pooled.push(&centered);
                    }
                }
                let mut cov = pooled.sample_covariance();
                regularize(&mut cov, dim, ridge);
                let ch = Cholesky::new(&cov, dim)?;
                let log_det = ch.log_determinant();
                factors.push((ch, log_det));
                for (label, mean) in means {
                    classes.insert(label, ClassTemplate { mean, factor: 0 });
                }
            }
            CovarianceMode::PerClass => {
                for (&label, vecs) in &by_label {
                    if vecs.len() <= dim {
                        return Err(TemplateError::NotEnoughTraces {
                            label,
                            count: vecs.len(),
                            dim,
                        });
                    }
                    let mut acc = Covariance::new(dim);
                    for v in vecs {
                        acc.push(v);
                    }
                    let mut cov = acc.sample_covariance();
                    regularize(&mut cov, dim, ridge);
                    let ch = Cholesky::new(&cov, dim)?;
                    let log_det = ch.log_determinant();
                    classes.insert(
                        label,
                        ClassTemplate {
                            mean: acc.mean().to_vec(),
                            factor: factors.len(),
                        },
                    );
                    factors.push((ch, log_det));
                }
            }
        }
        if classes.is_empty() {
            return Err(TemplateError::NoClasses);
        }
        Ok(Self {
            dim,
            classes,
            factors,
            mode,
        })
    }

    /// Convenience: fits from a labelled [`TraceSet`] projected onto POIs.
    ///
    /// # Errors
    ///
    /// Same as [`TemplateSet::fit`].
    pub fn fit_trace_set(
        set: &TraceSet,
        pois: &[usize],
        mode: CovarianceMode,
        ridge: f64,
    ) -> Result<Self, TemplateError> {
        let observations: Vec<(i64, Vec<f64>)> = set
            .iter()
            .filter_map(|t| t.label().map(|l| (l, t.project(pois))))
            .collect();
        Self::fit(&observations, mode, ridge)
    }

    /// POI-vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The covariance strategy used.
    pub fn mode(&self) -> CovarianceMode {
        self.mode
    }

    /// The class labels, ascending.
    pub fn labels(&self) -> Vec<i64> {
        self.classes.keys().copied().collect()
    }

    /// The template mean of a class.
    pub fn class_mean(&self, label: i64) -> Option<&[f64]> {
        self.classes.get(&label).map(|c| c.mean.as_slice())
    }

    /// Log-likelihood (up to the shared `-d/2 ln 2π` constant) of an
    /// observation under each class template.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch.
    pub fn classify(&self, observation: &[f64]) -> Result<ScoreTable, TemplateError> {
        if observation.len() != self.dim {
            return Err(TemplateError::DimensionMismatch {
                expected: self.dim,
                got: observation.len(),
            });
        }
        let mut scores = Vec::with_capacity(self.classes.len());
        for (&label, class) in &self.classes {
            let (factor, log_det) = &self.factors[class.factor];
            let d2 = factor.mahalanobis_squared(observation, &class.mean)?;
            scores.push((label, -0.5 * (d2 + log_det)));
        }
        Ok(ScoreTable::from_log_likelihoods(scores))
    }

    /// Classifies a batch of observations, parallel over observations via
    /// `reveal-par`; scores come back in input order, and the first failing
    /// observation (in input order) determines the error — exactly the
    /// serial loop's behavior.
    ///
    /// # Errors
    ///
    /// Fails on dimension mismatch of any observation.
    pub fn classify_batch<S: AsRef<[f64]> + Sync>(
        &self,
        observations: &[S],
    ) -> Result<Vec<ScoreTable>, TemplateError> {
        // One classification is a few Mahalanobis distances (dim² each); the
        // cost model keeps small batches serial and sizes claims on big ones.
        let units = (self.classes.len() * self.dim * self.dim).max(1) as u64;
        reveal_par::par_map_modeled(observations, &CLASSIFY_COST, units, |o| {
            self.classify(o.as_ref())
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveal_trace::Trace;

    fn gaussian_cloud(center: &[f64], count: usize, spread: f64, seed: u64) -> Vec<Vec<f64>> {
        // Deterministic pseudo-random jitter (hash-based, isotropic enough
        // for a full-rank covariance; no RNG needed for tests).
        (0..count as u64)
            .map(|i| {
                center
                    .iter()
                    .enumerate()
                    .map(|(d, &c)| {
                        let h = (i
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((d as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                            .wrapping_add(seed.wrapping_mul(0x94D0_49BB_1331_11EB)))
                        .rotate_left(31);
                        let unit = (h % 10_000) as f64 / 10_000.0 - 0.5;
                        c + 2.0 * spread * unit
                    })
                    .collect()
            })
            .collect()
    }

    fn three_class_data() -> Vec<(i64, Vec<f64>)> {
        let mut obs = Vec::new();
        for (label, center) in [(-1i64, [-2.0, 0.0]), (0, [0.0, 2.0]), (1, [2.0, 0.0])] {
            for v in gaussian_cloud(&center, 40, 0.3, label.unsigned_abs()) {
                obs.push((label, v));
            }
        }
        obs
    }

    #[test]
    fn pooled_and_per_class_classify_separable_data() {
        let obs = three_class_data();
        for mode in [CovarianceMode::Pooled, CovarianceMode::PerClass] {
            let set = TemplateSet::fit(&obs, mode, 1e-9).unwrap();
            assert_eq!(set.labels(), vec![-1, 0, 1]);
            assert_eq!(set.classify(&[-2.0, 0.1]).unwrap().best_label(), -1);
            assert_eq!(set.classify(&[0.1, 1.9]).unwrap().best_label(), 0);
            assert_eq!(set.classify(&[1.8, -0.1]).unwrap().best_label(), 1);
        }
    }

    #[test]
    fn probabilities_are_normalized_and_confident() {
        let obs = three_class_data();
        let set = TemplateSet::fit(&obs, CovarianceMode::Pooled, 1e-9).unwrap();
        let scores = set.classify(&[2.0, 0.0]).unwrap();
        let probs = scores.probabilities();
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let p1 = probs.iter().find(|(l, _)| *l == 1).unwrap().1;
        assert!(p1 > 0.95, "should be confident, got {p1}");
    }

    #[test]
    fn per_class_rejects_tiny_classes() {
        let obs = vec![
            (0i64, vec![0.0, 0.0]),
            (0, vec![0.1, 0.1]),
            (1, vec![1.0, 1.0]),
            (1, vec![1.1, 0.9]),
        ];
        assert!(matches!(
            TemplateSet::fit(&obs, CovarianceMode::PerClass, 1e-9),
            Err(TemplateError::NotEnoughTraces { .. })
        ));
        // Pooled mode copes.
        assert!(TemplateSet::fit(&obs, CovarianceMode::Pooled, 1e-6).is_ok());
    }

    #[test]
    fn empty_and_mismatched_inputs() {
        assert!(matches!(
            TemplateSet::fit(&[], CovarianceMode::Pooled, 0.0),
            Err(TemplateError::NoClasses)
        ));
        let obs = vec![(0i64, vec![1.0, 2.0]), (1, vec![1.0])];
        assert!(matches!(
            TemplateSet::fit(&obs, CovarianceMode::Pooled, 0.0),
            Err(TemplateError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
        let good = three_class_data();
        let set = TemplateSet::fit(&good, CovarianceMode::Pooled, 1e-9).unwrap();
        assert!(matches!(
            set.classify(&[1.0]),
            Err(TemplateError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn fit_from_trace_set_with_pois() {
        let mut ts = TraceSet::new();
        for i in 0..30 {
            let j = i as f64 * 0.01;
            // Leakage only at samples 2 and 5.
            ts.push(Trace::labelled(
                vec![1.0, 1.0, 3.0 + j, 1.0, 1.0, 0.0 - j, 1.0, 1.0],
                1,
            ));
            ts.push(Trace::labelled(
                vec![1.0, 1.0, 0.0 - j, 1.0, 1.0, 3.0 + j, 1.0, 1.0],
                -1,
            ));
        }
        let set = TemplateSet::fit_trace_set(&ts, &[2, 5], CovarianceMode::Pooled, 1e-9).unwrap();
        assert_eq!(set.dim(), 2);
        assert_eq!(set.classify(&[3.0, 0.0]).unwrap().best_label(), 1);
        assert_eq!(set.classify(&[0.0, 3.0]).unwrap().best_label(), -1);
    }

    #[test]
    fn class_means_recovered() {
        let obs = three_class_data();
        let set = TemplateSet::fit(&obs, CovarianceMode::Pooled, 1e-9).unwrap();
        let m = set.class_mean(1).unwrap();
        assert!((m[0] - 2.0).abs() < 0.2);
        assert!(m[1].abs() < 0.2);
        assert!(set.class_mean(99).is_none());
    }
}
