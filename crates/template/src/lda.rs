//! Fisher linear discriminant analysis: supervised dimensionality reduction
//! for template attacks — the standard answer to the "curse of
//! dimensionality" the paper cites (\[36\]): instead of picking individual POI
//! samples, project whole windows onto the few directions that maximize
//! between-class over within-class scatter.

use crate::matrix::{
    mat_mul, mat_mul_transpose_right, regularize, symmetric_eigen, Cholesky, MatrixError,
};
use reveal_par::simd;
use reveal_trace::TraceSet;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from LDA fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum LdaError {
    /// Fewer than two classes.
    NotEnoughClasses(usize),
    /// No observations at all.
    Empty,
    /// Requested more components than available (`min(classes−1, dim)`).
    TooManyComponents { requested: usize, available: usize },
    /// The within-class scatter could not be factorized.
    Matrix(MatrixError),
}

impl fmt::Display for LdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdaError::NotEnoughClasses(n) => write!(f, "LDA needs >= 2 classes, got {n}"),
            LdaError::Empty => write!(f, "LDA fit on empty data"),
            LdaError::TooManyComponents {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} components, only {available} available"
                )
            }
            LdaError::Matrix(e) => write!(f, "scatter factorization failed: {e}"),
        }
    }
}

impl std::error::Error for LdaError {}

impl From<MatrixError> for LdaError {
    fn from(e: MatrixError) -> Self {
        LdaError::Matrix(e)
    }
}

/// Observations per parallel partial-scatter chunk. Fixed (never derived
/// from the thread count) so the merge order — hence every bit of the fitted
/// projection — is identical for any `REVEAL_THREADS`.
const SCATTER_CHUNK: usize = 64;

/// Cost model for one column of the `L⁻¹` forward substitution (units:
/// `dim²` multiply-adds; a column is ~half that, folded into the prior).
static LINV_COLUMN_COST: reveal_par::CostModel = reveal_par::CostModel::new("lda.linv.column", 0.5);

/// Cost model for projecting one observation (units: `components · dim`
/// multiply-adds).
static PROJECT_COST: reveal_par::CostModel = reveal_par::CostModel::new("lda.project", 1.0);

/// A fitted LDA projection (rows of `matrix` are the discriminant
/// directions in input space).
#[derive(Debug, Clone, PartialEq)]
pub struct LdaProjection {
    dim: usize,
    components: Vec<Vec<f64>>,
}

impl LdaProjection {
    /// Fits LDA from `(label, observation)` pairs, keeping `components`
    /// discriminant directions.
    ///
    /// # Errors
    ///
    /// Fails with fewer than two classes, more components than
    /// `min(classes − 1, dim)`, or singular scatter (use `ridge`).
    pub fn fit(
        observations: &[(i64, Vec<f64>)],
        components: usize,
        ridge: f64,
    ) -> Result<Self, LdaError> {
        let dim = observations
            .first()
            .map(|(_, v)| v.len())
            .ok_or(LdaError::Empty)?;
        let mut by_class: BTreeMap<i64, Vec<&Vec<f64>>> = BTreeMap::new();
        for (label, v) in observations {
            by_class.entry(*label).or_default().push(v);
        }
        let class_count = by_class.len();
        if class_count < 2 {
            return Err(LdaError::NotEnoughClasses(class_count));
        }
        let available = (class_count - 1).min(dim);
        if components == 0 || components > available {
            return Err(LdaError::TooManyComponents {
                requested: components,
                available,
            });
        }
        let total = observations.len() as f64;
        // Grand mean and class means.
        let mut grand = vec![0.0; dim];
        for (_, v) in observations {
            for (g, x) in grand.iter_mut().zip(v) {
                *g += x;
            }
        }
        for g in &mut grand {
            *g /= total;
        }
        let mut class_means: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
        for (&label, rows) in &by_class {
            let mut mean = vec![0.0; dim];
            for v in rows {
                for (m, x) in mean.iter_mut().zip(v.iter()) {
                    *m += x;
                }
            }
            for m in &mut mean {
                *m /= rows.len() as f64;
            }
            class_means.insert(label, mean);
        }
        // Within-class scatter S_w: each observation's outer product is
        // independent, so chunks of observations accumulate partial scatters
        // in parallel and merge in chunk order. Chunk boundaries are fixed
        // (not thread-dependent), so the sum — and every result downstream —
        // is bit-identical for any `REVEAL_THREADS`.
        let partial_scatters =
            reveal_par::par_map_chunks(observations, SCATTER_CHUNK, |_, chunk| {
                let mut local = vec![0.0; dim * dim];
                let mut diff = vec![0.0; dim];
                for (label, v) in chunk {
                    let mean = &class_means[label];
                    // The centered observation is shared by every row of the
                    // outer product: computing it once removes dim² redundant
                    // subtractions (the old inner loop re-centered per row)
                    // and turns each row update into an axpy — bit-identical,
                    // same per-slot values and order.
                    for ((d, x), m) in diff.iter_mut().zip(v.iter()).zip(mean) {
                        *d = x - m;
                    }
                    for r in 0..dim {
                        simd::axpy(diff[r], &diff, &mut local[r * dim..(r + 1) * dim]);
                    }
                }
                local
            });
        let mut sw = vec![0.0; dim * dim];
        for partial in partial_scatters {
            for (acc, x) in sw.iter_mut().zip(&partial) {
                *acc += x;
            }
        }
        let mut sb = vec![0.0; dim * dim];
        for (&label, rows) in &by_class {
            let mean = &class_means[&label];
            let w = rows.len() as f64;
            for r in 0..dim {
                let dr = mean[r] - grand[r];
                for c in 0..dim {
                    sb[r * dim + c] += w * dr * (mean[c] - grand[c]);
                }
            }
        }
        regularize(&mut sw, dim, ridge.max(1e-12));
        // Solve the generalized eigenproblem S_b w = λ S_w w by whitening:
        // S_w = L Lᵀ, then eigen-decompose M = L⁻¹ S_b L⁻ᵀ (symmetric) and
        // back-transform the eigenvectors with w = L⁻ᵀ u.
        let _ = Cholesky::new(&sw, dim)?; // surfaces non-SPD scatter early
        let l = lower_factor(&sw, dim);
        // Invert L once (column-wise forward substitution, parallel over
        // columns), then form M with the two cache-friendly products: B =
        // L⁻¹·S_b walks rows contiguously in i-k-j order, and B·L⁻ᵀ scans
        // two contiguous rows per inner product instead of striding columns.
        // One column is a ~dim²/2 forward substitution; the cost model keeps
        // small systems serial rather than paying per-call thread spawns.
        let units = (dim * dim) as u64;
        let linv_columns = reveal_par::par_map_index_modeled(dim, &LINV_COLUMN_COST, units, |j| {
            let mut unit = vec![0.0; dim];
            unit[j] = 1.0;
            forward_substitute(&l, dim, &unit)
        });
        let mut linv = vec![0.0; dim * dim];
        for (j, column) in linv_columns.iter().enumerate() {
            for r in j..dim {
                linv[r * dim + j] = column[r];
            }
        }
        let b = mat_mul(&linv, &sb, dim);
        let m = mat_mul_transpose_right(&b, &linv, dim);
        let mut m = m;
        // Symmetrize against numerical drift, then eigen-decompose.
        for r in 0..dim {
            for c in r + 1..dim {
                let avg = 0.5 * (m[r * dim + c] + m[c * dim + r]);
                m[r * dim + c] = avg;
                m[c * dim + r] = avg;
            }
        }
        let (_values, vectors) = symmetric_eigen(&m, dim);
        // Back-transform: w = L⁻ᵀ u (backward substitution).
        let components_vec: Vec<Vec<f64>> = vectors
            .into_iter()
            .take(components)
            .map(|u| backward_substitute(&l, dim, &u))
            .collect();
        Ok(Self {
            dim,
            components: components_vec,
        })
    }

    /// Fits from a labelled [`TraceSet`].
    ///
    /// # Errors
    ///
    /// Same as [`LdaProjection::fit`].
    pub fn fit_trace_set(set: &TraceSet, components: usize, ridge: f64) -> Result<Self, LdaError> {
        let observations: Vec<(i64, Vec<f64>)> = set
            .iter()
            .filter_map(|t| t.label().map(|l| (l, t.samples().to_vec())))
            .collect();
        Self::fit(&observations, components, ridge)
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.dim
    }

    /// Number of discriminant components.
    pub fn components(&self) -> usize {
        self.components.len()
    }

    /// Projects a batch of observations, parallel over observations; output
    /// order matches input order.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn project_batch<S: AsRef<[f64]> + Sync>(&self, observations: &[S]) -> Vec<Vec<f64>> {
        // A projection is a handful of dot products; the cost model demands
        // a real batch per worker before fanning out.
        let units = (self.components.len() * self.dim) as u64;
        reveal_par::par_map_modeled(observations, &PROJECT_COST, units, |o| {
            self.project(o.as_ref())
        })
    }

    /// Projects an observation onto the discriminant directions.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn project(&self, observation: &[f64]) -> Vec<f64> {
        assert_eq!(observation.len(), self.dim, "dimension mismatch");
        self.components
            .iter()
            .map(|w| simd::dot(w, observation))
            .collect()
    }
}

/// Solves `L y = b` by forward substitution (row-major lower factor).
fn forward_substitute(l: &[f64], d: usize, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; d];
    for i in 0..d {
        let sum = b[i] - simd::dot(&l[i * d..i * d + i], &y[..i]);
        y[i] = sum / l[i * d + i];
    }
    y
}

/// Solves `Lᵀ y = b` by backward substitution.
fn backward_substitute(l: &[f64], d: usize, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; d];
    for i in (0..d).rev() {
        let mut sum = b[i];
        for k in i + 1..d {
            sum -= l[k * d + i] * y[k];
        }
        y[i] = sum / l[i * d + i];
    }
    y
}

/// Plain Cholesky lower factor of an SPD matrix (row-major dense output).
fn lower_factor(a: &[f64], d: usize) -> Vec<f64> {
    let mut l = vec![0.0; d * d];
    for i in 0..d {
        for j in 0..=i {
            let sum = a[i * d + j] - simd::dot(&l[i * d..i * d + j], &l[j * d..j * d + j]);
            if i == j {
                l[i * d + j] = sum.max(1e-30).sqrt();
            } else {
                l[i * d + j] = sum / l[j * d + j];
            }
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(label: i64, center: &[f64], count: usize, spread: f64) -> Vec<(i64, Vec<f64>)> {
        (0..count as u64)
            .map(|i| {
                let v = center
                    .iter()
                    .enumerate()
                    .map(|(d, &c)| {
                        let h = i
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((d as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                            .rotate_left(17);
                        c + spread * ((h % 1000) as f64 / 1000.0 - 0.5)
                    })
                    .collect();
                (label, v)
            })
            .collect()
    }

    #[test]
    fn separates_two_classes_along_their_axis() {
        // Classes differ along dimension 0 only; LDA's single component must
        // align with e0 (up to sign) and separate projections cleanly.
        let mut data = clustered(0, &[0.0, 5.0, -1.0], 60, 0.5);
        data.extend(clustered(1, &[3.0, 5.0, -1.0], 60, 0.5));
        let lda = LdaProjection::fit(&data, 1, 1e-6).unwrap();
        assert_eq!(lda.components(), 1);
        let p0: Vec<f64> = data
            .iter()
            .filter(|(l, _)| *l == 0)
            .map(|(_, v)| lda.project(v)[0])
            .collect();
        let p1: Vec<f64> = data
            .iter()
            .filter(|(l, _)| *l == 1)
            .map(|(_, v)| lda.project(v)[0])
            .collect();
        let m0 = p0.iter().sum::<f64>() / p0.len() as f64;
        let m1 = p1.iter().sum::<f64>() / p1.len() as f64;
        let sd = |p: &[f64], m: f64| {
            (p.iter().map(|x| (x - m).powi(2)).sum::<f64>() / p.len() as f64).sqrt()
        };
        let separation = (m1 - m0).abs() / (sd(&p0, m0) + sd(&p1, m1)).max(1e-9);
        assert!(separation > 3.0, "separation {separation}");
    }

    #[test]
    fn three_classes_two_components() {
        let mut data = clustered(0, &[0.0, 0.0, 1.0, 1.0], 50, 0.4);
        data.extend(clustered(1, &[4.0, 0.0, 1.0, 1.0], 50, 0.4));
        data.extend(clustered(2, &[0.0, 4.0, 1.0, 1.0], 50, 0.4));
        let lda = LdaProjection::fit(&data, 2, 1e-6).unwrap();
        // Nearest-class-mean classification in LDA space is near perfect.
        let mut means: std::collections::BTreeMap<i64, Vec<f64>> = Default::default();
        let mut counts: std::collections::BTreeMap<i64, usize> = Default::default();
        for (l, v) in &data {
            let p = lda.project(v);
            let e = means.entry(*l).or_insert_with(|| vec![0.0; 2]);
            for (a, b) in e.iter_mut().zip(&p) {
                *a += b;
            }
            *counts.entry(*l).or_insert(0) += 1;
        }
        for (l, m) in means.iter_mut() {
            for x in m.iter_mut() {
                *x /= counts[l] as f64;
            }
        }
        let mut hits = 0;
        for (l, v) in &data {
            let p = lda.project(v);
            let best = means
                .iter()
                .min_by(|a, b| {
                    let da: f64 = a.1.iter().zip(&p).map(|(x, y)| (x - y).powi(2)).sum();
                    let db: f64 = b.1.iter().zip(&p).map(|(x, y)| (x - y).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .map(|(l, _)| *l)
                .unwrap();
            hits += (best == *l) as usize;
        }
        assert!(hits as f64 / data.len() as f64 > 0.97);
    }

    #[test]
    fn fit_is_bit_identical_across_thread_counts() {
        let mut data = clustered(0, &[0.0, 3.0, -1.0, 0.5], 90, 0.6);
        data.extend(clustered(1, &[2.5, 3.0, -1.0, 0.5], 90, 0.6));
        data.extend(clustered(2, &[0.0, 0.0, 2.0, 0.5], 90, 0.6));
        let reference = reveal_par::with_threads(1, || LdaProjection::fit(&data, 2, 1e-6).unwrap());
        for threads in [2, 4, 8] {
            let fitted =
                reveal_par::with_threads(threads, || LdaProjection::fit(&data, 2, 1e-6).unwrap());
            assert_eq!(fitted, reference, "threads {threads}");
        }
        // Batch projection equals the serial loop, in order.
        let observations: Vec<Vec<f64>> = data.iter().map(|(_, v)| v.clone()).collect();
        let serial: Vec<Vec<f64>> = observations.iter().map(|o| reference.project(o)).collect();
        let batch = reveal_par::with_threads(4, || reference.project_batch(&observations));
        assert_eq!(batch, serial);
    }

    #[test]
    fn error_paths() {
        assert!(matches!(
            LdaProjection::fit(&[], 1, 1e-6),
            Err(LdaError::Empty)
        ));
        let one_class = clustered(0, &[0.0, 0.0], 10, 0.1);
        assert!(matches!(
            LdaProjection::fit(&one_class, 1, 1e-6),
            Err(LdaError::NotEnoughClasses(1))
        ));
        let mut two = clustered(0, &[0.0, 0.0], 10, 0.1);
        two.extend(clustered(1, &[1.0, 0.0], 10, 0.1));
        assert!(matches!(
            LdaProjection::fit(&two, 2, 1e-6),
            Err(LdaError::TooManyComponents {
                requested: 2,
                available: 1
            })
        ));
    }

    #[test]
    fn projection_is_linear() {
        let mut data = clustered(0, &[0.0, 1.0], 30, 0.3);
        data.extend(clustered(1, &[2.0, -1.0], 30, 0.3));
        let lda = LdaProjection::fit(&data, 1, 1e-6).unwrap();
        let a = [1.0, 2.0];
        let b = [-0.5, 0.7];
        let sum = [a[0] + b[0], a[1] + b[1]];
        let pa = lda.project(&a)[0];
        let pb = lda.project(&b)[0];
        let ps = lda.project(&sum)[0];
        assert!((ps - (pa + pb)).abs() < 1e-9);
    }
}
