//! Per-class score tables: log-likelihoods, softmax probabilities, fusion.

use reveal_par::simd;
use std::collections::BTreeMap;

/// Cost model for fusing one pair of score tables (units: labels merged). A
/// fuse merges two ~30-label score lists — microscopic work, so only very
/// large batches leave the serial path.
static FUSE_COST: reveal_par::CostModel = reveal_par::CostModel::new("scores.fuse", 20.0);

/// Log-likelihood scores per candidate label, with softmax probabilities.
///
/// Produced by [`crate::TemplateSet::classify`]; fused across the value and
/// negation templates by [`ScoreTable::fuse`], which is how the attack uses
/// the third vulnerability to prune false positives of the second.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreTable {
    /// `(label, log_likelihood)` sorted by label.
    scores: Vec<(i64, f64)>,
}

impl ScoreTable {
    /// Builds from raw log-likelihoods (need not be normalized).
    pub fn from_log_likelihoods(mut scores: Vec<(i64, f64)>) -> Self {
        scores.sort_by_key(|(l, _)| *l);
        Self { scores }
    }

    /// The `(label, log_likelihood)` pairs, ascending by label.
    pub fn log_likelihoods(&self) -> &[(i64, f64)] {
        &self.scores
    }

    /// The label with maximal likelihood.
    ///
    /// # Panics
    ///
    /// Panics on an empty table (cannot be produced by `classify`).
    pub fn best_label(&self) -> i64 {
        self.scores
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty score table")
            .0
    }

    /// Softmax probabilities `(label, p)`, ascending by label.
    pub fn probabilities(&self) -> Vec<(i64, f64)> {
        let max = self
            .scores
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = self.scores.iter().map(|(_, s)| (s - max).exp()).collect();
        let total = simd::sum(&exps);
        self.scores
            .iter()
            .zip(exps)
            .map(|((l, _), e)| (*l, e / total))
            .collect()
    }

    /// The probability assigned to a specific label (0 if absent).
    pub fn probability_of(&self, label: i64) -> f64 {
        self.probabilities()
            .into_iter()
            .find(|(l, _)| *l == label)
            .map(|(_, p)| p)
            .unwrap_or(0.0)
    }

    /// Labels ranked by descending probability.
    pub fn ranking(&self) -> Vec<i64> {
        let mut probs = self.probabilities();
        probs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        probs.into_iter().map(|(l, _)| l).collect()
    }

    /// Fuses two independent observations of the same secret by summing
    /// log-likelihoods on the label intersection.
    ///
    /// This implements the paper's combination of the second and third
    /// vulnerabilities: the negation-region template only exists for negative
    /// candidates, so fusing shrinks the candidate set *and* sharpens the
    /// scores.
    pub fn fuse(&self, other: &ScoreTable) -> ScoreTable {
        let other_map: BTreeMap<i64, f64> = other.scores.iter().copied().collect();
        let fused: Vec<(i64, f64)> = self
            .scores
            .iter()
            .filter_map(|(l, s)| other_map.get(l).map(|o| (*l, s + o)))
            .collect();
        ScoreTable { scores: fused }
    }

    /// Fuses corresponding tables of two equal-length batches (the batched
    /// form of [`ScoreTable::fuse`], parallel over pairs via `reveal-par`) —
    /// used when an attack scores every window's negation and store regions
    /// in one sweep.
    ///
    /// # Panics
    ///
    /// Panics if the batches differ in length.
    pub fn fuse_batch(first: &[ScoreTable], second: &[ScoreTable]) -> Vec<ScoreTable> {
        assert_eq!(
            first.len(),
            second.len(),
            "fused batches must pair up one-to-one"
        );
        let units = first.first().map_or(1, |t| t.len().max(1) as u64);
        reveal_par::par_map_index_modeled(first.len(), &FUSE_COST, units, |i| {
            first[i].fuse(&second[i])
        })
    }

    /// Restricts to a subset of labels (e.g. after the sign classifier has
    /// ruled out half the range).
    pub fn restrict<F: Fn(i64) -> bool>(&self, keep: F) -> ScoreTable {
        ScoreTable {
            scores: self
                .scores
                .iter()
                .filter(|(l, _)| keep(*l))
                .copied()
                .collect(),
        }
    }

    /// Whether the table has any candidates.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Number of candidate labels.
    pub fn len(&self) -> usize {
        self.scores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(pairs: &[(i64, f64)]) -> ScoreTable {
        ScoreTable::from_log_likelihoods(pairs.to_vec())
    }

    #[test]
    fn best_label_and_ranking() {
        let t = table(&[(0, -5.0), (1, -1.0), (-1, -3.0)]);
        assert_eq!(t.best_label(), 1);
        assert_eq!(t.ranking(), vec![1, -1, 0]);
    }

    #[test]
    fn probabilities_sum_to_one_and_order() {
        let t = table(&[(-2, -10.0), (3, -1.0), (7, -2.0)]);
        let probs = t.probabilities();
        let sum: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(t.probability_of(3) > t.probability_of(7));
        assert!(t.probability_of(7) > t.probability_of(-2));
        assert_eq!(t.probability_of(99), 0.0);
    }

    #[test]
    fn extreme_scores_do_not_overflow() {
        let t = table(&[(0, -1e6), (1, -3.0)]);
        let probs = t.probabilities();
        assert!((t.probability_of(1) - 1.0).abs() < 1e-12);
        assert!(probs.iter().all(|(_, p)| p.is_finite()));
    }

    #[test]
    fn fusion_sharpens_agreement() {
        // Observation A slightly prefers 2; observation B slightly prefers 2.
        let a = table(&[(1, -2.0), (2, -1.5), (3, -2.0)]);
        let b = table(&[(1, -2.2), (2, -1.4), (3, -1.9)]);
        let fused = a.fuse(&b);
        assert_eq!(fused.best_label(), 2);
        assert!(fused.probability_of(2) > a.probability_of(2));
    }

    #[test]
    fn fusion_resolves_ties() {
        // A cannot distinguish 2 and 3 (same HW); B (negation) can.
        let a = table(&[(2, -1.0), (3, -1.0)]);
        let b = table(&[(2, -0.5), (3, -4.0)]);
        assert_eq!(a.fuse(&b).best_label(), 2);
    }

    #[test]
    fn fusion_intersects_labels() {
        let a = table(&[(1, -1.0), (2, -2.0), (3, -3.0)]);
        let b = table(&[(2, -1.0), (3, -1.0)]);
        let fused = a.fuse(&b);
        assert_eq!(fused.len(), 2);
        assert_eq!(fused.probability_of(1), 0.0);
    }

    #[test]
    fn fuse_batch_matches_pairwise_fusion() {
        let firsts: Vec<ScoreTable> = (0..20)
            .map(|i| table(&[(1, -1.0 - i as f64 * 0.1), (2, -2.0), (3, -0.5)]))
            .collect();
        let seconds: Vec<ScoreTable> = (0..20)
            .map(|i| table(&[(1, -0.3), (2, -1.0 + i as f64 * 0.05), (3, -2.0)]))
            .collect();
        let serial: Vec<ScoreTable> = firsts
            .iter()
            .zip(&seconds)
            .map(|(a, b)| a.fuse(b))
            .collect();
        for threads in [1, 4] {
            let batch =
                reveal_par::with_threads(threads, || ScoreTable::fuse_batch(&firsts, &seconds));
            assert_eq!(batch, serial, "threads {threads}");
        }
    }

    #[test]
    fn restriction_filters_labels() {
        let t = table(&[(-2, -1.0), (-1, -2.0), (0, -3.0), (1, -0.5)]);
        let negatives = t.restrict(|l| l < 0);
        assert_eq!(negatives.len(), 2);
        assert_eq!(negatives.best_label(), -2);
    }
}
