//! A learned branch classifier: deterministic, seeded multinomial logistic
//! regression trained with mini-batch SGD.
//!
//! This is the second classification *rail* of the attack (following the
//! GALACTICS line of ML side-channel work): where the pooled-Gaussian
//! [`TemplateSet`](crate::TemplateSet) models each class with a fitted
//! covariance — and degrades badly when the attack capture is noisier than
//! the profiling captures — the learned rail is a discriminative softmax
//! model trained on *noise-augmented* copies of the same profiling
//! observations, then **temperature-calibrated** on a held-out split so its
//! probabilities stay honest in exactly the degraded regimes it was
//! augmented for.
//!
//! ## Determinism contract
//!
//! Training is bit-identical at any `REVEAL_THREADS`:
//!
//! - every random choice (holdout split, augmentation noise, epoch
//!   shuffles) comes from [`StdRng`]s seeded via
//!   [`reveal_par::derive_seed`] from the single configured seed;
//! - the per-example forward/backward passes fan out through
//!   [`reveal_par::par_map_modeled`], which returns results in input order
//!   whatever the thread count, and the gradient fold over a mini-batch is
//!   a serial in-order [`simd::axpy`] accumulation;
//! - all inner products and rank-1 updates go through the lane-structured
//!   [`simd::dot`] / [`simd::axpy`] kernels, whose reduction order is part
//!   of their definition.
//!
//! Two fits with the same observations and config therefore produce
//! bit-identical weights, temperature and scores — the property the robust
//! driver's zero-fault bit-identity test leans on.

use crate::ScoreTable;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use reveal_par::simd;
use std::fmt;

/// Cost model for one SGD example's forward/backward pass (units:
/// `classes × (dim + 1)` multiply-accumulates). Mini-batches are tiny, so
/// this keeps them serial unless the feature space is unusually large.
static SGD_EXAMPLE_COST: reveal_par::CostModel =
    reveal_par::CostModel::new("learned.sgd.example", 12.0);

/// Typed failures of the learned rail. Training never panics: bad inputs,
/// divergence and degenerate splits all surface here so the caller can fall
/// back to the template rail.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnedError {
    /// Fewer than two classes, or no observations at all.
    NotEnoughData {
        /// Observations supplied.
        observations: usize,
        /// Distinct labels among them.
        classes: usize,
    },
    /// An observation's feature vector has the wrong length.
    DimensionMismatch {
        /// Expected feature count.
        expected: usize,
        /// Observed feature count.
        got: usize,
    },
    /// A feature, label weight or derived quantity is NaN/∞.
    NonFinite {
        /// Which quantity was non-finite.
        what: &'static str,
    },
    /// The SGD loss went non-finite (learning rate too hot, degenerate
    /// scaling); the partially trained model is discarded.
    Diverged {
        /// Epoch at which the loss exploded.
        epoch: usize,
    },
    /// A configuration knob is out of its domain.
    BadConfig {
        /// Which knob.
        what: &'static str,
    },
}

impl fmt::Display for LearnedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnedError::NotEnoughData {
                observations,
                classes,
            } => write!(
                f,
                "learned classifier needs >=2 classes: got {classes} among {observations} observations"
            ),
            LearnedError::DimensionMismatch { expected, got } => {
                write!(f, "feature vector has {got} entries, expected {expected}")
            }
            LearnedError::NonFinite { what } => write!(f, "non-finite {what}"),
            LearnedError::Diverged { epoch } => {
                write!(f, "SGD loss went non-finite at epoch {epoch}")
            }
            LearnedError::BadConfig { what } => write!(f, "bad learned-classifier config: {what}"),
        }
    }
}

impl std::error::Error for LearnedError {}

/// Training knobs for [`LearnedClassifier::fit`]. The defaults train the
/// attack's POI-projected windows (10–20 features, 3–29 classes) in well
/// under a second at profiling scale.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedConfig {
    /// Passes over the (augmented) training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD step size (on standardized features).
    pub learning_rate: f64,
    /// L2 weight decay (biases exempt).
    pub l2: f64,
    /// Fraction of observations held out for temperature calibration
    /// (`0.0` disables calibration; the temperature stays 1).
    pub holdout_fraction: f64,
    /// Per-observation noise-augmentation ladder, in *raw feature units*:
    /// each σ adds one extra copy of every observation with `N(0, σ²)`
    /// noise on every feature. This is what buys the rail its degraded-
    /// capture robustness — train it at the noise levels you expect to
    /// arbitrate at.
    pub augment_sigmas: Vec<f64>,
    /// Master seed for the split, the augmentation noise and the epoch
    /// shuffles.
    pub seed: u64,
}

impl Default for LearnedConfig {
    fn default() -> Self {
        Self {
            epochs: 32,
            batch_size: 32,
            learning_rate: 0.3,
            l2: 1e-4,
            holdout_fraction: 0.2,
            augment_sigmas: Vec::new(),
            seed: 0x1EA4_11ED,
        }
    }
}

impl LearnedConfig {
    /// Replaces the seed (used to derive independent per-rail streams).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<(), LearnedError> {
        let bad = |what| Err(LearnedError::BadConfig { what });
        if self.epochs == 0 {
            return bad("epochs must be positive");
        }
        if self.batch_size == 0 {
            return bad("batch_size must be positive");
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return bad("learning_rate must be finite and positive");
        }
        if !(self.l2.is_finite() && self.l2 >= 0.0) {
            return bad("l2 must be finite and non-negative");
        }
        if !(0.0..1.0).contains(&self.holdout_fraction) {
            return bad("holdout_fraction must be in [0, 1)");
        }
        if self
            .augment_sigmas
            .iter()
            .any(|s| !(s.is_finite() && *s >= 0.0))
        {
            return bad("augment_sigmas must be finite and non-negative");
        }
        Ok(())
    }
}

/// A trained multinomial logistic-regression classifier with per-feature
/// standardization and a calibrated softmax temperature.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedClassifier {
    /// Class labels, ascending.
    labels: Vec<i64>,
    /// Feature dimension (before the implicit bias feature).
    dim: usize,
    /// Per-feature training mean.
    mean: Vec<f64>,
    /// Per-feature inverse standard deviation.
    inv_std: Vec<f64>,
    /// Row-major `labels.len() × (dim + 1)` weights; the last column is the
    /// bias (trained on an appended constant-1 feature).
    weights: Vec<f64>,
    /// Calibrated softmax temperature (1.0 when calibration is disabled).
    temperature: f64,
    /// Mean held-out negative log-likelihood at the calibrated temperature
    /// (NaN when calibration is disabled).
    holdout_nll: f64,
}

/// One standardized training example: class index plus features with the
/// trailing bias constant.
struct Example {
    class: usize,
    phi: Vec<f64>,
}

/// A standard normal draw (Box–Muller; deterministic given the generator).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1 = (1.0 - rng.gen::<f64>()).max(1e-300);
    let u2 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// `log(Σ exp(xᵢ))` without overflow.
fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let shifted: Vec<f64> = xs.iter().map(|x| (x - max).exp()).collect();
    max + simd::sum(&shifted).ln()
}

impl LearnedClassifier {
    /// Trains on `(label, features)` observations. See the module docs for
    /// the determinism contract; the shape mirrors
    /// [`TemplateSet::fit`](crate::TemplateSet::fit) so both rails can be
    /// trained from the same profiling projections.
    ///
    /// # Errors
    ///
    /// Typed, never panicking: [`LearnedError::NotEnoughData`] /
    /// [`DimensionMismatch`](LearnedError::DimensionMismatch) /
    /// [`NonFinite`](LearnedError::NonFinite) on bad inputs,
    /// [`Diverged`](LearnedError::Diverged) when the loss explodes,
    /// [`BadConfig`](LearnedError::BadConfig) on out-of-domain knobs.
    pub fn fit(
        observations: &[(i64, Vec<f64>)],
        config: &LearnedConfig,
    ) -> Result<Self, LearnedError> {
        config.validate()?;
        let mut labels: Vec<i64> = observations.iter().map(|(l, _)| *l).collect();
        labels.sort_unstable();
        labels.dedup();
        if observations.is_empty() || labels.len() < 2 {
            return Err(LearnedError::NotEnoughData {
                observations: observations.len(),
                classes: labels.len(),
            });
        }
        let dim = observations[0].1.len();
        if dim == 0 {
            return Err(LearnedError::BadConfig {
                what: "observations must have at least one feature",
            });
        }
        for (_, x) in observations {
            if x.len() != dim {
                return Err(LearnedError::DimensionMismatch {
                    expected: dim,
                    got: x.len(),
                });
            }
            if x.iter().any(|v| !v.is_finite()) {
                return Err(LearnedError::NonFinite {
                    what: "training feature",
                });
            }
        }

        // Deterministic holdout split: shuffle indices once from the master
        // seed, carve the tail off for calibration.
        let mut order: Vec<usize> = (0..observations.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(config.seed));
        let holdout_len = ((observations.len() as f64) * config.holdout_fraction) as usize;
        let holdout_len = holdout_len.min(observations.len().saturating_sub(labels.len()));
        let (train_idx, holdout_idx) = order.split_at(observations.len() - holdout_len);

        // Standardization from the raw (un-augmented) training features.
        let mut mean = vec![0.0; dim];
        for &i in train_idx {
            for (m, v) in mean.iter_mut().zip(&observations[i].1) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= train_idx.len() as f64;
        }
        let mut var = vec![0.0; dim];
        for &i in train_idx {
            for ((s, v), m) in var.iter_mut().zip(&observations[i].1).zip(&mean) {
                let d = v - m;
                *s += d * d;
            }
        }
        let inv_std: Vec<f64> = var
            .iter()
            .map(|s| 1.0 / (s / train_idx.len() as f64).sqrt().max(1e-9))
            .collect();

        let class_of = |label: i64| -> usize {
            labels.binary_search(&label).unwrap_or(0) // Unreachable: labels were built from the observations.
        };
        let standardize = |raw: &[f64], noise: Option<(&mut StdRng, f64)>| -> Vec<f64> {
            let mut phi = Vec::with_capacity(dim + 1);
            match noise {
                Some((rng, sigma)) => {
                    for ((v, m), s) in raw.iter().zip(&mean).zip(&inv_std) {
                        phi.push((v + sigma * gaussian(rng) - m) * s);
                    }
                }
                None => {
                    for ((v, m), s) in raw.iter().zip(&mean).zip(&inv_std) {
                        phi.push((v - m) * s);
                    }
                }
            }
            phi.push(1.0);
            phi
        };

        // Augmented example sets: each configured σ adds one noisy copy of
        // every observation (noise in raw feature units, applied before
        // standardization). Both splits get the same ladder so the
        // temperature is calibrated under the regimes the rail will see.
        let build = |idx: &[usize], stream: u64| -> Vec<Example> {
            let mut rng = StdRng::seed_from_u64(reveal_par::derive_seed(config.seed, stream));
            let mut examples = Vec::with_capacity(idx.len() * (1 + config.augment_sigmas.len()));
            for &i in idx {
                let (label, raw) = &observations[i];
                let class = class_of(*label);
                examples.push(Example {
                    class,
                    phi: standardize(raw, None),
                });
                for &sigma in &config.augment_sigmas {
                    examples.push(Example {
                        class,
                        phi: standardize(raw, Some((&mut rng, sigma))),
                    });
                }
            }
            examples
        };
        let train = build(train_idx, 1);
        let holdout = build(holdout_idx, 2);

        // Mini-batch SGD. The batch fan-out returns per-example softmax
        // errors in input order; the gradient fold is serial and in order,
        // so the update is bit-identical at any thread count.
        let classes = labels.len();
        let stride = dim + 1;
        let mut weights = vec![0.0; classes * stride];
        let mut grad = vec![0.0; classes * stride];
        let mut batch_order: Vec<usize> = (0..train.len()).collect();
        let cost_units = (classes * stride) as u64;
        for epoch in 0..config.epochs {
            batch_order.shuffle(&mut StdRng::seed_from_u64(reveal_par::derive_seed(
                config.seed,
                3 + epoch as u64,
            )));
            let mut epoch_loss = 0.0;
            for batch in batch_order.chunks(config.batch_size) {
                let passes: Vec<(Vec<f64>, f64)> =
                    reveal_par::par_map_modeled(batch, &SGD_EXAMPLE_COST, cost_units, |&i| {
                        let ex = &train[i];
                        let logits: Vec<f64> = (0..classes)
                            .map(|c| simd::dot(&weights[c * stride..(c + 1) * stride], &ex.phi))
                            .collect();
                        let lse = log_sum_exp(&logits);
                        let loss = lse - logits[ex.class];
                        let mut errors: Vec<f64> = logits.iter().map(|l| (l - lse).exp()).collect();
                        errors[ex.class] -= 1.0;
                        (errors, loss)
                    });
                grad.fill(0.0);
                for ((errors, loss), &i) in passes.iter().zip(batch) {
                    epoch_loss += loss;
                    for (c, e) in errors.iter().enumerate() {
                        simd::axpy(*e, &train[i].phi, &mut grad[c * stride..(c + 1) * stride]);
                    }
                }
                let step = config.learning_rate / batch.len() as f64;
                let decay = 1.0 - config.learning_rate * config.l2;
                for c in 0..classes {
                    let row = &mut weights[c * stride..(c + 1) * stride];
                    for w in row[..dim].iter_mut() {
                        *w *= decay;
                    }
                    let g = &grad[c * stride..(c + 1) * stride];
                    simd::axpy(-step, g, &mut weights[c * stride..(c + 1) * stride]);
                }
            }
            if !epoch_loss.is_finite() {
                return Err(LearnedError::Diverged { epoch });
            }
        }
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(LearnedError::NonFinite {
                what: "trained weight",
            });
        }

        // Held-out temperature scaling: golden-section search on ln T for
        // the temperature minimizing the held-out NLL. Deterministic (fixed
        // iteration count), and skipped when there is nothing held out.
        let mut classifier = Self {
            labels,
            dim,
            mean,
            inv_std,
            weights,
            temperature: 1.0,
            holdout_nll: f64::NAN,
        };
        if !holdout.is_empty() {
            let logits: Vec<(usize, Vec<f64>)> = holdout
                .iter()
                .map(|ex| {
                    let l: Vec<f64> = (0..classes)
                        .map(|c| {
                            simd::dot(&classifier.weights[c * stride..(c + 1) * stride], &ex.phi)
                        })
                        .collect();
                    (ex.class, l)
                })
                .collect();
            let nll = |log_t: f64| -> f64 {
                let t = log_t.exp();
                let total: f64 = logits
                    .iter()
                    .map(|(class, l)| {
                        let scaled: Vec<f64> = l.iter().map(|x| x / t).collect();
                        log_sum_exp(&scaled) - scaled[*class]
                    })
                    .sum();
                total / logits.len() as f64
            };
            let phi = (5f64.sqrt() - 1.0) / 2.0;
            let (mut lo, mut hi) = (0.25f64.ln(), 8f64.ln());
            let (mut a, mut b) = (hi - phi * (hi - lo), lo + phi * (hi - lo));
            let (mut fa, mut fb) = (nll(a), nll(b));
            for _ in 0..48 {
                if fa <= fb {
                    hi = b;
                    b = a;
                    fb = fa;
                    a = hi - phi * (hi - lo);
                    fa = nll(a);
                } else {
                    lo = a;
                    a = b;
                    fa = fb;
                    b = lo + phi * (hi - lo);
                    fb = nll(b);
                }
            }
            let best = 0.5 * (lo + hi);
            classifier.temperature = best.exp();
            classifier.holdout_nll = nll(best);
            if !classifier.temperature.is_finite() || classifier.temperature <= 0.0 {
                return Err(LearnedError::NonFinite {
                    what: "calibrated temperature",
                });
            }
        }
        Ok(classifier)
    }

    /// Scores one observation: temperature-scaled logits as a
    /// [`ScoreTable`], so `probabilities()` yields the *calibrated* softmax.
    ///
    /// # Errors
    ///
    /// [`LearnedError::DimensionMismatch`] on the wrong feature count,
    /// [`LearnedError::NonFinite`] on NaN/∞ features.
    pub fn classify(&self, observation: &[f64]) -> Result<ScoreTable, LearnedError> {
        if observation.len() != self.dim {
            return Err(LearnedError::DimensionMismatch {
                expected: self.dim,
                got: observation.len(),
            });
        }
        if observation.iter().any(|v| !v.is_finite()) {
            return Err(LearnedError::NonFinite {
                what: "observation feature",
            });
        }
        let mut phi = Vec::with_capacity(self.dim + 1);
        for ((v, m), s) in observation.iter().zip(&self.mean).zip(&self.inv_std) {
            phi.push((v - m) * s);
        }
        phi.push(1.0);
        let stride = self.dim + 1;
        let scores: Vec<(i64, f64)> = self
            .labels
            .iter()
            .enumerate()
            .map(|(c, &label)| {
                (
                    label,
                    simd::dot(&self.weights[c * stride..(c + 1) * stride], &phi) / self.temperature,
                )
            })
            .collect();
        Ok(ScoreTable::from_log_likelihoods(scores))
    }

    /// The class labels, ascending.
    pub fn labels(&self) -> &[i64] {
        &self.labels
    }

    /// Feature dimension the classifier expects.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The calibrated softmax temperature (1.0 when calibration was off).
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Mean held-out NLL at the calibrated temperature (NaN when
    /// calibration was off).
    pub fn holdout_nll(&self) -> f64 {
        self.holdout_nll
    }

    /// Top-1 accuracy on labelled observations (diagnostic).
    pub fn accuracy(&self, observations: &[(i64, Vec<f64>)]) -> f64 {
        if observations.is_empty() {
            return 0.0;
        }
        let hits = observations
            .iter()
            .filter(|(label, x)| {
                self.classify(x)
                    .map(|s| s.best_label() == *label)
                    .unwrap_or(false)
            })
            .count();
        hits as f64 / observations.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated 2-D Gaussian blobs plus an offset third class.
    fn blobs(per_class: usize, noise: f64, seed: u64) -> Vec<(i64, Vec<f64>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = Vec::new();
        for (label, cx, cy) in [(-1i64, -2.0, 0.0), (0, 0.0, 2.0), (1, 2.0, 0.0)] {
            for _ in 0..per_class {
                obs.push((
                    label,
                    vec![
                        cx + noise * gaussian(&mut rng),
                        cy + noise * gaussian(&mut rng),
                    ],
                ));
            }
        }
        obs
    }

    #[test]
    fn learns_separable_blobs() {
        let obs = blobs(60, 0.3, 7);
        let clf = LearnedClassifier::fit(&obs, &LearnedConfig::default()).unwrap();
        assert!(clf.accuracy(&obs) > 0.95, "accuracy {}", clf.accuracy(&obs));
        assert_eq!(clf.labels(), &[-1, 0, 1]);
        let probs = clf.classify(&[2.0, 0.0]).unwrap().probabilities();
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_is_bit_identical_across_thread_counts() {
        let obs = blobs(40, 0.4, 11);
        let config = LearnedConfig {
            augment_sigmas: vec![0.2, 0.5],
            ..LearnedConfig::default()
        };
        let reference =
            reveal_par::with_threads(1, || LearnedClassifier::fit(&obs, &config).unwrap());
        for threads in [2, 4] {
            let other = reveal_par::with_threads(threads, || {
                LearnedClassifier::fit(&obs, &config).unwrap()
            });
            assert_eq!(
                reference
                    .weights
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>(),
                other
                    .weights
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>(),
                "threads {threads}"
            );
            assert_eq!(
                reference.temperature.to_bits(),
                other.temperature.to_bits(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn same_seed_same_model_different_seed_different_model() {
        let obs = blobs(40, 0.4, 13);
        let a = LearnedClassifier::fit(&obs, &LearnedConfig::default()).unwrap();
        let b = LearnedClassifier::fit(&obs, &LearnedConfig::default()).unwrap();
        assert_eq!(a, b);
        let c = LearnedClassifier::fit(&obs, &LearnedConfig::default().with_seed(99)).unwrap();
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    fn typed_errors_never_panic() {
        // Too few classes.
        let one_class: Vec<(i64, Vec<f64>)> = (0..10).map(|_| (1i64, vec![0.0, 1.0])).collect();
        assert!(matches!(
            LearnedClassifier::fit(&one_class, &LearnedConfig::default()),
            Err(LearnedError::NotEnoughData { classes: 1, .. })
        ));
        // Ragged features.
        let ragged = vec![(0i64, vec![1.0, 2.0]), (1, vec![1.0])];
        assert!(matches!(
            LearnedClassifier::fit(&ragged, &LearnedConfig::default()),
            Err(LearnedError::DimensionMismatch { .. })
        ));
        // NaN feature.
        let nan = vec![(0i64, vec![1.0, f64::NAN]), (1, vec![0.0, 1.0])];
        assert!(matches!(
            LearnedClassifier::fit(&nan, &LearnedConfig::default()),
            Err(LearnedError::NonFinite { .. })
        ));
        // Hot learning rate diverges with a typed error, not a panic.
        let obs = blobs(30, 0.3, 17);
        let hot = LearnedConfig {
            learning_rate: 1e12,
            ..LearnedConfig::default()
        };
        assert!(matches!(
            LearnedClassifier::fit(&obs, &hot),
            Err(LearnedError::Diverged { .. } | LearnedError::NonFinite { .. })
        ));
        // Bad config knobs.
        let bad = LearnedConfig {
            holdout_fraction: 1.5,
            ..LearnedConfig::default()
        };
        assert!(matches!(
            LearnedClassifier::fit(&obs, &bad),
            Err(LearnedError::BadConfig { .. })
        ));
    }

    #[test]
    fn classify_checks_inputs() {
        let obs = blobs(30, 0.3, 19);
        let clf = LearnedClassifier::fit(&obs, &LearnedConfig::default()).unwrap();
        assert!(matches!(
            clf.classify(&[1.0]),
            Err(LearnedError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            clf.classify(&[1.0, f64::INFINITY]),
            Err(LearnedError::NonFinite { .. })
        ));
    }

    #[test]
    fn temperature_calibration_softens_overconfidence_under_noise() {
        // Train clean but augment at the noise level the test set will
        // have: the calibrated temperature should exceed the uncalibrated
        // one's implicit 1.0, flattening the probabilities toward honesty.
        let clean = blobs(80, 0.2, 23);
        let augmented = LearnedConfig {
            augment_sigmas: vec![1.0, 2.0],
            ..LearnedConfig::default()
        };
        let clf = LearnedClassifier::fit(&clean, &augmented).unwrap();
        assert!(clf.temperature() > 0.0);
        assert!(clf.holdout_nll().is_finite());
        // A no-holdout fit keeps temperature exactly 1.
        let no_holdout = LearnedConfig {
            holdout_fraction: 0.0,
            ..LearnedConfig::default()
        };
        let raw = LearnedClassifier::fit(&clean, &no_holdout).unwrap();
        assert_eq!(raw.temperature(), 1.0);
        assert!(raw.holdout_nll().is_nan());
    }

    #[test]
    fn augmented_training_survives_noisy_test_features() {
        // The augmentation contract: a rail trained with noise copies keeps
        // classifying when the test features are noisier than profiling.
        let train = blobs(80, 0.2, 29);
        let noisy_test = blobs(40, 1.0, 31);
        let plain = LearnedClassifier::fit(&train, &LearnedConfig::default()).unwrap();
        let hardened = LearnedClassifier::fit(
            &train,
            &LearnedConfig {
                augment_sigmas: vec![0.5, 1.0, 1.5],
                ..LearnedConfig::default()
            },
        )
        .unwrap();
        assert!(
            hardened.accuracy(&noisy_test) + 0.05 >= plain.accuracy(&noisy_test),
            "hardened {:.3} vs plain {:.3}",
            hardened.accuracy(&noisy_test),
            plain.accuracy(&noisy_test)
        );
        assert!(hardened.accuracy(&noisy_test) > 0.7);
    }
}
