//! Confusion matrices in the layout of Table I of the paper: rows are
//! predicted labels, columns are actual labels, entries are percentages of
//! that column.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An accumulating confusion matrix over `i64` labels.
///
/// # Examples
///
/// ```
/// use reveal_template::ConfusionMatrix;
/// let mut cm = ConfusionMatrix::new();
/// cm.record(1, 1);
/// cm.record(1, 2);
/// cm.record(-1, -1);
/// assert_eq!(cm.total(), 3);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// assert!((cm.column_percentage(1, 1) - 50.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// `(actual, predicted) -> count`.
    counts: BTreeMap<(i64, i64), u64>,
    /// Per-actual totals.
    column_totals: BTreeMap<i64, u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one classification outcome.
    pub fn record(&mut self, actual: i64, predicted: i64) {
        *self.counts.entry((actual, predicted)).or_insert(0) += 1;
        *self.column_totals.entry(actual).or_insert(0) += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.column_totals.values().sum()
    }

    /// Overall accuracy in `[0, 1]` (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = self
            .counts
            .iter()
            .filter(|((a, p), _)| a == p)
            .map(|(_, c)| *c)
            .sum();
        correct as f64 / total as f64
    }

    /// All labels that appear as actual or predicted, ascending.
    pub fn labels(&self) -> Vec<i64> {
        let mut labels: Vec<i64> = self.counts.keys().flat_map(|&(a, p)| [a, p]).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Raw count for `(actual, predicted)`.
    pub fn count(&self, actual: i64, predicted: i64) -> u64 {
        self.counts.get(&(actual, predicted)).copied().unwrap_or(0)
    }

    /// Percentage of column `actual` classified as `predicted`
    /// (the Table I cell value).
    pub fn column_percentage(&self, actual: i64, predicted: i64) -> f64 {
        let total = self.column_totals.get(&actual).copied().unwrap_or(0);
        if total == 0 {
            return 0.0;
        }
        100.0 * self.count(actual, predicted) as f64 / total as f64
    }

    /// Per-class recall: fraction of column `actual` predicted correctly.
    pub fn recall(&self, actual: i64) -> f64 {
        self.column_percentage(actual, actual) / 100.0
    }

    /// Accuracy of the *sign* (and zero) decision implied by the matrix:
    /// a prediction counts as sign-correct when `signum(pred) == signum(act)`.
    pub fn sign_accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = self
            .counts
            .iter()
            .filter(|((a, p), _)| a.signum() == p.signum())
            .map(|(_, c)| *c)
            .sum();
        correct as f64 / total as f64
    }

    /// Renders the percentage table for labels in `[lo, hi]`, in the
    /// paper's Table I format (rows = predicted, columns = actual).
    pub fn render(&self, lo: i64, hi: i64) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:>5} |", "");
        for actual in lo..=hi {
            let _ = write!(out, "{actual:>6}");
        }
        out.push('\n');
        let _ = writeln!(out, "{}", "-".repeat(7 + 6 * (hi - lo + 1) as usize));
        let preds: Vec<i64> = self
            .labels()
            .into_iter()
            .filter(|&l| l >= lo && l <= hi)
            .collect();
        for predicted in preds {
            let _ = write!(out, "{predicted:>5} |");
            for actual in lo..=hi {
                let pct = self.column_percentage(actual, predicted);
                if pct == 0.0 {
                    let _ = write!(out, "{:>6}", "0");
                } else {
                    let _ = write!(out, "{pct:>6.1}");
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the full matrix as CSV (`predicted\actual` header).
    pub fn to_csv(&self) -> String {
        let labels = self.labels();
        let mut out = String::from("predicted\\actual");
        for a in &labels {
            let _ = write!(out, ",{a}");
        }
        out.push('\n');
        for p in &labels {
            let _ = write!(out, "{p}");
            for a in &labels {
                let _ = write!(out, ",{:.2}", self.column_percentage(*a, *p));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new();
        // Column -2: 3 correct, 1 predicted as -3.
        for _ in 0..3 {
            cm.record(-2, -2);
        }
        cm.record(-2, -3);
        // Column 0: always correct.
        for _ in 0..5 {
            cm.record(0, 0);
        }
        // Column 2: 1 correct, 1 as 3 (same HW confusion).
        cm.record(2, 2);
        cm.record(2, 3);
        cm
    }

    #[test]
    fn counts_and_percentages() {
        let cm = sample_matrix();
        assert_eq!(cm.total(), 11);
        assert_eq!(cm.count(-2, -2), 3);
        assert!((cm.column_percentage(-2, -2) - 75.0).abs() < 1e-12);
        assert!((cm.column_percentage(0, 0) - 100.0).abs() < 1e-12);
        assert!((cm.column_percentage(2, 3) - 50.0).abs() < 1e-12);
        assert_eq!(cm.column_percentage(7, 7), 0.0);
    }

    #[test]
    fn accuracy_and_recall() {
        let cm = sample_matrix();
        assert!((cm.accuracy() - 9.0 / 11.0).abs() < 1e-12);
        assert!((cm.recall(-2) - 0.75).abs() < 1e-12);
        assert_eq!(cm.recall(0), 1.0);
    }

    #[test]
    fn sign_accuracy_is_full_here() {
        // Every misclassification above stays within the same sign.
        let cm = sample_matrix();
        assert_eq!(cm.sign_accuracy(), 1.0);
        let mut bad = ConfusionMatrix::new();
        bad.record(1, -1);
        bad.record(1, 1);
        assert!((bad.sign_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn labels_union() {
        let cm = sample_matrix();
        assert_eq!(cm.labels(), vec![-3, -2, 0, 2, 3]);
    }

    #[test]
    fn render_contains_headers_and_rows() {
        let cm = sample_matrix();
        let s = cm.render(-3, 3);
        assert!(s.contains("-3"));
        assert!(s.contains("100.0"));
        // Rows only for predicted labels that occur.
        assert_eq!(s.lines().count(), 2 + 5);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let cm = sample_matrix();
        let csv = cm.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + cm.labels().len());
        assert!(lines[0].starts_with("predicted\\actual"));
    }

    #[test]
    fn empty_matrix_is_sane() {
        let cm = ConfusionMatrix::new();
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.sign_accuracy(), 0.0);
        assert!(cm.labels().is_empty());
    }
}
