#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
// Indexed loops are the clearest notation for the dense numeric kernels
// in this workspace (convolutions, scatter matrices, lattice bases).
#![allow(clippy::needless_range_loop)]

//! # reveal-template
//!
//! The template-attack engine of the RevEAL reproduction: multivariate
//! Gaussian templates (Chari et al.) with per-class or pooled covariance,
//! Cholesky-based likelihood evaluation, per-class probability score tables
//! with the value/negation fusion the paper uses to prune false positives,
//! and Table-I-style confusion matrices.
//!
//! ## Example
//!
//! ```
//! use reveal_template::{CovarianceMode, TemplateSet};
//!
//! // Profile two candidate secrets whose POI means differ.
//! let mut observations = Vec::new();
//! for i in 0..30 {
//!     let j = i as f64 * 0.01;
//!     observations.push((2i64, vec![2.0 + j, 0.5 - j]));
//!     observations.push((3i64, vec![3.0 - j, 1.5 + j]));
//! }
//! let templates = TemplateSet::fit(&observations, CovarianceMode::Pooled, 1e-9)?;
//!
//! // Attack: classify a single observed POI vector.
//! let scores = templates.classify(&[2.9, 1.4])?;
//! assert_eq!(scores.best_label(), 3);
//! # Ok::<(), reveal_template::TemplateError>(())
//! ```

pub mod confusion;
pub mod lda;
pub mod learned;
pub mod matrix;
pub mod scores;
pub mod template;

pub use confusion::ConfusionMatrix;
pub use lda::{LdaError, LdaProjection};
pub use learned::{LearnedClassifier, LearnedConfig, LearnedError};
pub use matrix::{Cholesky, MatrixError};
pub use scores::ScoreTable;
pub use template::{CovarianceMode, TemplateError, TemplateSet};
