#![forbid(unsafe_code)]
// The capture→segment→score hot path must degrade with typed errors, never
// panic on a glitched acquisition; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
// Indexed loops are the clearest notation for the dense numeric kernels
// in this workspace (convolutions, scatter matrices, lattice bases).
#![allow(clippy::needless_range_loop)]

//! # reveal-trace
//!
//! Side-channel trace processing for the RevEAL reproduction: trace and
//! trace-set containers, streaming statistics, the peak-based segmentation of
//! §III-C (locating each coefficient's sampling window from the
//! distribution-call peaks), SOSD/SOST point-of-interest selection, and
//! CSV/ASCII export used by the figure generators.
//!
//! ## Example: segmenting a synthetic trace
//!
//! ```
//! use reveal_trace::segment::{segment_windows, SegmentConfig};
//!
//! let mut samples = vec![1.0; 400];
//! for start in [40usize, 200] {
//!     for i in start..start + 50 {
//!         samples[i] = 4.0; // a distribution-call burst
//!     }
//! }
//! let windows = segment_windows(&samples, &SegmentConfig::default())?;
//! assert_eq!(windows.len(), 2);
//! # Ok::<(), reveal_trace::segment::SegmentError>(())
//! ```

pub mod align;
pub mod cpa;
pub mod export;
pub mod poi;
pub mod sanity;
pub mod segment;
pub mod stats;
pub mod trace;
pub mod tvla;

pub use align::{align_to_mean, best_shift, AlignError};
pub use cpa::{cpa_rank, distinguishing_margin, CpaError, CpaScore};
pub use poi::{select_pois, PoiError, PoiMethod};
pub use sanity::{
    check_finite, mad_outlier_flags, median, median_abs_deviation, robust_noise_sigma,
};
pub use segment::{segment_windows, SegmentConfig, SegmentError};
pub use stats::{pearson_correlation, Covariance, RunningStats};
pub use trace::{resample_linear, Trace, TraceSet};
pub use tvla::{welch_t_test, TvlaError, TvlaResult, TVLA_THRESHOLD};
