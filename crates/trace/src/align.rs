//! Static trace alignment by cross-correlation: shifting each trace so a
//! chosen reference pattern lines up — the classic pre-processing step when
//! trigger jitter (or, here, burst-edge jitter) smears sample-exact leakage.

use std::fmt;

/// Errors from alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// The reference pattern is empty or longer than the trace.
    BadReference { reference: usize, trace: usize },
    /// The allowed shift window is empty.
    EmptyWindow,
    /// A trace or reference sample is NaN or infinite; correlation against
    /// it would silently rank every shift equal.
    NonFiniteSample(usize),
    /// Batch alignment got windows of differing lengths.
    RaggedWindows { expected: usize, got: usize },
    /// Windows are too short for the requested shift budget.
    WindowTooShort { len: usize, max_shift: usize },
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::BadReference { reference, trace } => {
                write!(
                    f,
                    "reference of {reference} samples cannot slide in a {trace}-sample trace"
                )
            }
            AlignError::EmptyWindow => write!(f, "empty shift window"),
            AlignError::NonFiniteSample(i) => write!(f, "non-finite sample at index {i}"),
            AlignError::RaggedWindows { expected, got } => {
                write!(f, "ragged windows: {got} samples where {expected} expected")
            }
            AlignError::WindowTooShort { len, max_shift } => {
                write!(
                    f,
                    "{len}-sample windows cannot absorb a ±{max_shift} shift budget"
                )
            }
        }
    }
}

impl std::error::Error for AlignError {}

/// Finds the shift (within `[-max_shift, max_shift]`) that maximizes the
/// normalized cross-correlation between `reference` and the trace segment
/// starting at `at + shift`.
///
/// Returns `(best_shift, best_correlation)`.
///
/// # Errors
///
/// Fails when the reference does not fit or no shift is admissible.
pub fn best_shift(
    trace: &[f64],
    reference: &[f64],
    at: usize,
    max_shift: usize,
) -> Result<(isize, f64), AlignError> {
    if reference.is_empty() || reference.len() > trace.len() {
        return Err(AlignError::BadReference {
            reference: reference.len(),
            trace: trace.len(),
        });
    }
    if let Some(i) = trace.iter().position(|s| !s.is_finite()) {
        return Err(AlignError::NonFiniteSample(i));
    }
    if let Some(i) = reference.iter().position(|s| !s.is_finite()) {
        return Err(AlignError::NonFiniteSample(i));
    }
    let ref_mean = reference.iter().sum::<f64>() / reference.len() as f64;
    let ref_centered: Vec<f64> = reference.iter().map(|r| r - ref_mean).collect();
    let ref_norm = ref_centered.iter().map(|r| r * r).sum::<f64>().sqrt();

    let mut best: Option<(isize, f64)> = None;
    let lo = -(max_shift as isize);
    for shift in lo..=(max_shift as isize) {
        let start = at as isize + shift;
        if start < 0 {
            continue;
        }
        let start = start as usize;
        if start + reference.len() > trace.len() {
            continue;
        }
        let window = &trace[start..start + reference.len()];
        let w_mean = window.iter().sum::<f64>() / window.len() as f64;
        let mut dot = 0.0;
        let mut w_norm = 0.0;
        for (w, r) in window.iter().zip(&ref_centered) {
            let wc = w - w_mean;
            dot += wc * r;
            w_norm += wc * wc;
        }
        let denom = (w_norm.sqrt() * ref_norm).max(1e-30);
        let corr = dot / denom;
        if best.map(|(_, c)| corr > c).unwrap_or(true) {
            best = Some((shift, corr));
        }
    }
    best.ok_or(AlignError::EmptyWindow)
}

/// Aligns a batch of equal-purpose windows to their mean pattern: iterates
/// once (mean → per-window best shift → re-cut), returning the aligned
/// windows and the applied shifts.
///
/// `windows` must all have the same length; the aligned output keeps that
/// length, dropping `max_shift` samples of slack from both ends.
///
/// # Errors
///
/// Propagates [`best_shift`] failures; fails with typed errors (instead of
/// panicking) on ragged or too-short windows.
pub fn align_to_mean(
    windows: &[Vec<f64>],
    max_shift: usize,
) -> Result<(Vec<Vec<f64>>, Vec<isize>), AlignError> {
    if windows.is_empty() {
        return Ok((Vec::new(), Vec::new()));
    }
    let len = windows[0].len();
    if let Some(w) = windows.iter().find(|w| w.len() != len) {
        return Err(AlignError::RaggedWindows {
            expected: len,
            got: w.len(),
        });
    }
    if len <= 2 * max_shift + 1 {
        return Err(AlignError::WindowTooShort { len, max_shift });
    }
    let core = len - 2 * max_shift;
    // Reference: the mean of the central cores.
    let mut reference = vec![0.0; core];
    for w in windows {
        for (r, v) in reference.iter_mut().zip(&w[max_shift..max_shift + core]) {
            *r += v;
        }
    }
    for r in &mut reference {
        *r /= windows.len() as f64;
    }
    let mut aligned = Vec::with_capacity(windows.len());
    let mut shifts = Vec::with_capacity(windows.len());
    for w in windows {
        let (shift, _) = best_shift(w, &reference, max_shift, max_shift)?;
        let start = (max_shift as isize + shift) as usize;
        aligned.push(w[start..start + core].to_vec());
        shifts.push(shift);
    }
    Ok((aligned, shifts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_at(offset: usize, len: usize) -> Vec<f64> {
        let mut t = vec![1.0; len];
        for i in 0..6 {
            t[offset + i] = 3.0 + i as f64 * 0.5;
        }
        t
    }

    #[test]
    fn finds_known_shift() {
        let reference: Vec<f64> = pattern_at(10, 40)[8..24].to_vec();
        let shifted = pattern_at(13, 40); // pattern moved +3
        let (shift, corr) = best_shift(&shifted, &reference, 8, 6).unwrap();
        assert_eq!(shift, 3);
        assert!(corr > 0.99);
    }

    #[test]
    fn zero_shift_for_identical() {
        let t = pattern_at(10, 40);
        let reference = t[8..24].to_vec();
        let (shift, corr) = best_shift(&t, &reference, 8, 6).unwrap();
        assert_eq!(shift, 0);
        assert!(corr > 0.999);
    }

    #[test]
    fn batch_alignment_removes_jitter() {
        // Windows with the pattern jittered by -2..=2; after alignment the
        // per-sample variance at the pattern collapses.
        let windows: Vec<Vec<f64>> = (0..40).map(|i| pattern_at(10 + (i % 5), 48)).collect();
        let (aligned, shifts) = align_to_mean(&windows, 4).unwrap();
        assert_eq!(aligned.len(), 40);
        assert!(shifts.iter().any(|&s| s != 0));
        // All aligned windows identical (noiseless synthetic data).
        for w in &aligned[1..] {
            for (a, b) in w.iter().zip(&aligned[0]) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn error_paths() {
        assert!(matches!(
            best_shift(&[1.0, 2.0], &[], 0, 1),
            Err(AlignError::BadReference { .. })
        ));
        assert!(matches!(
            best_shift(&[1.0], &[1.0, 2.0], 0, 1),
            Err(AlignError::BadReference { .. })
        ));
        // Shift window entirely out of range.
        assert!(matches!(
            best_shift(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], 2, 0),
            Err(AlignError::EmptyWindow)
        ));
        // Degenerate inputs get typed errors instead of NaN ranks or panics.
        assert!(matches!(
            best_shift(&[1.0, f64::NAN, 3.0], &[1.0, 2.0], 0, 1),
            Err(AlignError::NonFiniteSample(1))
        ));
        assert!(matches!(
            align_to_mean(&[vec![1.0; 8], vec![1.0; 7]], 2),
            Err(AlignError::RaggedWindows {
                expected: 8,
                got: 7
            })
        ));
        assert!(matches!(
            align_to_mean(&[vec![1.0; 8]], 4),
            Err(AlignError::WindowTooShort {
                len: 8,
                max_shift: 4
            })
        ));
    }

    #[test]
    fn empty_batch_is_fine() {
        let (a, s) = align_to_mean(&[], 4).unwrap();
        assert!(a.is_empty() && s.is_empty());
    }
}
