//! Static trace alignment by cross-correlation: shifting each trace so a
//! chosen reference pattern lines up — the classic pre-processing step when
//! trigger jitter (or, here, burst-edge jitter) smears sample-exact leakage.

use std::fmt;

/// Errors from alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// The reference pattern is empty or longer than the trace.
    BadReference { reference: usize, trace: usize },
    /// The allowed shift window is empty.
    EmptyWindow,
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::BadReference { reference, trace } => {
                write!(
                    f,
                    "reference of {reference} samples cannot slide in a {trace}-sample trace"
                )
            }
            AlignError::EmptyWindow => write!(f, "empty shift window"),
        }
    }
}

impl std::error::Error for AlignError {}

/// Finds the shift (within `[-max_shift, max_shift]`) that maximizes the
/// normalized cross-correlation between `reference` and the trace segment
/// starting at `at + shift`.
///
/// Returns `(best_shift, best_correlation)`.
///
/// # Errors
///
/// Fails when the reference does not fit or no shift is admissible.
pub fn best_shift(
    trace: &[f64],
    reference: &[f64],
    at: usize,
    max_shift: usize,
) -> Result<(isize, f64), AlignError> {
    if reference.is_empty() || reference.len() > trace.len() {
        return Err(AlignError::BadReference {
            reference: reference.len(),
            trace: trace.len(),
        });
    }
    let ref_mean = reference.iter().sum::<f64>() / reference.len() as f64;
    let ref_centered: Vec<f64> = reference.iter().map(|r| r - ref_mean).collect();
    let ref_norm = ref_centered.iter().map(|r| r * r).sum::<f64>().sqrt();

    let mut best: Option<(isize, f64)> = None;
    let lo = -(max_shift as isize);
    for shift in lo..=(max_shift as isize) {
        let start = at as isize + shift;
        if start < 0 {
            continue;
        }
        let start = start as usize;
        if start + reference.len() > trace.len() {
            continue;
        }
        let window = &trace[start..start + reference.len()];
        let w_mean = window.iter().sum::<f64>() / window.len() as f64;
        let mut dot = 0.0;
        let mut w_norm = 0.0;
        for (w, r) in window.iter().zip(&ref_centered) {
            let wc = w - w_mean;
            dot += wc * r;
            w_norm += wc * wc;
        }
        let denom = (w_norm.sqrt() * ref_norm).max(1e-30);
        let corr = dot / denom;
        if best.map(|(_, c)| corr > c).unwrap_or(true) {
            best = Some((shift, corr));
        }
    }
    best.ok_or(AlignError::EmptyWindow)
}

/// Aligns a batch of equal-purpose windows to their mean pattern: iterates
/// once (mean → per-window best shift → re-cut), returning the aligned
/// windows and the applied shifts.
///
/// `windows` must all have the same length; the aligned output keeps that
/// length, dropping `max_shift` samples of slack from both ends.
///
/// # Errors
///
/// Propagates [`best_shift`] failures.
///
/// # Panics
///
/// Panics if windows are ragged or shorter than `2·max_shift + 2`.
pub fn align_to_mean(
    windows: &[Vec<f64>],
    max_shift: usize,
) -> Result<(Vec<Vec<f64>>, Vec<isize>), AlignError> {
    if windows.is_empty() {
        return Ok((Vec::new(), Vec::new()));
    }
    let len = windows[0].len();
    assert!(windows.iter().all(|w| w.len() == len), "ragged windows");
    assert!(
        len > 2 * max_shift + 1,
        "windows too short for the shift budget"
    );
    let core = len - 2 * max_shift;
    // Reference: the mean of the central cores.
    let mut reference = vec![0.0; core];
    for w in windows {
        for (r, v) in reference.iter_mut().zip(&w[max_shift..max_shift + core]) {
            *r += v;
        }
    }
    for r in &mut reference {
        *r /= windows.len() as f64;
    }
    let mut aligned = Vec::with_capacity(windows.len());
    let mut shifts = Vec::with_capacity(windows.len());
    for w in windows {
        let (shift, _) = best_shift(w, &reference, max_shift, max_shift)?;
        let start = (max_shift as isize + shift) as usize;
        aligned.push(w[start..start + core].to_vec());
        shifts.push(shift);
    }
    Ok((aligned, shifts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_at(offset: usize, len: usize) -> Vec<f64> {
        let mut t = vec![1.0; len];
        for i in 0..6 {
            t[offset + i] = 3.0 + i as f64 * 0.5;
        }
        t
    }

    #[test]
    fn finds_known_shift() {
        let reference: Vec<f64> = pattern_at(10, 40)[8..24].to_vec();
        let shifted = pattern_at(13, 40); // pattern moved +3
        let (shift, corr) = best_shift(&shifted, &reference, 8, 6).unwrap();
        assert_eq!(shift, 3);
        assert!(corr > 0.99);
    }

    #[test]
    fn zero_shift_for_identical() {
        let t = pattern_at(10, 40);
        let reference = t[8..24].to_vec();
        let (shift, corr) = best_shift(&t, &reference, 8, 6).unwrap();
        assert_eq!(shift, 0);
        assert!(corr > 0.999);
    }

    #[test]
    fn batch_alignment_removes_jitter() {
        // Windows with the pattern jittered by -2..=2; after alignment the
        // per-sample variance at the pattern collapses.
        let windows: Vec<Vec<f64>> = (0..40).map(|i| pattern_at(10 + (i % 5), 48)).collect();
        let (aligned, shifts) = align_to_mean(&windows, 4).unwrap();
        assert_eq!(aligned.len(), 40);
        assert!(shifts.iter().any(|&s| s != 0));
        // All aligned windows identical (noiseless synthetic data).
        for w in &aligned[1..] {
            for (a, b) in w.iter().zip(&aligned[0]) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn error_paths() {
        assert!(matches!(
            best_shift(&[1.0, 2.0], &[], 0, 1),
            Err(AlignError::BadReference { .. })
        ));
        assert!(matches!(
            best_shift(&[1.0], &[1.0, 2.0], 0, 1),
            Err(AlignError::BadReference { .. })
        ));
        // Shift window entirely out of range.
        assert!(matches!(
            best_shift(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], 2, 0),
            Err(AlignError::EmptyWindow)
        ));
    }

    #[test]
    fn empty_batch_is_fine() {
        let (a, s) = align_to_mean(&[], 4).unwrap();
        assert!(a.is_empty() && s.is_empty());
    }
}
