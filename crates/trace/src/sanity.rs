//! Robust sanity statistics for degraded acquisitions: finiteness checks,
//! median / median-absolute-deviation (MAD) outlier detection, and a robust
//! per-trace noise estimate.
//!
//! These are the building blocks of the self-healing attack driver
//! (`reveal-attack`'s `robust` module): burst lengths and ladder-window
//! levels are screened with MAD outlier flags, and the noise estimate feeds
//! the confidence derating that gates the hint-degradation ladder. MAD is
//! used instead of mean/σ throughout because a single glitch spike or a
//! merged burst would drag a moment-based screen past its own outliers.

use crate::segment::SegmentError;

/// The consistency constant making MAD estimate σ for Gaussian data.
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// Rejects empty or NaN/infinity-containing traces with a typed error.
///
/// # Errors
///
/// [`SegmentError::EmptyTrace`] on empty input,
/// [`SegmentError::NonFiniteSample`] (with the first offending index) on
/// NaN or infinite samples.
pub fn check_finite(samples: &[f64]) -> Result<(), SegmentError> {
    if samples.is_empty() {
        return Err(SegmentError::EmptyTrace);
    }
    match samples.iter().position(|s| !s.is_finite()) {
        Some(i) => Err(SegmentError::NonFiniteSample(i)),
        None => Ok(()),
    }
}

/// The median of a slice (0.0 for an empty slice). Even lengths average the
/// two central order statistics.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

/// The `p`-th percentile (`0.0 ≤ p ≤ 100.0`, clamped; a NaN `p` is treated
/// as the median request) of a slice by linear interpolation between order
/// statistics (0.0 for an empty slice). `percentile(xs, 50.0)` agrees with
/// [`median`] for every length; the `p = 0` / `p = 100` extremes return
/// the exact minimum / maximum order statistic with no interpolation
/// arithmetic in between.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    // A NaN p would poison the rank arithmetic below (NaN survives clamp);
    // the least surprising robust reading of "no particular percentile" is
    // the median.
    let p = if p.is_nan() {
        50.0
    } else {
        p.clamp(0.0, 100.0)
    };
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let last = sorted.len() - 1;
    if last == 0 || p == 0.0 {
        return sorted[0];
    }
    if p == 100.0 {
        return sorted[last];
    }
    let rank = (p / 100.0) * last as f64;
    // p < 100 keeps rank < last, so hi is always in bounds.
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// The median absolute deviation from the median (0.0 for an empty slice).
pub fn median_abs_deviation(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let med = median(xs);
    let deviations: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&deviations)
}

/// Flags entries whose robust z-score `|x − median| / (MAD·1.4826)` exceeds
/// `k`. The MAD is floored at `scale_floor` so an (almost) constant
/// population does not flag every harmless wiggle.
pub fn mad_outlier_flags(xs: &[f64], k: f64, scale_floor: f64) -> Vec<bool> {
    let med = median(xs);
    let scale = (median_abs_deviation(xs) * MAD_TO_SIGMA).max(scale_floor);
    xs.iter().map(|x| (x - med).abs() > k * scale).collect()
}

/// Robust estimate of the white-noise σ riding on a trace: the MAD of the
/// first differences, scaled to σ (differencing doubles the noise variance
/// and suppresses the slow signal component, so glitches and bursts barely
/// move it).
pub fn robust_noise_sigma(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let diffs: Vec<f64> = samples.windows(2).map(|w| w[1] - w[0]).collect();
    median_abs_deviation(&diffs) * MAD_TO_SIGMA / std::f64::consts::SQRT_2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_finite_catches_degenerate_inputs() {
        assert_eq!(check_finite(&[]), Err(SegmentError::EmptyTrace));
        assert_eq!(
            check_finite(&[1.0, f64::NAN]),
            Err(SegmentError::NonFiniteSample(1))
        );
        assert_eq!(
            check_finite(&[f64::INFINITY]),
            Err(SegmentError::NonFiniteSample(0))
        );
        assert_eq!(check_finite(&[0.0, -1.0]), Ok(()));
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 10.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates_and_matches_median() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), median(&xs));
        // rank 0.25·3 = 0.75 → 1.0 + 0.75·(2.0 − 1.0).
        assert_eq!(percentile(&xs, 25.0), 1.75);
        // Out-of-range p clamps instead of panicking.
        assert_eq!(percentile(&xs, -5.0), 1.0);
        assert_eq!(percentile(&xs, 400.0), 4.0);
        let odd = [9.0, 5.0, 1.0];
        assert_eq!(percentile(&odd, 50.0), median(&odd));
    }

    #[test]
    fn percentile_edge_cases_are_explicit() {
        // Empty slice: the documented 0.0 sentinel, at every p.
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 100.0), 0.0);
        assert_eq!(percentile(&[], f64::NAN), 0.0);
        // Single element: that element, at every p including the extremes.
        for p in [0.0, 13.7, 50.0, 100.0, -3.0, 250.0, f64::NAN] {
            assert_eq!(percentile(&[42.5], p), 42.5);
        }
        // p = 0 / p = 100 are the exact order-statistic extremes.
        let xs = [2.0, -7.5, 11.0, 0.25];
        assert_eq!(percentile(&xs, 0.0), -7.5);
        assert_eq!(percentile(&xs, 100.0), 11.0);
        // NaN p degrades to the median instead of poisoning the rank.
        assert_eq!(percentile(&xs, f64::NAN), median(&xs));
        // Infinite p clamps like any out-of-range value.
        assert_eq!(percentile(&xs, f64::INFINITY), 11.0);
        assert_eq!(percentile(&xs, f64::NEG_INFINITY), -7.5);
        // Two elements interpolate linearly across the whole range.
        assert_eq!(percentile(&[10.0, 20.0], 25.0), 12.5);
        assert_eq!(percentile(&[10.0, 20.0], 75.0), 17.5);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        let xs = [10.0, 10.1, 9.9, 10.0, 1000.0];
        assert!(median_abs_deviation(&xs) < 0.2);
        let flags = mad_outlier_flags(&xs, 6.0, 1e-9);
        assert_eq!(flags, vec![false, false, false, false, true]);
    }

    #[test]
    fn mad_floor_suppresses_constant_population_noise() {
        let xs = [5.0, 5.0 + 1e-12, 5.0 - 1e-12, 5.0];
        let flags = mad_outlier_flags(&xs, 6.0, 0.01);
        assert!(flags.iter().all(|f| !f));
    }

    #[test]
    fn noise_sigma_tracks_injected_noise() {
        // Deterministic pseudo-noise on a slow ramp: the estimate must see
        // the fast component, not the ramp.
        let noisy: Vec<f64> = (0..4000u64)
            .map(|i| {
                let slow = i as f64 * 0.001;
                // splitmix64-style finalizer: adjacent indices decorrelate.
                let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let fast = (z % 1000) as f64 / 1000.0 - 0.5;
                slow + fast * 0.4
            })
            .collect();
        let sigma = robust_noise_sigma(&noisy);
        // Uniform(-0.2, 0.2) has σ ≈ 0.115.
        assert!(sigma > 0.05 && sigma < 0.25, "sigma {sigma}");
        assert_eq!(robust_noise_sigma(&[1.0]), 0.0);
        // Scaling the noise scales the estimate.
        let double: Vec<f64> = noisy.iter().map(|x| x * 2.0).collect();
        assert!(robust_noise_sigma(&double) > 1.5 * sigma);
    }
}
