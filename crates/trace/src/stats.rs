//! Streaming statistics and covariance estimation for template building.

/// Welford's online mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use reveal_trace::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`; 0 for fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard deviation from the population variance.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Merges another accumulator (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

/// A dense symmetric covariance estimate over `d` dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Covariance {
    dim: usize,
    count: u64,
    mean: Vec<f64>,
    /// Upper-triangular co-moment accumulation, row-major full matrix for
    /// simplicity.
    comoment: Vec<f64>,
}

impl Covariance {
    /// Creates an accumulator of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            count: 0,
            mean: vec![0.0; dim],
            comoment: vec![0.0; dim * dim],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    pub fn push(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        self.count += 1;
        let n = self.count as f64;
        let mut delta = vec![0.0; self.dim];
        for i in 0..self.dim {
            delta[i] = x[i] - self.mean[i];
            self.mean[i] += delta[i] / n;
        }
        for i in 0..self.dim {
            let d2_i = x[i] - self.mean[i];
            for j in 0..self.dim {
                self.comoment[i * self.dim + j] += delta[j] * d2_i;
            }
        }
    }

    /// The mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The sample covariance matrix (row-major), dividing by `n - 1`.
    ///
    /// Returns the zero matrix for fewer than 2 observations.
    pub fn sample_covariance(&self) -> Vec<f64> {
        if self.count < 2 {
            return vec![0.0; self.dim * self.dim];
        }
        let denom = (self.count - 1) as f64;
        self.comoment.iter().map(|c| c / denom).collect()
    }
}

/// Pearson correlation between two equal-length slices (0 when degenerate).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation inputs must match in length");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.population_variance(), 0.0);
        s.push(1.0);
        assert_eq!(s.mean(), 1.0);
        assert_eq!(s.sample_variance(), 0.0);
        s.push(3.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.sample_variance(), 2.0);
        assert_eq!(s.population_variance(), 1.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.population_variance() - all.population_variance()).abs() < 1e-10);
    }

    #[test]
    fn covariance_matches_manual() {
        // Two perfectly correlated dimensions.
        let mut c = Covariance::new(2);
        for i in 0..10 {
            let x = i as f64;
            c.push(&[x, 2.0 * x + 1.0]);
        }
        let cov = c.sample_covariance();
        // var(x) over 0..9 with n-1: 9.166..
        let var_x = cov[0];
        assert!((var_x - 55.0 / 6.0).abs() < 1e-9);
        assert!(
            (cov[1] - 2.0 * var_x).abs() < 1e-9,
            "cov(x, 2x+1) = 2 var(x)"
        );
        assert!((cov[3] - 4.0 * var_x).abs() < 1e-9);
        assert_eq!(cov[1], cov[2], "symmetric");
        assert!((c.mean()[0] - 4.5).abs() < 1e-12);
    }

    #[test]
    fn correlation_known_values() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert!((pearson_correlation(&a, &up) - 1.0).abs() < 1e-12);
        assert!((pearson_correlation(&a, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson_correlation(&a, &flat), 0.0);
    }

    proptest! {
        #[test]
        fn prop_welford_matches_two_pass(data in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = RunningStats::new();
            for &x in &data {
                s.push(x);
            }
            let n = data.len() as f64;
            let mean = data.iter().sum::<f64>() / n;
            let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!((s.population_variance() - var).abs() < 1e-4 * (1.0 + var));
        }

        #[test]
        fn prop_correlation_bounded(
            a in proptest::collection::vec(-100.0f64..100.0, 3..50),
            b in proptest::collection::vec(-100.0f64..100.0, 3..50),
        ) {
            let len = a.len().min(b.len());
            let r = pearson_correlation(&a[..len], &b[..len]);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }
}
