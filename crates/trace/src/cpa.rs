//! Correlation power analysis (CPA) — the classic *multi-trace* attack, as
//! a baseline. The paper's core observation (§II-B) is that CPA-style
//! accumulation cannot touch SEAL's encryption: the sampled coefficients are
//! fresh for every encryption, so there is no fixed secret for correlations
//! to accumulate against — which is exactly why the attack must work from a
//! single trace.

use reveal_par::simd;
use std::fmt;

/// Errors from CPA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpaError {
    /// No traces were supplied.
    NoTraces,
    /// Trace lengths disagree.
    RaggedTraces,
    /// A hypothesis row length disagrees with the trace count.
    HypothesisMismatch { expected: usize, got: usize },
    /// No candidates were supplied.
    NoCandidates,
}

impl fmt::Display for CpaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpaError::NoTraces => write!(f, "CPA needs at least one trace"),
            CpaError::RaggedTraces => write!(f, "traces must have equal length"),
            CpaError::HypothesisMismatch { expected, got } => {
                write!(f, "hypothesis has {got} entries for {expected} traces")
            }
            CpaError::NoCandidates => write!(f, "CPA needs at least one candidate"),
        }
    }
}

impl std::error::Error for CpaError {}

/// The CPA score of one candidate: its peak absolute correlation and where
/// it occurred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpaScore {
    /// Candidate index (into the hypothesis list).
    pub candidate: usize,
    /// Peak `|ρ|` over all samples.
    pub peak_correlation: f64,
    /// Sample index of the peak.
    pub peak_sample: usize,
}

/// One sample column with its correlation statistics precomputed: every
/// candidate shares the same column means and variances, so they are hoisted
/// out of the per-candidate sweep.
struct CpaColumn {
    values: Vec<f64>,
    mean: f64,
    var: f64,
}

/// Cost model for gathering + summarizing one column (units: traces).
static COLUMN_COST: reveal_par::CostModel = reveal_par::CostModel::new("cpa.column.gather", 10.0);

/// Cost model for one candidate's correlation sweep (units: `len · traces`
/// multiply-adds).
static CANDIDATE_COST: reveal_par::CostModel =
    reveal_par::CostModel::new("cpa.candidate.sweep", 2.0);

/// Runs CPA: for every candidate `c`, correlates its per-trace leakage
/// hypothesis `hypotheses[c]` against every sample column of `traces`, and
/// scores the candidate by its peak absolute correlation.
///
/// Returns the scores sorted best-first.
///
/// # Errors
///
/// Fails on empty/ragged inputs.
pub fn cpa_rank(traces: &[Vec<f64>], hypotheses: &[Vec<f64>]) -> Result<Vec<CpaScore>, CpaError> {
    if traces.is_empty() {
        return Err(CpaError::NoTraces);
    }
    if hypotheses.is_empty() {
        return Err(CpaError::NoCandidates);
    }
    let len = traces[0].len();
    if traces.iter().any(|t| t.len() != len) {
        return Err(CpaError::RaggedTraces);
    }
    for h in hypotheses {
        if h.len() != traces.len() {
            return Err(CpaError::HypothesisMismatch {
                expected: traces.len(),
                got: h.len(),
            });
        }
    }
    // Column-major view of the traces for per-sample correlation; the
    // transpose is parallel over sample columns (each column is independent).
    // Each column's mean and centered variance are hoisted here, once: the
    // old per-candidate `pearson_correlation` recomputed them for every
    // candidate — O(candidates · samples · traces) redundant passes.
    let columns: Vec<CpaColumn> =
        reveal_par::par_map_index_modeled(len, &COLUMN_COST, traces.len() as u64, |s| {
            let values: Vec<f64> = traces.iter().map(|t| t[s]).collect();
            let mean = simd::sum(&values) / values.len() as f64;
            let var = simd::centered_dot(&values, mean, &values, mean);
            CpaColumn { values, mean, var }
        });
    // One candidate's correlation sweep is independent of every other's, so
    // candidates fan out across threads; scores come back in candidate order
    // and the later sort is stable, keeping the ranking deterministic. A
    // candidate costs `len · traces.len()` covariance multiply-adds, which
    // is what the cost model sizes workers and claims from.
    let units = (len * traces.len()) as u64;
    let mut scores: Vec<CpaScore> =
        reveal_par::par_map_index_modeled(hypotheses.len(), &CANDIDATE_COST, units, |candidate| {
            let hyp = &hypotheses[candidate];
            let mh = simd::sum(hyp) / hyp.len() as f64;
            let vh = simd::centered_dot(hyp, mh, hyp, mh);
            let mut peak = 0.0f64;
            let mut peak_sample = 0usize;
            if vh > 0.0 {
                let sh = vh.sqrt();
                for (s, col) in columns.iter().enumerate() {
                    if col.var == 0.0 {
                        // A constant column correlates with nothing
                        // (`pearson_correlation` convention: ρ = 0).
                        continue;
                    }
                    let cov = simd::centered_dot(&col.values, col.mean, hyp, mh);
                    let r = (cov / (col.var.sqrt() * sh)).abs();
                    if r > peak {
                        peak = r;
                        peak_sample = s;
                    }
                }
            }
            CpaScore {
                candidate,
                peak_correlation: peak,
                peak_sample,
            }
        });
    scores.sort_by(|a, b| {
        b.peak_correlation
            .partial_cmp(&a.peak_correlation)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(scores)
}

/// The margin between the best and second-best candidate — a CPA attack is
/// considered successful when the correct candidate's peak clearly separates
/// from the rest.
pub fn distinguishing_margin(scores: &[CpaScore]) -> f64 {
    match scores {
        [] => 0.0,
        [_] => f64::INFINITY,
        [a, b, ..] => a.peak_correlation - b.peak_correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic device: leakage = hw(secret ^ input) at sample 7.
    fn synth_traces(secret: u8, inputs: &[u8], noise: f64) -> Vec<Vec<f64>> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let mut t = vec![1.0; 16];
                let hw = (secret ^ x).count_ones() as f64;
                t[7] += 0.3 * hw;
                // Deterministic pseudo-noise.
                for (s, v) in t.iter_mut().enumerate() {
                    *v += noise * ((i * 31 + s * 17) as f64).sin();
                }
                t
            })
            .collect()
    }

    fn hypotheses_for(inputs: &[u8]) -> Vec<Vec<f64>> {
        (0u16..256)
            .map(|cand| {
                inputs
                    .iter()
                    .map(|&x| ((cand as u8) ^ x).count_ones() as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn recovers_fixed_secret_from_many_traces() {
        let secret = 0xA7u8;
        let inputs: Vec<u8> = (0..200u32).map(|i| (i * 37 + 11) as u8).collect();
        let traces = synth_traces(secret, &inputs, 0.2);
        let scores = cpa_rank(&traces, &hypotheses_for(&inputs)).unwrap();
        // Under |ρ| the complement key is the classic HW ghost peak: the top
        // two candidates are the secret and its bitwise complement.
        let top2 = [scores[0].candidate, scores[1].candidate];
        assert!(top2.contains(&(secret as usize)), "top2 {top2:?}");
        assert!(top2.contains(&(!secret as usize)), "top2 {top2:?}");
        assert_eq!(scores[0].peak_sample, 7);
        // Clear separation from the third candidate.
        assert!(scores[1].peak_correlation - scores[2].peak_correlation > 0.1);
    }

    #[test]
    fn fails_when_secret_changes_every_trace() {
        // The RevEAL situation: a fresh secret per trace — correlations
        // cannot accumulate, no candidate distinguishes.
        let inputs: Vec<u8> = (0..200u32).map(|i| (i * 37 + 11) as u8).collect();
        let traces: Vec<Vec<f64>> = inputs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let fresh_secret = (i * 73 + 5) as u8; // changes per trace
                synth_traces(fresh_secret, &[x], 0.2).remove(0)
            })
            .collect();
        let scores = cpa_rank(&traces, &hypotheses_for(&inputs)).unwrap();
        // Peak correlations stay at the noise floor and the margin vanishes.
        assert!(
            scores[0].peak_correlation < 0.35,
            "no candidate should stand out, got {}",
            scores[0].peak_correlation
        );
        assert!(distinguishing_margin(&scores) < 0.05);
    }

    #[test]
    fn more_traces_sharpen_the_distinguisher() {
        let secret = 0x3Cu8;
        let margin_at = |count: usize| {
            let inputs: Vec<u8> = (0..count as u32).map(|i| (i * 53 + 7) as u8).collect();
            let traces = synth_traces(secret, &inputs, 1.0);
            let scores = cpa_rank(&traces, &hypotheses_for(&inputs)).unwrap();
            (scores[0].candidate, scores[0].peak_correlation)
        };
        let (_, weak) = margin_at(24);
        let (best_many, strong) = margin_at(400);
        assert_eq!(best_many, secret as usize);
        // Correlation estimates concentrate with more traces; the spurious
        // peak level drops, the true peak stays.
        assert!(strong > 0.2);
        let _ = weak; // small-sample case may or may not succeed — by design
    }

    #[test]
    fn parallel_ranking_is_thread_count_invariant() {
        let secret = 0x5Au8;
        let inputs: Vec<u8> = (0..120u32).map(|i| (i * 29 + 3) as u8).collect();
        let traces = synth_traces(secret, &inputs, 0.4);
        let hyps = hypotheses_for(&inputs);
        let reference = reveal_par::with_threads(1, || cpa_rank(&traces, &hyps).unwrap());
        for threads in [2, 4, 8] {
            let ranked = reveal_par::with_threads(threads, || cpa_rank(&traces, &hyps).unwrap());
            assert_eq!(ranked, reference, "threads {threads}");
        }
    }

    #[test]
    fn error_paths() {
        assert_eq!(cpa_rank(&[], &[vec![]]), Err(CpaError::NoTraces));
        assert_eq!(cpa_rank(&[vec![1.0]], &[]), Err(CpaError::NoCandidates));
        assert_eq!(
            cpa_rank(&[vec![1.0], vec![1.0, 2.0]], &[vec![0.0, 1.0]]),
            Err(CpaError::RaggedTraces)
        );
        assert_eq!(
            cpa_rank(&[vec![1.0], vec![2.0]], &[vec![0.0]]),
            Err(CpaError::HypothesisMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn margin_edge_cases() {
        assert_eq!(distinguishing_margin(&[]), 0.0);
        let one = [CpaScore {
            candidate: 0,
            peak_correlation: 0.5,
            peak_sample: 1,
        }];
        assert_eq!(distinguishing_margin(&one), f64::INFINITY);
    }
}
