//! Point-of-interest (POI) selection for template attacks.
//!
//! The paper uses the sum-of-squared-differences (SOSD) method \[30\] to find
//! the samples with the highest inter-class leakage; SOST (the
//! variance-normalized variant) and plain inter-class variance are provided
//! for the ablation experiments.

use crate::trace::TraceSet;
use std::fmt;

/// The selection statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoiMethod {
    /// Sum of squared differences of class means (the paper's choice).
    Sosd,
    /// SOSD normalized by the summed class variances (a T-test statistic).
    Sost,
    /// Variance of the class means.
    MeanVariance,
}

/// Errors from POI selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoiError {
    /// Fewer than two classes in the profiling set.
    NotEnoughClasses(usize),
    /// The profiling set was empty.
    EmptySet,
}

impl fmt::Display for PoiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoiError::NotEnoughClasses(n) => {
                write!(f, "POI selection needs at least 2 classes, got {n}")
            }
            PoiError::EmptySet => write!(f, "POI selection on an empty trace set"),
        }
    }
}

impl std::error::Error for PoiError {}

/// Computes the per-sample selection statistic over a labelled trace set.
///
/// # Errors
///
/// Fails when the set is empty or has fewer than two labels.
pub fn leakage_statistic(set: &TraceSet, method: PoiMethod) -> Result<Vec<f64>, PoiError> {
    if set.is_empty() {
        return Err(PoiError::EmptySet);
    }
    let labels = set.labels();
    if labels.len() < 2 {
        return Err(PoiError::NotEnoughClasses(labels.len()));
    }
    let len = set.trace_len();
    let class_stats: Vec<(Vec<f64>, Vec<f64>)> = labels
        .iter()
        .map(|&l| {
            let sub = set.with_label(l);
            (sub.mean(), sub.variance())
        })
        .collect();

    let mut stat = vec![0.0; len];
    match method {
        PoiMethod::Sosd => {
            for i in 0..class_stats.len() {
                for j in i + 1..class_stats.len() {
                    for t in 0..len {
                        let d = class_stats[i].0[t] - class_stats[j].0[t];
                        stat[t] += d * d;
                    }
                }
            }
        }
        PoiMethod::Sost => {
            for i in 0..class_stats.len() {
                for j in i + 1..class_stats.len() {
                    for t in 0..len {
                        let d = class_stats[i].0[t] - class_stats[j].0[t];
                        let v = class_stats[i].1[t] + class_stats[j].1[t];
                        stat[t] += d * d / v.max(1e-12);
                    }
                }
            }
        }
        PoiMethod::MeanVariance => {
            let k = class_stats.len() as f64;
            for t in 0..len {
                let grand = class_stats.iter().map(|(m, _)| m[t]).sum::<f64>() / k;
                stat[t] = class_stats
                    .iter()
                    .map(|(m, _)| (m[t] - grand).powi(2))
                    .sum::<f64>()
                    / k;
            }
        }
    }
    Ok(stat)
}

/// Selects up to `count` POIs: the highest-statistic samples subject to a
/// minimum spacing (to avoid redundant neighbours), returned in ascending
/// index order.
///
/// # Errors
///
/// Propagates statistic-computation failures.
pub fn select_pois(
    set: &TraceSet,
    method: PoiMethod,
    count: usize,
    min_spacing: usize,
) -> Result<Vec<usize>, PoiError> {
    let stat = leakage_statistic(set, method)?;
    Ok(select_pois_from_statistic(&stat, count, min_spacing))
}

/// Greedy top-k selection with spacing on a precomputed statistic.
pub fn select_pois_from_statistic(stat: &[f64], count: usize, min_spacing: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..stat.len()).collect();
    order.sort_by(|&a, &b| {
        stat[b]
            .partial_cmp(&stat[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut chosen: Vec<usize> = Vec::with_capacity(count);
    for idx in order {
        if chosen.len() >= count {
            break;
        }
        if chosen
            .iter()
            .all(|&c| c.abs_diff(idx) >= min_spacing.max(1))
        {
            chosen.push(idx);
        }
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    /// Two classes that differ only at samples 5 and 20.
    fn two_class_set() -> TraceSet {
        let mut set = TraceSet::new();
        for rep in 0..20 {
            let jitter = (rep as f64) * 1e-3;
            let mut a = vec![1.0 + jitter; 32];
            let mut b = vec![1.0 - jitter; 32];
            a[5] = 4.0;
            b[5] = 0.0;
            a[20] = 3.0;
            b[20] = 1.0;
            set.push(Trace::labelled(a, 0));
            set.push(Trace::labelled(b, 1));
        }
        set
    }

    #[test]
    fn sosd_peaks_at_discriminating_samples() {
        let set = two_class_set();
        let stat = leakage_statistic(&set, PoiMethod::Sosd).unwrap();
        let max_idx = stat
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, 5);
        assert!(stat[20] > stat[0] * 100.0);
    }

    #[test]
    fn all_methods_find_the_pois() {
        let set = two_class_set();
        for method in [PoiMethod::Sosd, PoiMethod::Sost, PoiMethod::MeanVariance] {
            let pois = select_pois(&set, method, 2, 3).unwrap();
            assert_eq!(pois, vec![5, 20], "method {method:?}");
        }
    }

    #[test]
    fn spacing_is_respected() {
        // A single wide peak: spacing forces picks apart.
        let mut stat = vec![0.0; 50];
        for (i, s) in stat.iter_mut().enumerate().take(30).skip(10) {
            *s = 100.0 - (i as f64 - 20.0).abs();
        }
        let pois = select_pois_from_statistic(&stat, 3, 5);
        assert_eq!(pois.len(), 3);
        for w in pois.windows(2) {
            assert!(w[1] - w[0] >= 5);
        }
        assert!(pois.contains(&20));
    }

    #[test]
    fn requesting_more_pois_than_available() {
        let stat = vec![1.0, 2.0, 3.0];
        let pois = select_pois_from_statistic(&stat, 10, 1);
        assert_eq!(pois, vec![0, 1, 2]);
    }

    #[test]
    fn errors_on_degenerate_sets() {
        assert_eq!(
            leakage_statistic(&TraceSet::new(), PoiMethod::Sosd),
            Err(PoiError::EmptySet)
        );
        let mut one_class = TraceSet::new();
        one_class.push(Trace::labelled(vec![1.0; 4], 7));
        assert_eq!(
            leakage_statistic(&one_class, PoiMethod::Sosd),
            Err(PoiError::NotEnoughClasses(1))
        );
        let mut unlabelled = TraceSet::new();
        unlabelled.push(Trace::new(vec![1.0; 4]));
        assert_eq!(
            leakage_statistic(&unlabelled, PoiMethod::Sosd),
            Err(PoiError::NotEnoughClasses(0))
        );
    }

    #[test]
    fn sost_downweights_noisy_samples() {
        // Sample 3: big mean gap but huge variance. Sample 7: smaller gap,
        // tiny variance. SOST must rank 7 above 3.
        let mut set = TraceSet::new();
        for rep in 0..40 {
            let noise = if rep % 2 == 0 { 3.0 } else { -3.0 };
            let mut a = vec![0.0; 10];
            let mut b = vec![0.0; 10];
            a[3] = 2.0 + noise;
            b[3] = -2.0 + noise;
            a[7] = 0.5 + 0.01 * noise;
            b[7] = -0.5 + 0.01 * noise;
            set.push(Trace::labelled(a, 0));
            set.push(Trace::labelled(b, 1));
        }
        let sost = leakage_statistic(&set, PoiMethod::Sost).unwrap();
        assert!(sost[7] > sost[3], "sost[7]={} sost[3]={}", sost[7], sost[3]);
    }
}
