//! Test-vector leakage assessment (TVLA): the standard Welch t-test
//! methodology for certifying (or failing) an implementation's side-channel
//! posture — fixed-class vs random-class traces, per-sample t statistics,
//! fail when |t| exceeds the conventional 4.5 threshold.
//!
//! Used here to grade the sampler variants of §V-A the way an evaluation
//! lab would.

use crate::stats::RunningStats;
use std::fmt;

/// The conventional TVLA pass/fail threshold.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// Errors from the assessment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TvlaError {
    /// One of the groups has fewer than two traces.
    NotEnoughTraces { fixed: usize, random: usize },
    /// Trace lengths disagree.
    RaggedTraces,
}

impl fmt::Display for TvlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TvlaError::NotEnoughTraces { fixed, random } => {
                write!(
                    f,
                    "need >= 2 traces per group, got {fixed} fixed / {random} random"
                )
            }
            TvlaError::RaggedTraces => write!(f, "traces must have equal length"),
        }
    }
}

impl std::error::Error for TvlaError {}

/// The result of a fixed-vs-random assessment.
#[derive(Debug, Clone, PartialEq)]
pub struct TvlaResult {
    /// Per-sample Welch t statistics.
    pub t_statistics: Vec<f64>,
    /// Samples whose |t| exceeds the threshold.
    pub failing_samples: Vec<usize>,
    /// The largest |t| observed.
    pub max_abs_t: f64,
}

impl TvlaResult {
    /// Whether the implementation passes (no sample above threshold).
    pub fn passes(&self) -> bool {
        self.failing_samples.is_empty()
    }
}

/// Runs the fixed-vs-random Welch t-test.
///
/// # Errors
///
/// Fails on group sizes below 2 or ragged trace lengths.
pub fn welch_t_test(fixed: &[Vec<f64>], random: &[Vec<f64>]) -> Result<TvlaResult, TvlaError> {
    if fixed.len() < 2 || random.len() < 2 {
        return Err(TvlaError::NotEnoughTraces {
            fixed: fixed.len(),
            random: random.len(),
        });
    }
    let len = fixed[0].len();
    if fixed.iter().chain(random).any(|t| t.len() != len) {
        return Err(TvlaError::RaggedTraces);
    }
    let mut t_statistics = Vec::with_capacity(len);
    let mut failing_samples = Vec::new();
    let mut max_abs_t = 0.0f64;
    for s in 0..len {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for t in fixed {
            a.push(t[s]);
        }
        for t in random {
            b.push(t[s]);
        }
        let va = a.sample_variance() / a.count() as f64;
        let vb = b.sample_variance() / b.count() as f64;
        let denom = (va + vb).sqrt();
        let t_stat = if denom > 0.0 {
            (a.mean() - b.mean()) / denom
        } else {
            0.0
        };
        if t_stat.abs() > TVLA_THRESHOLD {
            failing_samples.push(s);
        }
        max_abs_t = max_abs_t.max(t_stat.abs());
        t_statistics.push(t_stat);
    }
    Ok(TvlaResult {
        t_statistics,
        failing_samples,
        max_abs_t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_traces(count: usize, len: usize, level: f64, jitter: f64) -> Vec<Vec<f64>> {
        (0..count)
            .map(|i| {
                (0..len)
                    .map(|s| level + jitter * ((i * 13 + s * 7) as f64).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn identical_distributions_pass() {
        let fixed = flat_traces(50, 32, 1.0, 0.2);
        let random = flat_traces(50, 32, 1.0, 0.2);
        // Same deterministic generator → identical groups → t = 0.
        let r = welch_t_test(&fixed, &random).unwrap();
        assert!(r.passes(), "max |t| = {}", r.max_abs_t);
    }

    #[test]
    fn mean_shift_fails_at_the_right_sample() {
        let fixed = flat_traces(100, 32, 1.0, 0.1);
        let mut random = flat_traces(100, 32, 1.0, 0.1);
        for (i, t) in random.iter_mut().enumerate() {
            t[17] += 0.5 + 0.001 * (i as f64).sin();
        }
        let r = welch_t_test(&fixed, &random).unwrap();
        assert!(!r.passes());
        assert!(r.failing_samples.contains(&17));
        assert!(r.max_abs_t > TVLA_THRESHOLD);
        // Only the shifted sample fails.
        assert_eq!(r.failing_samples, vec![17]);
    }

    #[test]
    fn error_paths() {
        let one = flat_traces(1, 8, 1.0, 0.1);
        let two = flat_traces(2, 8, 1.0, 0.1);
        assert!(matches!(
            welch_t_test(&one, &two),
            Err(TvlaError::NotEnoughTraces {
                fixed: 1,
                random: 2
            })
        ));
        let ragged = vec![vec![1.0; 8], vec![1.0; 9]];
        assert!(matches!(
            welch_t_test(&ragged, &two),
            Err(TvlaError::RaggedTraces)
        ));
    }

    #[test]
    fn t_grows_with_sample_count() {
        // The same small effect becomes detectable with more traces.
        let effect = 0.05;
        let t_at = |count: usize| {
            let fixed = flat_traces(count, 4, 1.0, 0.2);
            let mut random = flat_traces(count, 4, 1.0, 0.2);
            for (i, t) in random.iter_mut().enumerate() {
                // Break the perfect symmetry so variances stay sane.
                t[2] += effect + 0.01 * ((i * 31) as f64).cos();
            }
            welch_t_test(&fixed, &random).unwrap().max_abs_t
        };
        assert!(t_at(400) > t_at(25));
    }
}
