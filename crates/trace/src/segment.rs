//! Trace segmentation: locating each coefficient's sampling window inside a
//! full encryption trace.
//!
//! §III-C of the paper: the distribution-function calls produce
//! "distinguishable and visible peaks" in the power trace, one per outer-loop
//! iteration, and those peaks are the start/end indicators for each
//! coefficient window. Because the distribution call is time-variant, a fixed
//! stride cannot work — the windows must be found from the trace itself.
//!
//! The detector smooths the trace with a moving average, thresholds it at
//! `μ + k·σ`, merges the resulting bursts, and emits one window per burst
//! (from the start of a burst to the start of the next).

use std::fmt;

/// Configuration of the peak-based segmenter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentConfig {
    /// Moving-average smoothing width in samples.
    pub smooth_window: usize,
    /// Threshold position between the robust low and high levels of the
    /// smoothed trace (0 = low level, 1 = high level). A mid-level
    /// threshold keeps working whatever fraction of the trace the bursts
    /// occupy — a mean+kσ rule does not.
    pub threshold_fraction: f64,
    /// Minimum burst length (samples) to count as a distribution-call peak.
    pub min_burst_len: usize,
    /// Bursts closer than this many samples are merged into one.
    pub merge_gap: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        Self {
            smooth_window: 16,
            threshold_fraction: 0.55,
            min_burst_len: 24,
            merge_gap: 16,
        }
    }
}

/// Errors from segmentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// The trace was empty.
    EmptyTrace,
    /// No burst exceeded the threshold.
    NoPeaksFound,
    /// The trace contains a NaN or infinite sample (acquisition glitch or a
    /// corrupted capture file); index of the first offender.
    NonFiniteSample(usize),
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::EmptyTrace => write!(f, "cannot segment an empty trace"),
            SegmentError::NoPeaksFound => write!(f, "no distribution-call peaks found"),
            SegmentError::NonFiniteSample(i) => {
                write!(f, "non-finite sample at index {i}")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

/// Reusable buffers for the segmentation fast path: the prefix-sum vector,
/// the bucket histogram, and the gather buffers of the order-statistic
/// selections in [`find_bursts_into`] / [`refine_burst_ends_into`]. One
/// scratch per worker amortizes ~2.5 MB of per-call allocation across a
/// whole capture campaign.
#[derive(Debug, Clone, Default)]
pub struct SegmentScratch {
    prefix: Vec<f64>,
    hist: Vec<u32>,
    hist_raw: Vec<u32>,
    hist2: Vec<u32>,
    gather: Vec<f64>,
    gather2: Vec<f64>,
    gather3: Vec<f64>,
    gather4: Vec<f64>,
}

impl SegmentScratch {
    /// An empty scratch (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Monotone total-order key of an `f64`: `a < b` numerically implies
/// `key(a) < key(b)` (IEEE-754 sign-magnitude flipped into two's
/// complement). `-0.0` orders just below `+0.0`; the two are numerically
/// interchangeable in every downstream use here, so the refinement keeps
/// the exact order-statistic semantics of the comparison-based selections.
#[inline]
fn total_order_key(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Bucket count per histogram level: 16 bits of the total order key at a
/// time (level one is sign + exponent + 4 mantissa bits; level two the next
/// 16 mantissa bits). Each table is 256 KiB of `u32`, held in
/// [`SegmentScratch`] and re-zeroed per call.
const NUM_BUCKETS: usize = 1 << 16;

/// Sub-refinement threshold: a rank-holding bucket larger than this gets a
/// second-level count over the next 16 key bits before gathering. The
/// second level costs a full extra pass, while gathering and
/// partial-sorting an N-element bucket costs only ~N log-ish work on a
/// fraction of the trace — so it only pays when a single bucket swallows
/// most of the trace (e.g. near-constant captures), not for the merely
/// peaked buckets (a third of the trace) that real power traces produce.
const SUB_CUTOFF: usize = 1 << 17;

/// The top 32 bits of the total order key: two histogram levels' worth of
/// bucket index, lexicographically ordered like the values themselves.
#[inline]
fn k32_of(x: f64) -> u32 {
    (total_order_key(x) >> 32) as u32
}

#[inline]
fn bucket_of(x: f64) -> usize {
    (total_order_key(x) >> 48) as usize
}

/// One rank-run endpoint resolved to a 32-bit key-prefix bucket.
#[derive(Clone, Copy, Default)]
struct Endpoint {
    rank: usize,
    b16: usize,
    before16: usize,
    count16: usize,
    /// First and last (inclusive) 32-bit key prefix of the refined bucket.
    low32: u32,
    high32: u32,
    /// Items with a key prefix strictly below `low32`.
    before32: usize,
}

/// Cumulative locate of sorted `ranks` (each below the item total) in a
/// level-one histogram: one sweep resolves every rank to its bucket and the
/// count strictly below it.
fn locate_endpoints(hist: &[u32], ranks: &[usize], eps: &mut [Endpoint]) {
    debug_assert!(ranks.windows(2).all(|w| w[0] <= w[1]));
    let mut seen = 0usize;
    let mut e = 0usize;
    'buckets: for (b, &c) in hist.iter().enumerate() {
        let next = seen + c as usize;
        while ranks[e] < next {
            eps[e] = Endpoint {
                rank: ranks[e],
                b16: b,
                before16: seen,
                count16: c as usize,
                ..Endpoint::default()
            };
            e += 1;
            if e == eps.len() {
                break 'buckets;
            }
        }
        seen = next;
    }
    debug_assert_eq!(e, eps.len(), "rank beyond item count");
}

/// Resolves an endpoint to 32-bit key-prefix granularity: with a
/// second-level count for its bucket, the exact sub-bucket holding the
/// rank; without one, the whole level-one bucket.
fn refine_endpoint(ep: &mut Endpoint, sub: Option<&[u32]>) {
    let base = (ep.b16 as u32) << 16;
    match sub {
        Some(h) => {
            let mut seen = ep.before16;
            for (s, &c) in h.iter().enumerate() {
                let next = seen + c as usize;
                if ep.rank < next {
                    ep.low32 = base | s as u32;
                    ep.high32 = ep.low32;
                    ep.before32 = seen;
                    return;
                }
                seen = next;
            }
            unreachable!("rank beyond sub-bucket counts")
        }
        None => {
            ep.low32 = base;
            ep.high32 = base | 0xFFFF;
            ep.before32 = ep.before16;
        }
    }
}

/// Partial-sorts a gathered key range into the sorted values of ranks
/// `lo_ep.rank ..= hi_ep.rank` (ascending).
fn extract_run(g: &mut [f64], lo_ep: &Endpoint, hi_ep: &Endpoint) -> Vec<f64> {
    let lo_idx = lo_ep.rank - lo_ep.before32;
    let hi_idx = hi_ep.rank - lo_ep.before32;
    g.select_nth_unstable_by_key(hi_idx, |&d| total_order_key(d));
    if lo_idx < hi_idx {
        g[..hi_idx].select_nth_unstable_by_key(lo_idx, |&d| total_order_key(d));
        g[lo_idx..hi_idx].sort_unstable_by_key(|&d| total_order_key(d));
    }
    g[lo_idx..=hi_idx].to_vec()
}

/// Which endpoint buckets need a second-level count: oversized ones, each
/// once, as a sentinel-padded array for branch-predictable per-item probes
/// (the mass of a peaked trace sits *in* these buckets, so the first
/// comparison usually hits).
fn oversized_buckets(eps: &[Endpoint]) -> ([usize; 4], usize) {
    let mut subs = [usize::MAX; 4];
    let mut len = 0usize;
    for ep in eps {
        if ep.count16 > SUB_CUTOFF && !subs[..len].contains(&ep.b16) {
            subs[len] = ep.b16;
            len += 1;
        }
    }
    (subs, len)
}

/// Slot of bucket `b` in a sentinel-padded [`oversized_buckets`] array, or
/// `usize::MAX` — unrolled so the per-item probe is a couple of predictable
/// compares instead of a loop.
#[inline]
fn slot4(b: usize, subs: &[usize; 4]) -> usize {
    if b == subs[0] {
        0
    } else if b == subs[1] {
        1
    } else if b == subs[2] {
        2
    } else if b == subs[3] {
        3
    } else {
        usize::MAX
    }
}

/// Exact sorted order-statistic *runs* `runs[i].0 ..= runs[i].1` (0-based,
/// non-decreasing across both runs, all below the item count) of a
/// re-iterable finite item stream. One shared counting pass (skipped when
/// the caller pre-filled `hist` with the level-one counts), one optional
/// second-level counting pass for oversized rank buckets, and one gather
/// pass for both runs together; only bucket-sized tails are ever
/// partial-sorted. Values are identical to sorting the whole stream and
/// slicing — the bucket key is a prefix of the monotone total order key.
fn select_rank_runs<I: Iterator<Item = f64>>(
    items: &impl Fn() -> I,
    runs: [(usize, usize); 2],
    hist: &mut Vec<u32>,
    hist2: &mut Vec<u32>,
    gathers: [&mut Vec<f64>; 2],
    hist_prefilled: bool,
) -> [Vec<f64>; 2] {
    if !hist_prefilled {
        hist.clear();
        hist.resize(NUM_BUCKETS, 0);
        for x in items() {
            hist[bucket_of(x)] += 1;
        }
    }
    let ranks = [runs[0].0, runs[0].1, runs[1].0, runs[1].1];
    let mut eps = [Endpoint::default(); 4];
    locate_endpoints(hist, &ranks, &mut eps);
    // Second-level counts for endpoints whose bucket is too big to gather.
    let (subs, n_subs) = oversized_buckets(&eps);
    if n_subs > 0 {
        hist2.clear();
        hist2.resize(n_subs * NUM_BUCKETS, 0);
        for x in items() {
            let k = k32_of(x);
            let slot = slot4((k >> 16) as usize, &subs);
            if slot != usize::MAX {
                hist2[slot * NUM_BUCKETS + (k & 0xFFFF) as usize] += 1;
            }
        }
    }
    for ep in &mut eps {
        let sub = subs[..n_subs]
            .iter()
            .position(|&sb| sb == ep.b16)
            .map(|slot| &hist2[slot * NUM_BUCKETS..(slot + 1) * NUM_BUCKETS]);
        refine_endpoint(ep, sub);
    }
    // Gather both runs' refined key ranges in one pass.
    let [g0, g1] = gathers;
    g0.clear();
    g1.clear();
    let range0 = (eps[0].low32, eps[1].high32);
    let range1 = (eps[2].low32, eps[3].high32);
    for x in items() {
        let k = k32_of(x);
        if k >= range0.0 && k <= range0.1 {
            g0.push(x);
        }
        if k >= range1.0 && k <= range1.1 {
            g1.push(x);
        }
    }
    [
        extract_run(g0, &eps[0], &eps[1]),
        extract_run(g1, &eps[2], &eps[3]),
    ]
}

/// Exact `k`-th order statistics (for `lo_rank <= hi_rank < samples.len()`)
/// of a finite slice — [`select_rank_runs`] over two width-one runs.
/// Returns values identical to sorting and indexing.
fn raw_percentiles(
    samples: &[f64],
    lo_rank: usize,
    hi_rank: usize,
    scratch: &mut SegmentScratch,
) -> (f64, f64) {
    let SegmentScratch {
        hist,
        hist2,
        gather,
        gather2,
        ..
    } = scratch;
    let items = || samples.iter().copied();
    let [lo_run, hi_run] = select_rank_runs(
        &items,
        [(lo_rank, lo_rank), (hi_rank, hi_rank)],
        hist,
        hist2,
        [gather, gather2],
        false,
    );
    (lo_run[0], hi_run[0])
}

/// The 5th and 95th percentile values of a non-empty finite slice, via two
/// linear-time selections instead of a full sort. A selection yields exactly
/// the k-th order statistic, so the returned *values* match the previous
/// sort-based implementation bit for bit — a full sort per trace was the
/// single largest cost of segmenting long captures. The hot path has since
/// moved on to the read-only histogram selection; this stays as the middle
/// rung the equivalence tests pin both ends against.
#[cfg_attr(not(test), allow(dead_code))]
fn percentiles_5_95(scratch: &mut [f64]) -> (f64, f64) {
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal);
    let lo_index = (scratch.len() - 1) * 5 / 100;
    let hi_index = (scratch.len() - 1) * 95 / 100;
    let (left, &mut hi, _) = scratch.select_nth_unstable_by(hi_index, cmp);
    // `lo_index < hi_index` whenever the indices differ, so the 5th
    // percentile lives in the left partition; when they coincide the two
    // order statistics are the same element.
    let lo = if lo_index == hi_index {
        hi
    } else {
        *left.select_nth_unstable_by(lo_index, cmp).1
    };
    (lo, hi)
}

/// The pre-fast-path percentile computation — a full sort per trace — kept
/// verbatim so the benchmark baseline measures what segmentation used to
/// cost. Returns the same values as [`percentiles_5_95`].
fn percentiles_5_95_sorted(scratch: &mut [f64]) -> (f64, f64) {
    scratch.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    (
        scratch[(scratch.len() - 1) * 5 / 100],
        scratch[(scratch.len() - 1) * 95 / 100],
    )
}

/// Moving-average smoothing (centered, edge-clamped).
///
/// # Errors
///
/// Fails on an empty trace or on NaN/infinite samples — a single NaN would
/// otherwise silently poison every averaged output around it.
pub fn smooth(samples: &[f64], window: usize) -> Result<Vec<f64>, SegmentError> {
    crate::sanity::check_finite(samples)?;
    if window <= 1 {
        return Ok(samples.to_vec());
    }
    let half = window / 2;
    let n = samples.len();
    // Prefix sums for O(n) averaging.
    let mut prefix = Vec::with_capacity(n + 1);
    let mut acc = 0.0;
    prefix.push(0.0);
    for &s in samples {
        acc += s;
        prefix.push(acc);
    }
    Ok((0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            (prefix[hi] - prefix[lo]) / (hi - lo) as f64
        })
        .collect())
}

/// The next representable `f64` toward `+∞` (finite, non-NaN input).
#[inline]
fn next_toward_pos_inf(x: f64) -> f64 {
    if x == 0.0 {
        return f64::from_bits(1); // smallest positive subnormal; covers -0.0
    }
    let bits = x.to_bits();
    if bits >> 63 == 0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// The next representable `f64` toward `-∞` (finite, non-NaN input).
#[inline]
fn next_toward_neg_inf(x: f64) -> f64 {
    -next_toward_pos_inf(-x)
}

/// The largest finite `d` with `d / denom <= threshold`, found by walking
/// ulps from `threshold * denom` (a step or two at most — the product is
/// already within rounding error of the exact boundary). IEEE division by a
/// positive constant is monotone non-decreasing, so `sum > boundary` is
/// *exactly* `sum / denom > threshold` — without performing the division.
fn diff_boundary(threshold: f64, denom: f64) -> f64 {
    let mut d = threshold * denom;
    while d / denom > threshold {
        d = next_toward_neg_inf(d);
    }
    loop {
        let up = next_toward_pos_inf(d);
        if up.is_finite() && up / denom <= threshold {
            d = up;
        } else {
            return d;
        }
    }
}

/// The combined rank-`rank` smoothed value out of the interior candidate
/// run plus the clamped-window edge values — exactly what sorting the
/// materialized smoothed trace and indexing at `rank` would return.
///
/// `cand_diffs` holds the interior windowed *sums* at interior ranks
/// `rank - edges ..= rank`, ascending; `edge_vals` the sorted edge values.
/// There are only `edges` edge elements, so the combined rank-`rank`
/// element must be one of these candidates: every interior element of rank
/// below the run is `<=` the first candidate, and every edge value strictly
/// below the first candidate sits among them — together they fill exactly
/// the combined ranks below `(rank - edges) + e_low`. What remains is the
/// `q`-th smallest of the merge of the remaining edges and the candidates.
fn combined_statistic(cand_diffs: &[f64], denom: f64, edge_vals: &[f64], edges: usize) -> f64 {
    let candidates: Vec<f64> = cand_diffs.iter().map(|&d| d / denom).collect();
    let e_low = edge_vals.iter().filter(|&&v| v < candidates[0]).count();
    let q = edges - e_low;
    let mut a = e_low;
    let mut b = 0usize;
    let take_edge = |a: usize, b: usize| {
        a < edge_vals.len() && (b >= candidates.len() || edge_vals[a] <= candidates[b])
    };
    for _ in 0..q {
        if take_edge(a, b) {
            a += 1;
        } else {
            b += 1;
        }
    }
    if take_edge(a, b) {
        edge_vals[a]
    } else {
        candidates[b]
    }
}

/// Finds the high-power bursts (distribution-call peaks).
///
/// # Errors
///
/// Fails on empty, non-finite, or burst-free (e.g. all-constant) traces.
pub fn find_bursts(
    samples: &[f64],
    config: &SegmentConfig,
) -> Result<Vec<(usize, usize)>, SegmentError> {
    find_bursts_into(samples, config, &mut SegmentScratch::new())
}

/// [`find_bursts`] with caller-provided scratch buffers, running entirely in
/// the diff domain: one prefix-sum pass (with the finiteness check fused
/// in), a histogram count over windowed sums, a gather for the two
/// percentile ranks, and a division-free threshold scan against an
/// ulp-exact boundary ([`diff_boundary`]). The smoothed trace is never
/// materialized and no per-element division happens, yet every burst index
/// is identical to [`find_bursts`]'s reference computation — the diff-to-
/// value map is monotone and the boundary is exact.
///
/// # Errors
///
/// Same as [`find_bursts`].
pub fn find_bursts_into(
    samples: &[f64],
    config: &SegmentConfig,
    scratch: &mut SegmentScratch,
) -> Result<Vec<(usize, usize)>, SegmentError> {
    let n = samples.len();
    if n == 0 {
        return Err(SegmentError::EmptyTrace);
    }
    let lo_rank = (n - 1) * 5 / 100;
    let hi_rank = (n - 1) * 95 / 100;
    if config.smooth_window <= 1 {
        // No smoothing: percentiles and scan run on the raw trace directly
        // (the reference path copies it; the values are the same).
        if let Some(i) = samples.iter().position(|s| !s.is_finite()) {
            return Err(SegmentError::NonFiniteSample(i));
        }
        let (lo, hi) = raw_percentiles(samples, lo_rank, hi_rank, scratch);
        return threshold_bursts(samples, lo, hi, config);
    }
    let half = config.smooth_window / 2;
    let edges = 2 * half;
    if n <= edges || lo_rank < edges || hi_rank + edges >= n || hi_rank < lo_rank + edges {
        // Trace too short for the diff-domain rank argument (both
        // percentile ranks must sit `edges` deep inside the interior run,
        // and their candidate runs must not straddle each other).
        // Such traces are cheap to smooth outright; results are identical.
        let smoothed = smooth(samples, config.smooth_window)?;
        let (lo, hi) = raw_percentiles(&smoothed, lo_rank, hi_rank, scratch);
        return threshold_bursts(&smoothed, lo, hi, config);
    }
    let interior = n - edges;
    let denom = (edges + 1) as f64;

    let SegmentScratch {
        prefix,
        hist,
        hist2,
        gather,
        gather2,
        ..
    } = scratch;
    // One pass builds the prefix sums (finiteness check fused in) *and*
    // counts the windowed sums into the level-one histogram: once the
    // running sum reaches index i >= edges, the diff at interior index
    // i - edges is `acc - prefix[i - edges]`.
    prefix.clear();
    prefix.reserve(n + 1);
    prefix.push(0.0);
    hist.clear();
    hist.resize(NUM_BUCKETS, 0);
    let mut acc = 0.0;
    for (i, &s) in samples.iter().enumerate() {
        if !s.is_finite() {
            return Err(SegmentError::NonFiniteSample(i));
        }
        acc += s;
        prefix.push(acc);
        if i >= edges {
            hist[bucket_of(acc - prefix[i - edges])] += 1;
        }
    }
    let prefix: &[f64] = prefix;
    // Clamped-window head/tail smoothed values — identical expressions to
    // [`smooth`], and only `edges` of them in total.
    let head: Vec<f64> = (0..half)
        .map(|i| (prefix[i + half + 1] - prefix[0]) / (i + half + 1) as f64)
        .collect();
    let tail: Vec<f64> = (n - half..n)
        .map(|i| {
            let lo = i - half;
            (prefix[n] - prefix[lo]) / (n - lo) as f64
        })
        .collect();
    let mut edge_vals: Vec<f64> = head.iter().chain(&tail).copied().collect();
    edge_vals.sort_unstable_by_key(|&v| total_order_key(v));
    // Both percentile candidate runs out of the diff domain in one shared
    // selection (the guard above keeps the runs disjoint and in-bounds).
    let diffs = || (0..interior).map(|j| prefix[j + edges + 1] - prefix[j]);
    let [lo_cands, hi_cands] = select_rank_runs(
        &diffs,
        [(lo_rank - edges, lo_rank), (hi_rank - edges, hi_rank)],
        hist,
        hist2,
        [gather, gather2],
        true,
    );
    let lo = combined_statistic(&lo_cands, denom, &edge_vals, edges);
    let hi = combined_statistic(&hi_cands, denom, &edge_vals, edges);
    if hi - lo < 1e-12 {
        return Err(SegmentError::NoPeaksFound);
    }
    let threshold = lo + config.threshold_fraction * (hi - lo);
    let boundary = diff_boundary(threshold, denom);
    let flags = head
        .iter()
        .map(|&v| v > threshold)
        .chain(diffs().map(|d| d > boundary))
        .chain(tail.iter().map(|&v| v > threshold));
    bursts_from_flags(flags, config)
}

/// [`find_bursts_into`] followed by [`refine_burst_ends_into`] with every
/// full-trace pass shared between the two stages: the prefix-sum pass also
/// counts both the diff-domain and raw level-one histograms, and the
/// second-level counting and gather passes serve all six rank endpoints
/// (two percentile candidate runs for the burst threshold, two single
/// ranks for the refinement levels) in single sweeps. Four passes over the
/// trace in total, against nine when the two stages run separately.
/// Returns exactly what the two-stage composition returns.
///
/// # Errors
///
/// Same as [`find_bursts`].
pub fn refined_bursts_into(
    samples: &[f64],
    config: &SegmentConfig,
    scratch: &mut SegmentScratch,
) -> Result<Vec<(usize, usize)>, SegmentError> {
    let n = samples.len();
    if n == 0 {
        return Err(SegmentError::EmptyTrace);
    }
    let lo_rank = (n - 1) * 5 / 100;
    let hi_rank = (n - 1) * 95 / 100;
    let half = config.smooth_window / 2;
    let edges = 2 * half;
    if config.smooth_window <= 1
        || n <= edges
        || lo_rank < edges
        || hi_rank + edges >= n
        || hi_rank < lo_rank + edges
    {
        // Degenerate geometry: compose the standalone stages (cheap here).
        let bursts = find_bursts_into(samples, config, scratch)?;
        return Ok(refine_burst_ends_into(samples, &bursts, config, scratch));
    }
    let interior = n - edges;
    let denom = (edges + 1) as f64;

    let SegmentScratch {
        prefix,
        hist,
        hist_raw,
        hist2,
        gather,
        gather2,
        gather3,
        gather4,
    } = scratch;
    // Pass 1: prefix sums (finiteness check fused) + both level-one counts.
    prefix.clear();
    prefix.reserve(n + 1);
    prefix.push(0.0);
    hist.clear();
    hist.resize(NUM_BUCKETS, 0);
    hist_raw.clear();
    hist_raw.resize(NUM_BUCKETS, 0);
    let mut acc = 0.0;
    for (i, &s) in samples.iter().enumerate() {
        if !s.is_finite() {
            return Err(SegmentError::NonFiniteSample(i));
        }
        acc += s;
        prefix.push(acc);
        hist_raw[bucket_of(s)] += 1;
        if i >= edges {
            hist[bucket_of(acc - prefix[i - edges])] += 1;
        }
    }
    let prefix: &[f64] = prefix;
    let head: Vec<f64> = (0..half)
        .map(|i| (prefix[i + half + 1] - prefix[0]) / (i + half + 1) as f64)
        .collect();
    let tail: Vec<f64> = (n - half..n)
        .map(|i| {
            let lo = i - half;
            (prefix[n] - prefix[lo]) / (n - lo) as f64
        })
        .collect();
    let mut edge_vals: Vec<f64> = head.iter().chain(&tail).copied().collect();
    edge_vals.sort_unstable_by_key(|&v| total_order_key(v));

    let diff_ranks = [lo_rank - edges, lo_rank, hi_rank - edges, hi_rank];
    let mut diff_eps = [Endpoint::default(); 4];
    locate_endpoints(hist, &diff_ranks, &mut diff_eps);
    let raw_ranks = [lo_rank, hi_rank];
    let mut raw_eps = [Endpoint::default(); 2];
    locate_endpoints(hist_raw, &raw_ranks, &mut raw_eps);

    // Pass 2 (only when some rank bucket is oversized): second-level counts
    // for both domains in one scan. `hist2` is segmented, diff slots first.
    let (diff_subs, n_diff) = oversized_buckets(&diff_eps);
    let (raw_subs, n_raw) = oversized_buckets(&raw_eps);
    let raw_base = n_diff * NUM_BUCKETS;
    if n_diff + n_raw > 0 {
        hist2.clear();
        hist2.resize((n_diff + n_raw) * NUM_BUCKETS, 0);
        for (i, &s) in samples.iter().enumerate() {
            let k = k32_of(s);
            let slot = slot4((k >> 16) as usize, &raw_subs);
            if slot != usize::MAX {
                hist2[raw_base + slot * NUM_BUCKETS + (k & 0xFFFF) as usize] += 1;
            }
            if i < interior {
                let k = k32_of(prefix[i + edges + 1] - prefix[i]);
                let slot = slot4((k >> 16) as usize, &diff_subs);
                if slot != usize::MAX {
                    hist2[slot * NUM_BUCKETS + (k & 0xFFFF) as usize] += 1;
                }
            }
        }
    }
    for ep in &mut diff_eps {
        let sub = diff_subs[..n_diff]
            .iter()
            .position(|&sb| sb == ep.b16)
            .map(|slot| &hist2[slot * NUM_BUCKETS..(slot + 1) * NUM_BUCKETS]);
        refine_endpoint(ep, sub);
    }
    for ep in &mut raw_eps {
        let sub = raw_subs[..n_raw]
            .iter()
            .position(|&sb| sb == ep.b16)
            .map(|slot| &hist2[raw_base + slot * NUM_BUCKETS..raw_base + (slot + 1) * NUM_BUCKETS]);
        refine_endpoint(ep, sub);
    }

    // Pass 3: gather all four refined key ranges in one scan.
    gather.clear();
    gather2.clear();
    gather3.clear();
    gather4.clear();
    let dr0 = (diff_eps[0].low32, diff_eps[1].high32);
    let dr1 = (diff_eps[2].low32, diff_eps[3].high32);
    let rr0 = (raw_eps[0].low32, raw_eps[0].high32);
    let rr1 = (raw_eps[1].low32, raw_eps[1].high32);
    for (i, &s) in samples.iter().enumerate() {
        let k = k32_of(s);
        if k >= rr0.0 && k <= rr0.1 {
            gather3.push(s);
        }
        if k >= rr1.0 && k <= rr1.1 {
            gather4.push(s);
        }
        if i < interior {
            let d = prefix[i + edges + 1] - prefix[i];
            let k = k32_of(d);
            if k >= dr0.0 && k <= dr0.1 {
                gather.push(d);
            }
            if k >= dr1.0 && k <= dr1.1 {
                gather2.push(d);
            }
        }
    }
    let lo_cands = extract_run(gather, &diff_eps[0], &diff_eps[1]);
    let hi_cands = extract_run(gather2, &diff_eps[2], &diff_eps[3]);
    let raw_lo = extract_run(gather3, &raw_eps[0], &raw_eps[0])[0];
    let raw_hi = extract_run(gather4, &raw_eps[1], &raw_eps[1])[0];

    let lo = combined_statistic(&lo_cands, denom, &edge_vals, edges);
    let hi = combined_statistic(&hi_cands, denom, &edge_vals, edges);
    if hi - lo < 1e-12 {
        return Err(SegmentError::NoPeaksFound);
    }
    let threshold = lo + config.threshold_fraction * (hi - lo);
    let boundary = diff_boundary(threshold, denom);
    // Pass 4: the division-free threshold scan.
    let flags = head
        .iter()
        .map(|&v| v > threshold)
        .chain((0..interior).map(|j| prefix[j + edges + 1] - prefix[j] > boundary))
        .chain(tail.iter().map(|&v| v > threshold));
    let bursts = bursts_from_flags(flags, config)?;
    Ok(refine_with_levels(samples, &bursts, config, raw_lo, raw_hi))
}

/// [`find_bursts`] with the pre-fast-path sort-based percentile pass, kept
/// as the benchmark baseline. Identical results.
///
/// # Errors
///
/// Same as [`find_bursts`].
pub fn find_bursts_reference(
    samples: &[f64],
    config: &SegmentConfig,
) -> Result<Vec<(usize, usize)>, SegmentError> {
    find_bursts_impl(samples, config, percentiles_5_95_sorted)
}

fn find_bursts_impl(
    samples: &[f64],
    config: &SegmentConfig,
    percentiles: fn(&mut [f64]) -> (f64, f64),
) -> Result<Vec<(usize, usize)>, SegmentError> {
    let smoothed = smooth(samples, config.smooth_window)?;
    // Robust low/high levels: 5th and 95th percentiles of the smoothed trace.
    let (lo, hi) = percentiles(&mut smoothed.clone());
    threshold_bursts(&smoothed, lo, hi, config)
}

/// The threshold / merge / minimum-length back half shared by every
/// burst-finding front end (scratch-based, allocating, and reference — the
/// levels `lo`/`hi` are what differ between them, never this scan).
fn threshold_bursts(
    smoothed: &[f64],
    lo: f64,
    hi: f64,
    config: &SegmentConfig,
) -> Result<Vec<(usize, usize)>, SegmentError> {
    if hi - lo < 1e-12 {
        return Err(SegmentError::NoPeaksFound);
    }
    let threshold = lo + config.threshold_fraction * (hi - lo);
    bursts_from_flags(smoothed.iter().map(|&s| s > threshold), config)
}

/// Turns a per-sample above-threshold flag stream into merged,
/// minimum-length bursts — the back half shared by the materialized-trace
/// and diff-domain front ends.
fn bursts_from_flags(
    flags: impl Iterator<Item = bool>,
    config: &SegmentConfig,
) -> Result<Vec<(usize, usize)>, SegmentError> {
    // Raw above-threshold runs.
    let mut bursts: Vec<(usize, usize)> = Vec::new();
    let mut start: Option<usize> = None;
    let mut len = 0usize;
    for (i, above) in flags.enumerate() {
        len = i + 1;
        if above {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(b) = start.take() {
            bursts.push((b, i));
        }
    }
    if let Some(b) = start {
        bursts.push((b, len));
    }

    // Merge nearby bursts.
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (s, e) in bursts {
        if let Some(last) = merged.last_mut() {
            if s <= last.1 + config.merge_gap {
                last.1 = e;
                continue;
            }
        }
        merged.push((s, e));
    }
    merged.retain(|(s, e)| e - s >= config.min_burst_len);
    if merged.is_empty() {
        return Err(SegmentError::NoPeaksFound);
    }
    Ok(merged)
}

/// Refines burst boundaries to cycle accuracy using the *raw* trace: the
/// moving-average edges of [`find_bursts`] jitter by a few samples with the
/// noise, which smears sample-exact leakage across template dimensions. A
/// burst's true end is the last run of `run_len` consecutive raw samples
/// above a high threshold (single data-dependent spikes outside the burst
/// cannot form such a run).
pub fn refine_burst_ends(
    samples: &[f64],
    bursts: &[(usize, usize)],
    config: &SegmentConfig,
) -> Vec<(usize, usize)> {
    refine_burst_ends_into(samples, bursts, config, &mut SegmentScratch::new())
}

/// [`refine_burst_ends`] with caller-provided scratch: the raw-trace
/// percentile pass is a read-only histogram selection instead of a
/// full-trace copy plus comparison selection. Identical results.
pub fn refine_burst_ends_into(
    samples: &[f64],
    bursts: &[(usize, usize)],
    config: &SegmentConfig,
    scratch: &mut SegmentScratch,
) -> Vec<(usize, usize)> {
    if samples.is_empty() {
        return bursts.to_vec();
    }
    let lo_rank = (samples.len() - 1) * 5 / 100;
    let hi_rank = (samples.len() - 1) * 95 / 100;
    let (lo, hi) = raw_percentiles(samples, lo_rank, hi_rank, scratch);
    refine_with_levels(samples, bursts, config, lo, hi)
}

/// [`refine_burst_ends`] with the pre-fast-path sort-based percentile pass,
/// kept as the benchmark baseline. Identical results.
pub fn refine_burst_ends_reference(
    samples: &[f64],
    bursts: &[(usize, usize)],
    config: &SegmentConfig,
) -> Vec<(usize, usize)> {
    refine_burst_ends_impl(samples, bursts, config, percentiles_5_95_sorted)
}

fn refine_burst_ends_impl(
    samples: &[f64],
    bursts: &[(usize, usize)],
    config: &SegmentConfig,
    percentiles: fn(&mut [f64]) -> (f64, f64),
) -> Vec<(usize, usize)> {
    if samples.is_empty() {
        return bursts.to_vec();
    }
    let (lo, hi) = percentiles(&mut samples.to_vec());
    refine_with_levels(samples, bursts, config, lo, hi)
}

/// The per-burst end-refinement scan shared by the scratch-based and
/// reference front ends (only the `lo`/`hi` level computation differs).
fn refine_with_levels(
    samples: &[f64],
    bursts: &[(usize, usize)],
    config: &SegmentConfig,
    lo: f64,
    hi: f64,
) -> Vec<(usize, usize)> {
    const RUN_LEN: usize = 6;
    const HIGH_FRACTION: f64 = 0.7;
    let threshold = lo + HIGH_FRACTION * (hi - lo);
    let span = config.smooth_window.max(4);
    bursts
        .iter()
        .map(|&(s, e)| {
            let win_lo = e.saturating_sub(span);
            let win_hi = (e + span).min(samples.len());
            let mut refined = None;
            let mut run = 0usize;
            for i in win_lo..win_hi {
                if samples[i] > threshold {
                    run += 1;
                    if run >= RUN_LEN {
                        refined = Some(i + 1);
                    }
                } else {
                    run = 0;
                }
            }
            (s, refined.unwrap_or(e))
        })
        .collect()
}

/// Segments a full trace into per-coefficient windows: each window runs from
/// the start of one distribution-call burst to the start of the next (the
/// last window extends to the end of the trace).
///
/// # Errors
///
/// Propagates burst-detection failures.
///
/// # Examples
///
/// ```
/// use reveal_trace::segment::{segment_windows, SegmentConfig};
/// // Three synthetic bursts of height 3 over a noise floor of 1.
/// let mut samples = vec![1.0; 600];
/// for start in [50usize, 250, 450] {
///     for i in start..start + 60 {
///         samples[i] = 3.0;
///     }
/// }
/// let windows = segment_windows(&samples, &SegmentConfig::default())?;
/// assert_eq!(windows.len(), 3);
/// # Ok::<(), reveal_trace::segment::SegmentError>(())
/// ```
pub fn segment_windows(
    samples: &[f64],
    config: &SegmentConfig,
) -> Result<Vec<(usize, usize)>, SegmentError> {
    let bursts = find_bursts(samples, config)?;
    let mut windows = Vec::with_capacity(bursts.len());
    for (i, &(s, _)) in bursts.iter().enumerate() {
        let end = if i + 1 < bursts.len() {
            bursts[i + 1].0
        } else {
            samples.len()
        };
        windows.push((s, end));
    }
    Ok(windows)
}

/// Segments many traces at once, one [`segment_windows`] call per trace,
/// parallelized over traces with `reveal-par`. Results come back in input
/// order and are bit-identical to the serial loop for any thread count.
pub fn segment_windows_batch<S: AsRef<[f64]> + Sync>(
    traces: &[S],
    config: &SegmentConfig,
) -> Vec<Result<Vec<(usize, usize)>, SegmentError>> {
    reveal_par::par_map(traces, |t| segment_windows(t.as_ref(), config))
}

/// Burst detection over many traces ([`find_bursts`] + [`refine_burst_ends`]
/// per trace), parallelized over traces with `reveal-par`. This is the
/// per-trace front half of the attack pipeline; batching it lets a capture
/// campaign segment as fast as the hardware allows.
pub fn refined_bursts_batch<S: AsRef<[f64]> + Sync>(
    traces: &[S],
    config: &SegmentConfig,
) -> Vec<Result<Vec<(usize, usize)>, SegmentError>> {
    reveal_par::par_map(traces, |t| {
        let samples = t.as_ref();
        let bursts = find_bursts(samples, config)?;
        Ok(refine_burst_ends(samples, &bursts, config))
    })
}

/// Compares detected windows with ground truth: the fraction of true windows
/// whose detected counterpart starts within `tolerance` samples.
pub fn window_alignment_score(
    detected: &[(usize, usize)],
    truth: &[(usize, usize)],
    tolerance: usize,
) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    for &(ts, _) in truth {
        if detected.iter().any(|&(ds, _)| ds.abs_diff(ts) <= tolerance) {
            hits += 1;
        }
    }
    hits as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn synthetic_trace(bursts: &[(usize, usize)], len: usize, floor: f64, peak: f64) -> Vec<f64> {
        let mut t = vec![floor; len];
        for &(s, e) in bursts {
            for v in t.iter_mut().take(e).skip(s) {
                *v = peak;
            }
        }
        t
    }

    #[test]
    fn smoothing_reduces_variance() {
        let noisy: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let s = smooth(&noisy, 16).unwrap();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&s) < var(&noisy) / 10.0);
        assert_eq!(s.len(), noisy.len());
    }

    #[test]
    fn smooth_degenerate_inputs() {
        assert_eq!(smooth(&[], 8), Err(SegmentError::EmptyTrace));
        assert_eq!(smooth(&[5.0], 8), Ok(vec![5.0]));
        assert_eq!(smooth(&[1.0, 2.0], 1), Ok(vec![1.0, 2.0]));
        assert_eq!(
            smooth(&[1.0, f64::NAN, 2.0], 4),
            Err(SegmentError::NonFiniteSample(1))
        );
        assert_eq!(
            smooth(&[1.0, 2.0, f64::INFINITY], 1),
            Err(SegmentError::NonFiniteSample(2))
        );
    }

    #[test]
    fn finds_three_clean_bursts() {
        let truth = [(100, 180), (400, 470), (700, 790)];
        let t = synthetic_trace(&truth, 1000, 1.0, 4.0);
        let bursts = find_bursts(&t, &SegmentConfig::default()).unwrap();
        assert_eq!(bursts.len(), 3);
        for (found, expected) in bursts.iter().zip(&truth) {
            assert!(
                found.0.abs_diff(expected.0) <= 16,
                "{found:?} vs {expected:?}"
            );
        }
    }

    #[test]
    fn windows_tile_from_burst_starts() {
        let truth = [(100, 180), (400, 470), (700, 790)];
        let t = synthetic_trace(&truth, 1000, 1.0, 4.0);
        let windows = segment_windows(&t, &SegmentConfig::default()).unwrap();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].1, windows[1].0);
        assert_eq!(windows[1].1, windows[2].0);
        assert_eq!(windows[2].1, 1000);
    }

    #[test]
    fn merges_chattering_bursts() {
        // One burst with a short dropout in the middle.
        let mut t = synthetic_trace(&[(100, 140), (150, 200)], 600, 1.0, 4.0);
        // A clearly separate second burst.
        for v in t.iter_mut().take(460).skip(400) {
            *v = 4.0;
        }
        let bursts = find_bursts(&t, &SegmentConfig::default()).unwrap();
        assert_eq!(bursts.len(), 2, "dropout should be merged: {bursts:?}");
    }

    #[test]
    fn rejects_flat_and_empty() {
        assert_eq!(
            find_bursts(&[], &SegmentConfig::default()),
            Err(SegmentError::EmptyTrace)
        );
        let flat = vec![1.0; 500];
        assert_eq!(
            find_bursts(&flat, &SegmentConfig::default()),
            Err(SegmentError::NoPeaksFound)
        );
    }

    #[test]
    fn rejects_non_finite_traces() {
        let mut t = synthetic_trace(&[(100, 180)], 400, 1.0, 4.0);
        t[250] = f64::NAN;
        assert_eq!(
            find_bursts(&t, &SegmentConfig::default()),
            Err(SegmentError::NonFiniteSample(250))
        );
        t[250] = f64::NEG_INFINITY;
        assert_eq!(
            segment_windows(&t, &SegmentConfig::default()),
            Err(SegmentError::NonFiniteSample(250))
        );
    }

    #[test]
    fn batch_segmentation_matches_serial_for_any_thread_count() {
        let traces: Vec<Vec<f64>> = (0..12)
            .map(|k| {
                synthetic_trace(
                    &[(50 + k, 120 + k), (300, 370), (600, 660)],
                    900,
                    1.0,
                    4.0 + k as f64 * 0.1,
                )
            })
            .collect();
        let config = SegmentConfig::default();
        let serial: Vec<_> = traces.iter().map(|t| segment_windows(t, &config)).collect();
        for threads in [1, 4] {
            let batch =
                reveal_par::with_threads(threads, || segment_windows_batch(&traces, &config));
            assert_eq!(batch, serial, "threads {threads}");
        }
        let refined = reveal_par::with_threads(4, || refined_bursts_batch(&traces, &config));
        assert_eq!(refined.len(), traces.len());
        assert!(refined.iter().all(|r| r.as_ref().unwrap().len() == 3));
    }

    #[test]
    fn selection_percentiles_match_sorted_reference() {
        // Noisy trace with duplicates and plateaus: the linear-time selection
        // must reproduce the sort-based order statistics exactly.
        let traces: Vec<Vec<f64>> = (0..8)
            .map(|k| {
                (0..3000)
                    .map(|i| {
                        let burst = if (i / 200) % 3 == 0 { 3.0 } else { 1.0 };
                        burst + 0.1 * (((i * 13 + k * 7) % 17) as f64)
                    })
                    .collect()
            })
            .collect();
        let config = SegmentConfig::default();
        for t in &traces {
            assert_eq!(
                percentiles_5_95(&mut t.clone()),
                percentiles_5_95_sorted(&mut t.clone())
            );
            let fast = find_bursts(t, &config).unwrap();
            let reference = find_bursts_reference(t, &config).unwrap();
            assert_eq!(fast, reference);
            assert_eq!(
                refine_burst_ends(t, &fast, &config),
                refine_burst_ends_reference(t, &reference, &config)
            );
        }
        // Degenerate lengths.
        for len in 1..6 {
            let v: Vec<f64> = (0..len).map(|i| (i * 37 % 5) as f64).collect();
            assert_eq!(
                percentiles_5_95(&mut v.clone()),
                percentiles_5_95_sorted(&mut v.clone())
            );
        }
    }

    #[test]
    fn histogram_order_statistics_match_sorted_reference() {
        // Plateaus (one histogram bucket holding most of the trace),
        // negatives, subnormal-scale values, duplicates, and tiny lengths.
        let cases: Vec<Vec<f64>> = vec![
            vec![1.0; 500],
            (0..5000)
                .map(|i| if (i / 100) % 2 == 0 { -2.5 } else { 7.25 })
                .collect(),
            (0..3001)
                .map(|i| ((i * 37 % 113) as f64 - 56.0) * 1e-300)
                .collect(),
            (0..997).map(|i| (i % 13) as f64 * -0.125).collect(),
            vec![0.0, -0.0, 1.0, -1.0, 0.5],
            vec![42.0],
            vec![-1.0, 1.0],
        ];
        let mut scratch = SegmentScratch::new();
        for samples in &cases {
            let lo_rank = (samples.len() - 1) * 5 / 100;
            let hi_rank = (samples.len() - 1) * 95 / 100;
            let (lo, hi) = raw_percentiles(samples, lo_rank, hi_rank, &mut scratch);
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(lo, sorted[lo_rank], "lo of {samples:?}");
            assert_eq!(hi, sorted[hi_rank], "hi of {samples:?}");
        }
    }

    #[test]
    fn scratch_segmentation_matches_reference_and_reuses_buffers() {
        let mut scratch = SegmentScratch::new();
        let config = SegmentConfig::default();
        for k in 0..6usize {
            let t = synthetic_trace(
                &[(80 + k, 160 + k), (400, 480), (800, 870)],
                1200,
                1.0 + k as f64 * 0.01,
                4.0,
            );
            let fast = find_bursts_into(&t, &config, &mut scratch).unwrap();
            let reference = find_bursts_reference(&t, &config).unwrap();
            assert_eq!(fast, reference, "trace {k}");
            let refined_ref = refine_burst_ends_reference(&t, &reference, &config);
            assert_eq!(
                refine_burst_ends_into(&t, &fast, &config, &mut scratch),
                refined_ref,
                "trace {k}"
            );
            // The fused single-entry pipeline returns the same composition.
            assert_eq!(
                refined_bursts_into(&t, &config, &mut scratch).unwrap(),
                refined_ref,
                "fused trace {k}"
            );
        }
        // Bursts touching the trace boundaries put extreme values into the
        // clamped-window head/tail, exercising the edge-merge of the
        // diff-domain percentile selection.
        let boundary = synthetic_trace(&[(0, 90), (500, 580), (1110, 1200)], 1200, 1.0, 4.0);
        assert_eq!(
            find_bursts_into(&boundary, &config, &mut scratch).unwrap(),
            find_bursts_reference(&boundary, &config).unwrap()
        );
        assert_eq!(
            refined_bursts_into(&boundary, &config, &mut scratch).unwrap(),
            refine_burst_ends_reference(
                &boundary,
                &find_bursts_reference(&boundary, &config).unwrap(),
                &config
            )
        );
        // Short traces fall back to materialized smoothing; results still
        // match the reference exactly.
        let short = synthetic_trace(&[(30, 80)], 150, 1.0, 4.0);
        assert_eq!(
            find_bursts_into(&short, &config, &mut scratch).unwrap(),
            find_bursts_reference(&short, &config).unwrap()
        );
        assert_eq!(
            refined_bursts_into(&short, &config, &mut scratch).unwrap(),
            refine_burst_ends_reference(
                &short,
                &find_bursts_reference(&short, &config).unwrap(),
                &config
            )
        );
        // Error paths through the scratch front end.
        assert_eq!(
            find_bursts_into(&[], &config, &mut scratch),
            Err(SegmentError::EmptyTrace)
        );
        let mut bad = synthetic_trace(&[(100, 180)], 400, 1.0, 4.0);
        bad[33] = f64::NAN;
        assert_eq!(
            find_bursts_into(&bad, &config, &mut scratch),
            Err(SegmentError::NonFiniteSample(33))
        );
    }

    #[test]
    fn alignment_score() {
        let truth = [(100, 200), (300, 400)];
        assert_eq!(
            window_alignment_score(&[(102, 200), (299, 400)], &truth, 5),
            1.0
        );
        assert_eq!(window_alignment_score(&[(102, 200)], &truth, 5), 0.5);
        assert_eq!(window_alignment_score(&[], &truth, 5), 0.0);
        assert_eq!(window_alignment_score(&[(0, 1)], &[], 5), 0.0);
    }

    proptest! {
        #[test]
        fn prop_segmentation_recovers_planted_bursts(
            gaps in proptest::collection::vec(120usize..400, 2..8),
            burst_len in 40usize..100,
        ) {
            // Plant bursts separated by the given gaps.
            let mut truth = Vec::new();
            let mut pos = 60usize;
            for g in &gaps {
                truth.push((pos, pos + burst_len));
                pos += burst_len + g;
            }
            let len = pos + 100;
            let t = synthetic_trace(&truth, len, 1.0, 5.0);
            let windows = segment_windows(&t, &SegmentConfig::default()).unwrap();
            prop_assert_eq!(windows.len(), truth.len());
            prop_assert!(window_alignment_score(&windows, &truth, 20) == 1.0);
        }
    }
}
