//! Trace segmentation: locating each coefficient's sampling window inside a
//! full encryption trace.
//!
//! §III-C of the paper: the distribution-function calls produce
//! "distinguishable and visible peaks" in the power trace, one per outer-loop
//! iteration, and those peaks are the start/end indicators for each
//! coefficient window. Because the distribution call is time-variant, a fixed
//! stride cannot work — the windows must be found from the trace itself.
//!
//! The detector smooths the trace with a moving average, thresholds it at
//! `μ + k·σ`, merges the resulting bursts, and emits one window per burst
//! (from the start of a burst to the start of the next).

use std::fmt;

/// Configuration of the peak-based segmenter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentConfig {
    /// Moving-average smoothing width in samples.
    pub smooth_window: usize,
    /// Threshold position between the robust low and high levels of the
    /// smoothed trace (0 = low level, 1 = high level). A mid-level
    /// threshold keeps working whatever fraction of the trace the bursts
    /// occupy — a mean+kσ rule does not.
    pub threshold_fraction: f64,
    /// Minimum burst length (samples) to count as a distribution-call peak.
    pub min_burst_len: usize,
    /// Bursts closer than this many samples are merged into one.
    pub merge_gap: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        Self {
            smooth_window: 16,
            threshold_fraction: 0.55,
            min_burst_len: 24,
            merge_gap: 16,
        }
    }
}

/// Errors from segmentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// The trace was empty.
    EmptyTrace,
    /// No burst exceeded the threshold.
    NoPeaksFound,
    /// The trace contains a NaN or infinite sample (acquisition glitch or a
    /// corrupted capture file); index of the first offender.
    NonFiniteSample(usize),
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::EmptyTrace => write!(f, "cannot segment an empty trace"),
            SegmentError::NoPeaksFound => write!(f, "no distribution-call peaks found"),
            SegmentError::NonFiniteSample(i) => {
                write!(f, "non-finite sample at index {i}")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

/// The 5th and 95th percentile values of a non-empty finite slice, via two
/// linear-time selections instead of a full sort. A selection yields exactly
/// the k-th order statistic, so the returned *values* match the previous
/// sort-based implementation bit for bit — a full sort per trace was the
/// single largest cost of segmenting long captures.
fn percentiles_5_95(scratch: &mut [f64]) -> (f64, f64) {
    let cmp = |a: &f64, b: &f64| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal);
    let lo_index = (scratch.len() - 1) * 5 / 100;
    let hi_index = (scratch.len() - 1) * 95 / 100;
    let (left, &mut hi, _) = scratch.select_nth_unstable_by(hi_index, cmp);
    // `lo_index < hi_index` whenever the indices differ, so the 5th
    // percentile lives in the left partition; when they coincide the two
    // order statistics are the same element.
    let lo = if lo_index == hi_index {
        hi
    } else {
        *left.select_nth_unstable_by(lo_index, cmp).1
    };
    (lo, hi)
}

/// The pre-fast-path percentile computation — a full sort per trace — kept
/// verbatim so the benchmark baseline measures what segmentation used to
/// cost. Returns the same values as [`percentiles_5_95`].
fn percentiles_5_95_sorted(scratch: &mut [f64]) -> (f64, f64) {
    scratch.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    (
        scratch[(scratch.len() - 1) * 5 / 100],
        scratch[(scratch.len() - 1) * 95 / 100],
    )
}

/// Moving-average smoothing (centered, edge-clamped).
///
/// # Errors
///
/// Fails on an empty trace or on NaN/infinite samples — a single NaN would
/// otherwise silently poison every averaged output around it.
pub fn smooth(samples: &[f64], window: usize) -> Result<Vec<f64>, SegmentError> {
    crate::sanity::check_finite(samples)?;
    if window <= 1 {
        return Ok(samples.to_vec());
    }
    let half = window / 2;
    let n = samples.len();
    // Prefix sums for O(n) averaging.
    let mut prefix = Vec::with_capacity(n + 1);
    let mut acc = 0.0;
    prefix.push(0.0);
    for &s in samples {
        acc += s;
        prefix.push(acc);
    }
    Ok((0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            (prefix[hi] - prefix[lo]) / (hi - lo) as f64
        })
        .collect())
}

/// Finds the high-power bursts (distribution-call peaks).
///
/// # Errors
///
/// Fails on empty, non-finite, or burst-free (e.g. all-constant) traces.
pub fn find_bursts(
    samples: &[f64],
    config: &SegmentConfig,
) -> Result<Vec<(usize, usize)>, SegmentError> {
    find_bursts_impl(samples, config, percentiles_5_95)
}

/// [`find_bursts`] with the pre-fast-path sort-based percentile pass, kept
/// as the benchmark baseline. Identical results.
///
/// # Errors
///
/// Same as [`find_bursts`].
pub fn find_bursts_reference(
    samples: &[f64],
    config: &SegmentConfig,
) -> Result<Vec<(usize, usize)>, SegmentError> {
    find_bursts_impl(samples, config, percentiles_5_95_sorted)
}

fn find_bursts_impl(
    samples: &[f64],
    config: &SegmentConfig,
    percentiles: fn(&mut [f64]) -> (f64, f64),
) -> Result<Vec<(usize, usize)>, SegmentError> {
    let smoothed = smooth(samples, config.smooth_window)?;
    // Robust low/high levels: 5th and 95th percentiles of the smoothed trace.
    let (lo, hi) = percentiles(&mut smoothed.clone());
    if hi - lo < 1e-12 {
        return Err(SegmentError::NoPeaksFound);
    }
    let threshold = lo + config.threshold_fraction * (hi - lo);

    // Raw above-threshold runs.
    let mut bursts: Vec<(usize, usize)> = Vec::new();
    let mut start: Option<usize> = None;
    for (i, &s) in smoothed.iter().enumerate() {
        if s > threshold {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(b) = start.take() {
            bursts.push((b, i));
        }
    }
    if let Some(b) = start {
        bursts.push((b, smoothed.len()));
    }

    // Merge nearby bursts.
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (s, e) in bursts {
        if let Some(last) = merged.last_mut() {
            if s <= last.1 + config.merge_gap {
                last.1 = e;
                continue;
            }
        }
        merged.push((s, e));
    }
    merged.retain(|(s, e)| e - s >= config.min_burst_len);
    if merged.is_empty() {
        return Err(SegmentError::NoPeaksFound);
    }
    Ok(merged)
}

/// Refines burst boundaries to cycle accuracy using the *raw* trace: the
/// moving-average edges of [`find_bursts`] jitter by a few samples with the
/// noise, which smears sample-exact leakage across template dimensions. A
/// burst's true end is the last run of `run_len` consecutive raw samples
/// above a high threshold (single data-dependent spikes outside the burst
/// cannot form such a run).
pub fn refine_burst_ends(
    samples: &[f64],
    bursts: &[(usize, usize)],
    config: &SegmentConfig,
) -> Vec<(usize, usize)> {
    refine_burst_ends_impl(samples, bursts, config, percentiles_5_95)
}

/// [`refine_burst_ends`] with the pre-fast-path sort-based percentile pass,
/// kept as the benchmark baseline. Identical results.
pub fn refine_burst_ends_reference(
    samples: &[f64],
    bursts: &[(usize, usize)],
    config: &SegmentConfig,
) -> Vec<(usize, usize)> {
    refine_burst_ends_impl(samples, bursts, config, percentiles_5_95_sorted)
}

fn refine_burst_ends_impl(
    samples: &[f64],
    bursts: &[(usize, usize)],
    config: &SegmentConfig,
    percentiles: fn(&mut [f64]) -> (f64, f64),
) -> Vec<(usize, usize)> {
    const RUN_LEN: usize = 6;
    const HIGH_FRACTION: f64 = 0.7;
    if samples.is_empty() {
        return bursts.to_vec();
    }
    let (lo, hi) = percentiles(&mut samples.to_vec());
    let threshold = lo + HIGH_FRACTION * (hi - lo);
    let span = config.smooth_window.max(4);
    bursts
        .iter()
        .map(|&(s, e)| {
            let win_lo = e.saturating_sub(span);
            let win_hi = (e + span).min(samples.len());
            let mut refined = None;
            let mut run = 0usize;
            for i in win_lo..win_hi {
                if samples[i] > threshold {
                    run += 1;
                    if run >= RUN_LEN {
                        refined = Some(i + 1);
                    }
                } else {
                    run = 0;
                }
            }
            (s, refined.unwrap_or(e))
        })
        .collect()
}

/// Segments a full trace into per-coefficient windows: each window runs from
/// the start of one distribution-call burst to the start of the next (the
/// last window extends to the end of the trace).
///
/// # Errors
///
/// Propagates burst-detection failures.
///
/// # Examples
///
/// ```
/// use reveal_trace::segment::{segment_windows, SegmentConfig};
/// // Three synthetic bursts of height 3 over a noise floor of 1.
/// let mut samples = vec![1.0; 600];
/// for start in [50usize, 250, 450] {
///     for i in start..start + 60 {
///         samples[i] = 3.0;
///     }
/// }
/// let windows = segment_windows(&samples, &SegmentConfig::default())?;
/// assert_eq!(windows.len(), 3);
/// # Ok::<(), reveal_trace::segment::SegmentError>(())
/// ```
pub fn segment_windows(
    samples: &[f64],
    config: &SegmentConfig,
) -> Result<Vec<(usize, usize)>, SegmentError> {
    let bursts = find_bursts(samples, config)?;
    let mut windows = Vec::with_capacity(bursts.len());
    for (i, &(s, _)) in bursts.iter().enumerate() {
        let end = if i + 1 < bursts.len() {
            bursts[i + 1].0
        } else {
            samples.len()
        };
        windows.push((s, end));
    }
    Ok(windows)
}

/// Segments many traces at once, one [`segment_windows`] call per trace,
/// parallelized over traces with `reveal-par`. Results come back in input
/// order and are bit-identical to the serial loop for any thread count.
pub fn segment_windows_batch<S: AsRef<[f64]> + Sync>(
    traces: &[S],
    config: &SegmentConfig,
) -> Vec<Result<Vec<(usize, usize)>, SegmentError>> {
    reveal_par::par_map(traces, |t| segment_windows(t.as_ref(), config))
}

/// Burst detection over many traces ([`find_bursts`] + [`refine_burst_ends`]
/// per trace), parallelized over traces with `reveal-par`. This is the
/// per-trace front half of the attack pipeline; batching it lets a capture
/// campaign segment as fast as the hardware allows.
pub fn refined_bursts_batch<S: AsRef<[f64]> + Sync>(
    traces: &[S],
    config: &SegmentConfig,
) -> Vec<Result<Vec<(usize, usize)>, SegmentError>> {
    reveal_par::par_map(traces, |t| {
        let samples = t.as_ref();
        let bursts = find_bursts(samples, config)?;
        Ok(refine_burst_ends(samples, &bursts, config))
    })
}

/// Compares detected windows with ground truth: the fraction of true windows
/// whose detected counterpart starts within `tolerance` samples.
pub fn window_alignment_score(
    detected: &[(usize, usize)],
    truth: &[(usize, usize)],
    tolerance: usize,
) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    for &(ts, _) in truth {
        if detected.iter().any(|&(ds, _)| ds.abs_diff(ts) <= tolerance) {
            hits += 1;
        }
    }
    hits as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn synthetic_trace(bursts: &[(usize, usize)], len: usize, floor: f64, peak: f64) -> Vec<f64> {
        let mut t = vec![floor; len];
        for &(s, e) in bursts {
            for v in t.iter_mut().take(e).skip(s) {
                *v = peak;
            }
        }
        t
    }

    #[test]
    fn smoothing_reduces_variance() {
        let noisy: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let s = smooth(&noisy, 16).unwrap();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&s) < var(&noisy) / 10.0);
        assert_eq!(s.len(), noisy.len());
    }

    #[test]
    fn smooth_degenerate_inputs() {
        assert_eq!(smooth(&[], 8), Err(SegmentError::EmptyTrace));
        assert_eq!(smooth(&[5.0], 8), Ok(vec![5.0]));
        assert_eq!(smooth(&[1.0, 2.0], 1), Ok(vec![1.0, 2.0]));
        assert_eq!(
            smooth(&[1.0, f64::NAN, 2.0], 4),
            Err(SegmentError::NonFiniteSample(1))
        );
        assert_eq!(
            smooth(&[1.0, 2.0, f64::INFINITY], 1),
            Err(SegmentError::NonFiniteSample(2))
        );
    }

    #[test]
    fn finds_three_clean_bursts() {
        let truth = [(100, 180), (400, 470), (700, 790)];
        let t = synthetic_trace(&truth, 1000, 1.0, 4.0);
        let bursts = find_bursts(&t, &SegmentConfig::default()).unwrap();
        assert_eq!(bursts.len(), 3);
        for (found, expected) in bursts.iter().zip(&truth) {
            assert!(
                found.0.abs_diff(expected.0) <= 16,
                "{found:?} vs {expected:?}"
            );
        }
    }

    #[test]
    fn windows_tile_from_burst_starts() {
        let truth = [(100, 180), (400, 470), (700, 790)];
        let t = synthetic_trace(&truth, 1000, 1.0, 4.0);
        let windows = segment_windows(&t, &SegmentConfig::default()).unwrap();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].1, windows[1].0);
        assert_eq!(windows[1].1, windows[2].0);
        assert_eq!(windows[2].1, 1000);
    }

    #[test]
    fn merges_chattering_bursts() {
        // One burst with a short dropout in the middle.
        let mut t = synthetic_trace(&[(100, 140), (150, 200)], 600, 1.0, 4.0);
        // A clearly separate second burst.
        for v in t.iter_mut().take(460).skip(400) {
            *v = 4.0;
        }
        let bursts = find_bursts(&t, &SegmentConfig::default()).unwrap();
        assert_eq!(bursts.len(), 2, "dropout should be merged: {bursts:?}");
    }

    #[test]
    fn rejects_flat_and_empty() {
        assert_eq!(
            find_bursts(&[], &SegmentConfig::default()),
            Err(SegmentError::EmptyTrace)
        );
        let flat = vec![1.0; 500];
        assert_eq!(
            find_bursts(&flat, &SegmentConfig::default()),
            Err(SegmentError::NoPeaksFound)
        );
    }

    #[test]
    fn rejects_non_finite_traces() {
        let mut t = synthetic_trace(&[(100, 180)], 400, 1.0, 4.0);
        t[250] = f64::NAN;
        assert_eq!(
            find_bursts(&t, &SegmentConfig::default()),
            Err(SegmentError::NonFiniteSample(250))
        );
        t[250] = f64::NEG_INFINITY;
        assert_eq!(
            segment_windows(&t, &SegmentConfig::default()),
            Err(SegmentError::NonFiniteSample(250))
        );
    }

    #[test]
    fn batch_segmentation_matches_serial_for_any_thread_count() {
        let traces: Vec<Vec<f64>> = (0..12)
            .map(|k| {
                synthetic_trace(
                    &[(50 + k, 120 + k), (300, 370), (600, 660)],
                    900,
                    1.0,
                    4.0 + k as f64 * 0.1,
                )
            })
            .collect();
        let config = SegmentConfig::default();
        let serial: Vec<_> = traces.iter().map(|t| segment_windows(t, &config)).collect();
        for threads in [1, 4] {
            let batch =
                reveal_par::with_threads(threads, || segment_windows_batch(&traces, &config));
            assert_eq!(batch, serial, "threads {threads}");
        }
        let refined = reveal_par::with_threads(4, || refined_bursts_batch(&traces, &config));
        assert_eq!(refined.len(), traces.len());
        assert!(refined.iter().all(|r| r.as_ref().unwrap().len() == 3));
    }

    #[test]
    fn selection_percentiles_match_sorted_reference() {
        // Noisy trace with duplicates and plateaus: the linear-time selection
        // must reproduce the sort-based order statistics exactly.
        let traces: Vec<Vec<f64>> = (0..8)
            .map(|k| {
                (0..3000)
                    .map(|i| {
                        let burst = if (i / 200) % 3 == 0 { 3.0 } else { 1.0 };
                        burst + 0.1 * (((i * 13 + k * 7) % 17) as f64)
                    })
                    .collect()
            })
            .collect();
        let config = SegmentConfig::default();
        for t in &traces {
            assert_eq!(
                percentiles_5_95(&mut t.clone()),
                percentiles_5_95_sorted(&mut t.clone())
            );
            let fast = find_bursts(t, &config).unwrap();
            let reference = find_bursts_reference(t, &config).unwrap();
            assert_eq!(fast, reference);
            assert_eq!(
                refine_burst_ends(t, &fast, &config),
                refine_burst_ends_reference(t, &reference, &config)
            );
        }
        // Degenerate lengths.
        for len in 1..6 {
            let v: Vec<f64> = (0..len).map(|i| (i * 37 % 5) as f64).collect();
            assert_eq!(
                percentiles_5_95(&mut v.clone()),
                percentiles_5_95_sorted(&mut v.clone())
            );
        }
    }

    #[test]
    fn alignment_score() {
        let truth = [(100, 200), (300, 400)];
        assert_eq!(
            window_alignment_score(&[(102, 200), (299, 400)], &truth, 5),
            1.0
        );
        assert_eq!(window_alignment_score(&[(102, 200)], &truth, 5), 0.5);
        assert_eq!(window_alignment_score(&[], &truth, 5), 0.0);
        assert_eq!(window_alignment_score(&[(0, 1)], &[], 5), 0.0);
    }

    proptest! {
        #[test]
        fn prop_segmentation_recovers_planted_bursts(
            gaps in proptest::collection::vec(120usize..400, 2..8),
            burst_len in 40usize..100,
        ) {
            // Plant bursts separated by the given gaps.
            let mut truth = Vec::new();
            let mut pos = 60usize;
            for g in &gaps {
                truth.push((pos, pos + burst_len));
                pos += burst_len + g;
            }
            let len = pos + 100;
            let t = synthetic_trace(&truth, len, 1.0, 5.0);
            let windows = segment_windows(&t, &SegmentConfig::default()).unwrap();
            prop_assert_eq!(windows.len(), truth.len());
            prop_assert!(window_alignment_score(&windows, &truth, 20) == 1.0);
        }
    }
}
