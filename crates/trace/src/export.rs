//! Trace export: CSV series and terminal ASCII plots (used by the figure
//! generators).

use std::fmt::Write as _;

/// Renders samples as CSV rows `index,value` with an optional header.
pub fn to_csv(samples: &[f64], header: Option<&str>) -> String {
    let mut out = String::new();
    if let Some(h) = header {
        out.push_str(h);
        out.push('\n');
    }
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(out, "{i},{s:.6}");
    }
    out
}

/// Renders several aligned series as CSV columns.
///
/// # Panics
///
/// Panics if series lengths differ or names/series counts mismatch.
pub fn to_csv_multi(series: &[(&str, &[f64])]) -> String {
    assert!(!series.is_empty());
    let len = series[0].1.len();
    for (_, s) in series {
        assert_eq!(s.len(), len, "series lengths must match");
    }
    let mut out = String::from("index");
    for (name, _) in series {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for i in 0..len {
        let _ = write!(out, "{i}");
        for (_, s) in series {
            let _ = write!(out, ",{:.6}", s[i]);
        }
        out.push('\n');
    }
    out
}

/// Renders a down-sampled ASCII plot of a trace: `height` rows by `width`
/// columns, `#` marking filled area under the curve.
pub fn ascii_plot(samples: &[f64], width: usize, height: usize) -> String {
    if samples.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    // Down-sample by max-pooling so peaks stay visible.
    let bucket = (samples.len() as f64 / width as f64).max(1.0);
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let lo = (c as f64 * bucket) as usize;
            let hi = (((c + 1) as f64 * bucket) as usize)
                .min(samples.len())
                .max(lo + 1);
            samples[lo..hi.min(samples.len())]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    let lo = cols.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = cols.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);
    let mut rows = vec![vec![b' '; width]; height];
    for (c, &v) in cols.iter().enumerate() {
        let level = (((v - lo) / range) * height as f64).round() as usize;
        let level = level.min(height);
        for r in 0..level {
            rows[height - 1 - r][c] = b'#';
        }
    }
    let mut out = String::with_capacity((width + 1) * height);
    for row in rows {
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_single_series() {
        let csv = to_csv(&[1.0, 2.5], Some("index,power"));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["index,power", "0,1.000000", "1,2.500000"]);
    }

    #[test]
    fn csv_multi_series() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let csv = to_csv_multi(&[("pos", &a), ("neg", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "index,pos,neg");
        assert_eq!(lines[1], "0,1.000000,3.000000");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn csv_multi_rejects_ragged() {
        to_csv_multi(&[("a", &[1.0][..]), ("b", &[1.0, 2.0][..])]);
    }

    #[test]
    fn ascii_plot_shape_and_peak() {
        let mut samples = vec![0.0; 100];
        for s in samples.iter_mut().skip(40).take(10) {
            *s = 5.0;
        }
        let plot = ascii_plot(&samples, 50, 8);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.len() == 50));
        // The top row has marks only near the peak region (columns ~20-25).
        let top = lines[0];
        assert!(top[18..28].contains('#'));
        assert!(!top[..10].contains('#'));
    }

    #[test]
    fn ascii_plot_degenerate() {
        assert_eq!(ascii_plot(&[], 10, 5), "");
        assert_eq!(ascii_plot(&[1.0], 0, 5), "");
        let flat = ascii_plot(&[2.0; 10], 10, 3);
        assert_eq!(flat.lines().count(), 3);
    }
}
