//! Power-trace containers and basic transformations.

use std::fmt;

/// A single power trace: a sequence of samples with an optional label
/// (the known secret during profiling, `None` during the attack).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    samples: Vec<f64>,
    label: Option<i64>,
}

impl Trace {
    /// Creates an unlabelled trace.
    pub fn new(samples: Vec<f64>) -> Self {
        Self {
            samples,
            label: None,
        }
    }

    /// Creates a labelled trace (profiling data).
    pub fn labelled(samples: Vec<f64>, label: i64) -> Self {
        Self {
            samples,
            label: Some(label),
        }
    }

    /// The samples.
    #[inline]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable samples.
    #[inline]
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The profiling label, if any.
    #[inline]
    pub fn label(&self) -> Option<i64> {
        self.label
    }

    /// Returns a sub-trace over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn window(&self, start: usize, end: usize) -> Trace {
        assert!(start <= end && end <= self.samples.len(), "bad window");
        Trace {
            samples: self.samples[start..end].to_vec(),
            label: self.label,
        }
    }

    /// Linearly resamples to `target_len` samples (used to normalize
    /// variable-duration segments before template matching).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `target_len == 0`.
    pub fn resample(&self, target_len: usize) -> Trace {
        Trace {
            samples: resample_linear(&self.samples, target_len),
            label: self.label,
        }
    }

    /// Standardizes to zero mean / unit variance (no-op for constant traces).
    pub fn standardize(&self) -> Trace {
        let n = self.samples.len().max(1) as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let var = self.samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        let sd = var.sqrt();
        let samples = if sd > 0.0 {
            self.samples.iter().map(|s| (s - mean) / sd).collect()
        } else {
            vec![0.0; self.samples.len()]
        };
        Trace {
            samples,
            label: self.label,
        }
    }

    /// Extracts the values at the given sample indices (POI projection).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn project(&self, indices: &[usize]) -> Vec<f64> {
        indices.iter().map(|&i| self.samples[i]).collect()
    }
}

/// Linear-interpolation resampling of a sample vector.
///
/// # Panics
///
/// Panics if either length is zero.
pub fn resample_linear(samples: &[f64], target_len: usize) -> Vec<f64> {
    assert!(!samples.is_empty(), "cannot resample an empty trace");
    assert!(target_len > 0, "target length must be positive");
    if samples.len() == 1 {
        return vec![samples[0]; target_len];
    }
    if target_len == 1 {
        return vec![samples[0]];
    }
    let scale = (samples.len() - 1) as f64 / (target_len - 1) as f64;
    (0..target_len)
        .map(|i| {
            let x = i as f64 * scale;
            let lo = x.floor() as usize;
            let hi = (lo + 1).min(samples.len() - 1);
            let frac = x - lo as f64;
            samples[lo] * (1.0 - frac) + samples[hi] * frac
        })
        .collect()
}

/// A collection of equal-length traces (after windowing/resampling), the
/// unit templates are trained on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSet {
    traces: Vec<Trace>,
}

impl TraceSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace length differs from the existing traces.
    pub fn push(&mut self, trace: Trace) {
        if let Some(first) = self.traces.first() {
            assert_eq!(first.len(), trace.len(), "trace length mismatch in set");
        }
        self.traces.push(trace);
    }

    /// Number of traces.
    #[inline]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Sample count per trace (0 for an empty set).
    pub fn trace_len(&self) -> usize {
        self.traces.first().map(Trace::len).unwrap_or(0)
    }

    /// Iterates over the traces.
    pub fn iter(&self) -> std::slice::Iter<'_, Trace> {
        self.traces.iter()
    }

    /// The traces as a slice.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// The distinct labels present, sorted.
    pub fn labels(&self) -> Vec<i64> {
        let mut labels: Vec<i64> = self.traces.iter().filter_map(Trace::label).collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Returns the subset of traces with a given label.
    pub fn with_label(&self, label: i64) -> TraceSet {
        TraceSet {
            traces: self
                .traces
                .iter()
                .filter(|t| t.label() == Some(label))
                .cloned()
                .collect(),
        }
    }

    /// Per-sample mean across the set.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn mean(&self) -> Vec<f64> {
        assert!(!self.is_empty(), "mean of empty trace set");
        let len = self.trace_len();
        let mut mean = vec![0.0; len];
        for t in &self.traces {
            for (m, s) in mean.iter_mut().zip(t.samples()) {
                *m += s;
            }
        }
        let n = self.traces.len() as f64;
        for m in &mut mean {
            *m /= n;
        }
        mean
    }

    /// Per-sample variance across the set (population).
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn variance(&self) -> Vec<f64> {
        let mean = self.mean();
        let len = self.trace_len();
        let mut var = vec![0.0; len];
        for t in &self.traces {
            for ((v, s), m) in var.iter_mut().zip(t.samples()).zip(&mean) {
                let d = s - m;
                *v += d * d;
            }
        }
        let n = self.traces.len() as f64;
        for v in &mut var {
            *v /= n;
        }
        var
    }
}

impl FromIterator<Trace> for TraceSet {
    fn from_iter<I: IntoIterator<Item = Trace>>(iter: I) -> Self {
        let mut set = TraceSet::new();
        for t in iter {
            set.push(t);
        }
        set
    }
}

impl Extend<Trace> for TraceSet {
    fn extend<I: IntoIterator<Item = Trace>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Trace({} samples{})",
            self.samples.len(),
            match self.label {
                Some(l) => format!(", label {l}"),
                None => String::new(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_windowing() {
        let t = Trace::labelled(vec![1.0, 2.0, 3.0, 4.0], -3);
        assert_eq!(t.len(), 4);
        assert_eq!(t.label(), Some(-3));
        let w = t.window(1, 3);
        assert_eq!(w.samples(), &[2.0, 3.0]);
        assert_eq!(w.label(), Some(-3));
    }

    #[test]
    #[should_panic(expected = "bad window")]
    fn window_out_of_bounds() {
        Trace::new(vec![1.0]).window(0, 5);
    }

    #[test]
    fn resample_identity_and_interpolation() {
        let t = Trace::new(vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(t.resample(4).samples(), t.samples());
        let up = t.resample(7);
        assert_eq!(up.len(), 7);
        assert!((up.samples()[1] - 0.5).abs() < 1e-12);
        let down = t.resample(2);
        assert_eq!(down.samples(), &[0.0, 3.0]);
    }

    #[test]
    fn standardize_properties() {
        let t = Trace::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]).standardize();
        let mean: f64 = t.samples().iter().sum::<f64>() / 5.0;
        let var: f64 = t.samples().iter().map(|s| (s - mean).powi(2)).sum::<f64>() / 5.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
        // Constant trace maps to zeros, not NaN.
        let c = Trace::new(vec![7.0; 4]).standardize();
        assert!(c.samples().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn project_extracts_pois() {
        let t = Trace::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(t.project(&[3, 0]), vec![40.0, 10.0]);
    }

    #[test]
    fn set_mean_variance_and_labels() {
        let mut set = TraceSet::new();
        set.push(Trace::labelled(vec![1.0, 0.0], 1));
        set.push(Trace::labelled(vec![3.0, 0.0], 1));
        set.push(Trace::labelled(vec![5.0, 6.0], -1));
        assert_eq!(set.mean(), vec![3.0, 2.0]);
        assert_eq!(set.labels(), vec![-1, 1]);
        assert_eq!(set.with_label(1).len(), 2);
        let var = set.variance();
        assert!((var[0] - 8.0 / 3.0).abs() < 1e-12);
        assert!((var[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_rejects_mixed_lengths() {
        let mut set = TraceSet::new();
        set.push(Trace::new(vec![1.0]));
        set.push(Trace::new(vec![1.0, 2.0]));
    }

    proptest! {
        #[test]
        fn prop_resample_preserves_endpoints(
            samples in proptest::collection::vec(-100.0f64..100.0, 2..50),
            target in 2usize..100,
        ) {
            let t = Trace::new(samples.clone());
            let r = t.resample(target);
            prop_assert!((r.samples()[0] - samples[0]).abs() < 1e-9);
            prop_assert!((r.samples()[target - 1] - samples[samples.len() - 1]).abs() < 1e-9);
        }

        #[test]
        fn prop_resample_within_bounds(
            samples in proptest::collection::vec(-100.0f64..100.0, 2..50),
            target in 1usize..100,
        ) {
            let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let r = resample_linear(&samples, target);
            prop_assert!(r.iter().all(|&v| v >= lo - 1e-9 && v <= hi + 1e-9));
        }
    }
}
