//! Bit-exact checkpoint / restore snapshots of the per-key hint store.
//!
//! The format is a line-oriented text file (version-tagged, no external
//! serializer available in this workspace) with one property that matters
//! more than prettiness: **every `f64` round-trips exactly**, because it is
//! written as the hex of its IEEE-754 bit pattern, never as decimal. A
//! restored accumulator therefore folds to bit-identical estimates — the
//! crash-recovery test compares re-encoded snapshots as strings.
//!
//! Layout (one victim block per key, in shard-major order):
//!
//! ```text
//! reveal-serve-checkpoint v1
//! params <n> <m> <q:hex64> <sigma:hex64>
//! coefficients <count> shards <count> quarantine-threshold <count>
//! victims <count>
//! victim <key> traces <processed> failed <failed> run <consecutive> rails <lda> <learned> status <active|quarantined:<n>>
//! decisions P:<value> A:<value>:<eps-hex64> S …
//! end
//! ```
//!
//! The `rails <lda> <learned>` field (cumulative per-rail coefficient
//! counts under two-rail arbitration) was added after v1 shipped; the
//! decoder still accepts the original victim line without it, restoring
//! zero counts, so pre-arbitration checkpoints remain loadable.
//!
//! Writes are atomic: the snapshot lands in `<path>.tmp` and is renamed
//! over the target, so a crash mid-write leaves the previous checkpoint
//! intact — exactly the property the kill/restore contract needs.

use crate::accumulator::{QuarantineReason, ShardedAccumulator, VictimState, VictimStatus};
use crate::KeyId;
use reveal_attack::HintDecision;
use reveal_hints::{HintSummary, LweParameters};
use std::fmt;
use std::path::Path;

/// Typed checkpoint failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(String),
    /// The header is missing or the version is unsupported.
    BadHeader(String),
    /// A line failed to parse.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The snapshot's parameters do not match the running configuration.
    ParamsMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io: {e}"),
            CheckpointError::BadHeader(h) => write!(f, "bad header: {h}"),
            CheckpointError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            CheckpointError::ParamsMismatch(m) => write!(f, "params mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// An in-memory snapshot of the accumulator: everything needed to resume
/// scoring bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// LWE parameters of the store.
    pub params: LweParameters,
    /// Expected coefficients per victim.
    pub coefficients: usize,
    /// Shard count (restored stores keep the same layout).
    pub shards: usize,
    /// Quarantine threshold.
    pub quarantine_threshold: u32,
    /// Victim states in shard-major order.
    pub victims: Vec<(KeyId, VictimState)>,
}

impl Snapshot {
    /// Captures the accumulator's current state.
    pub fn capture(acc: &ShardedAccumulator, quarantine_threshold: u32) -> Self {
        Self {
            params: *acc.params(),
            coefficients: acc.coefficients(),
            shards: acc.shards(),
            quarantine_threshold,
            victims: acc.iter().map(|(k, v)| (k, v.clone())).collect(),
        }
    }

    /// Rebuilds an accumulator from this snapshot. The decision fold on
    /// next use reproduces the pre-snapshot estimates bit-identically.
    pub fn restore(&self) -> ShardedAccumulator {
        let mut acc = ShardedAccumulator::new(
            self.params,
            self.coefficients,
            self.shards,
            self.quarantine_threshold,
        );
        for (key, state) in &self.victims {
            acc.restore_victim(*key, state.clone());
        }
        acc
    }

    /// Serializes to the v1 text format.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("reveal-serve-checkpoint v1\n");
        out.push_str(&format!(
            "params {} {} {:016x} {:016x} {:016x}\n",
            self.params.n,
            self.params.m,
            self.params.q.to_bits(),
            self.params.error_std.to_bits(),
            self.params.secret_std.to_bits()
        ));
        out.push_str(&format!(
            "coefficients {} shards {} quarantine-threshold {}\n",
            self.coefficients, self.shards, self.quarantine_threshold
        ));
        out.push_str(&format!("victims {}\n", self.victims.len()));
        for (key, v) in &self.victims {
            let status = match v.status {
                VictimStatus::Active => "active".to_string(),
                VictimStatus::Quarantined(QuarantineReason::ConsecutiveFailures(n)) => {
                    format!("quarantined:{n}")
                }
            };
            out.push_str(&format!(
                "victim {key} traces {} failed {} run {} rails {} {} status {status}\n",
                v.traces_processed,
                v.traces_failed,
                v.consecutive_failures,
                v.lda_coefficients,
                v.learned_coefficients
            ));
            out.push_str("decisions");
            for d in &v.decisions {
                match d {
                    HintDecision::Perfect { value } => {
                        out.push_str(&format!(" P:{value}"));
                    }
                    HintDecision::Approximate { value, eps_squared } => {
                        out.push_str(&format!(" A:{value}:{:016x}", eps_squared.to_bits()));
                    }
                    HintDecision::Skipped => out.push_str(" S"),
                }
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses the v1 text format.
    ///
    /// # Errors
    ///
    /// Typed [`CheckpointError`]s on malformed input.
    pub fn decode(text: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines().enumerate();
        let bad = |line: usize, reason: &str| CheckpointError::BadLine {
            line: line + 1,
            reason: reason.to_string(),
        };

        let (_, header) = lines
            .next()
            .ok_or_else(|| CheckpointError::BadHeader("empty file".into()))?;
        if header != "reveal-serve-checkpoint v1" {
            return Err(CheckpointError::BadHeader(header.to_string()));
        }

        let (ln, params_line) = lines
            .next()
            .ok_or_else(|| CheckpointError::BadHeader("missing params".into()))?;
        let p: Vec<&str> = params_line.split_whitespace().collect();
        if p.len() != 6 || p[0] != "params" {
            return Err(bad(ln, "expected `params <n> <m> <q> <error> <secret>`"));
        }
        let params = LweParameters {
            n: p[1].parse().map_err(|_| bad(ln, "bad n"))?,
            m: p[2].parse().map_err(|_| bad(ln, "bad m"))?,
            q: f64::from_bits(u64::from_str_radix(p[3], 16).map_err(|_| bad(ln, "bad q bits"))?),
            error_std: f64::from_bits(
                u64::from_str_radix(p[4], 16).map_err(|_| bad(ln, "bad error bits"))?,
            ),
            secret_std: f64::from_bits(
                u64::from_str_radix(p[5], 16).map_err(|_| bad(ln, "bad secret bits"))?,
            ),
        };

        let (ln, shape_line) = lines
            .next()
            .ok_or_else(|| CheckpointError::BadHeader("missing shape".into()))?;
        let s: Vec<&str> = shape_line.split_whitespace().collect();
        if s.len() != 6
            || s[0] != "coefficients"
            || s[2] != "shards"
            || s[4] != "quarantine-threshold"
        {
            return Err(bad(
                ln,
                "expected `coefficients <c> shards <s> quarantine-threshold <t>`",
            ));
        }
        let coefficients: usize = s[1].parse().map_err(|_| bad(ln, "bad coefficients"))?;
        let shards: usize = s[3].parse().map_err(|_| bad(ln, "bad shards"))?;
        let quarantine_threshold: u32 = s[5].parse().map_err(|_| bad(ln, "bad threshold"))?;

        let (ln, victims_line) = lines
            .next()
            .ok_or_else(|| CheckpointError::BadHeader("missing victims".into()))?;
        let v: Vec<&str> = victims_line.split_whitespace().collect();
        if v.len() != 2 || v[0] != "victims" {
            return Err(bad(ln, "expected `victims <count>`"));
        }
        let count: usize = v[1].parse().map_err(|_| bad(ln, "bad victim count"))?;

        let mut victims = Vec::with_capacity(count);
        for _ in 0..count {
            let (ln, victim_line) = lines
                .next()
                .ok_or_else(|| CheckpointError::BadHeader("truncated victim block".into()))?;
            let w: Vec<&str> = victim_line.split_whitespace().collect();
            // Two accepted shapes: the extended line with `rails <l> <n>`
            // and the legacy line without it (restores zero rail counts).
            let (has_rails, status_idx) = match w.len() {
                13 if w[8] == "rails" && w[11] == "status" => (true, 12),
                10 if w[8] == "status" => (false, 9),
                _ => (false, 0),
            };
            if status_idx == 0
                || w[0] != "victim"
                || w[2] != "traces"
                || w[4] != "failed"
                || w[6] != "run"
            {
                return Err(bad(
                    ln,
                    "expected `victim <key> traces <p> failed <f> run <r> [rails <l> <n>] status <s>`",
                ));
            }
            let key: KeyId = w[1].parse().map_err(|_| bad(ln, "bad key"))?;
            let traces_processed: u64 = w[3].parse().map_err(|_| bad(ln, "bad traces"))?;
            let traces_failed: u64 = w[5].parse().map_err(|_| bad(ln, "bad failed"))?;
            let consecutive_failures: u32 = w[7].parse().map_err(|_| bad(ln, "bad run"))?;
            let (lda_coefficients, learned_coefficients) = if has_rails {
                (
                    w[9].parse().map_err(|_| bad(ln, "bad lda rail count"))?,
                    w[10]
                        .parse()
                        .map_err(|_| bad(ln, "bad learned rail count"))?,
                )
            } else {
                (0, 0)
            };
            let status = match w[status_idx] {
                "active" => VictimStatus::Active,
                other => match other.strip_prefix("quarantined:") {
                    Some(nstr) => VictimStatus::Quarantined(QuarantineReason::ConsecutiveFailures(
                        nstr.parse().map_err(|_| bad(ln, "bad quarantine count"))?,
                    )),
                    None => return Err(bad(ln, "bad status")),
                },
            };

            let (ln, dec_line) = lines
                .next()
                .ok_or_else(|| CheckpointError::BadHeader("missing decisions".into()))?;
            let mut tokens = dec_line.split_whitespace();
            if tokens.next() != Some("decisions") {
                return Err(bad(ln, "expected `decisions …`"));
            }
            let mut decisions = Vec::with_capacity(coefficients);
            for token in tokens {
                let d = if token == "S" {
                    HintDecision::Skipped
                } else if let Some(rest) = token.strip_prefix("P:") {
                    HintDecision::Perfect {
                        value: rest.parse().map_err(|_| bad(ln, "bad perfect value"))?,
                    }
                } else if let Some(rest) = token.strip_prefix("A:") {
                    let (value_str, eps_str) = rest
                        .split_once(':')
                        .ok_or_else(|| bad(ln, "bad approximate token"))?;
                    HintDecision::Approximate {
                        value: value_str.parse().map_err(|_| bad(ln, "bad approx value"))?,
                        eps_squared: f64::from_bits(
                            u64::from_str_radix(eps_str, 16)
                                .map_err(|_| bad(ln, "bad eps bits"))?,
                        ),
                    }
                } else {
                    return Err(bad(ln, "unknown decision token"));
                };
                decisions.push(d);
            }
            if decisions.len() != coefficients {
                return Err(bad(ln, "decision count does not match coefficients"));
            }
            // The fold-derived fields are recomputed lazily on the next
            // apply; summaries are re-derived here so restored state is
            // self-consistent without storing redundant floats.
            let mut summary = HintSummary::default();
            for d in &decisions {
                match d {
                    HintDecision::Perfect { .. } => summary.perfect += 1,
                    HintDecision::Approximate { .. } => summary.approximate += 1,
                    HintDecision::Skipped => summary.skipped += 1,
                }
            }
            victims.push((
                key,
                VictimState {
                    decisions,
                    traces_processed,
                    traces_failed,
                    consecutive_failures,
                    status,
                    last_estimate: None,
                    summary,
                    lda_coefficients,
                    learned_coefficients,
                },
            ));
        }

        match lines.next() {
            Some((_, "end")) => {}
            other => {
                return Err(CheckpointError::BadHeader(format!(
                    "missing `end` terminator, got {other:?}"
                )))
            }
        }

        Ok(Self {
            params,
            coefficients,
            shards,
            quarantine_threshold,
            victims,
        })
    }

    /// Atomically writes the snapshot to `path` (`<path>.tmp` + rename).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failures.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode())
            .map_err(|e| CheckpointError::Io(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| CheckpointError::Io(format!("rename to {}: {e}", path.display())))
    }

    /// Loads a snapshot previously written with [`Snapshot::write_atomic`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] / parse errors.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
        Self::decode(&text)
    }

    /// Validates that this snapshot can resume a store configured with
    /// `params` and `coefficients`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::ParamsMismatch`] when they differ.
    pub fn check_compatible(
        &self,
        params: &LweParameters,
        coefficients: usize,
    ) -> Result<(), CheckpointError> {
        if self.params.n != params.n
            || self.params.m != params.m
            || self.params.q.to_bits() != params.q.to_bits()
            || self.params.error_std.to_bits() != params.error_std.to_bits()
            || self.params.secret_std.to_bits() != params.secret_std.to_bits()
        {
            return Err(CheckpointError::ParamsMismatch(format!(
                "snapshot n={} m={} vs store n={} m={}",
                self.params.n, self.params.m, params.n, params.m
            )));
        }
        if self.coefficients != coefficients {
            return Err(CheckpointError::ParamsMismatch(format!(
                "snapshot coefficients={} vs store {}",
                self.coefficients, coefficients
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveal_attack::{HintDecision, RobustAttackResult, RobustCoefficient, Suspicion};

    fn params() -> LweParameters {
        LweParameters::seal_like(16, 3329.0, 2.0)
    }

    fn populated() -> ShardedAccumulator {
        let mut acc = ShardedAccumulator::new(params(), 16, 4, 3);
        let result = RobustAttackResult {
            coefficients: (0..16)
                .map(|i| RobustCoefficient {
                    estimate: None,
                    confidence: 0.0,
                    suspicion: Suspicion::default(),
                    decision: match i % 3 {
                        0 => HintDecision::Perfect { value: i },
                        1 => HintDecision::Approximate {
                            value: -i,
                            eps_squared: 0.1 + i as f64 * 0.01,
                        },
                        _ => HintDecision::Skipped,
                    },
                    rail: if i % 4 == 0 {
                        reveal_attack::Rail::Learned
                    } else {
                        reveal_attack::Rail::Lda
                    },
                })
                .collect(),
            diagnostics: reveal_attack::Diagnostics::default(),
        };
        acc.apply_success(11, 0, &result).unwrap();
        acc.apply_success(4, 0, &result).unwrap();
        acc.apply_failure(4, 1, crate::ServeError::GapAbandoned);
        acc
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let acc = populated();
        let snap = Snapshot::capture(&acc, 3);
        let text = snap.encode();
        let back = Snapshot::decode(&text).unwrap();
        // Decision vectors and counters survive exactly (estimates are
        // recomputed on fold, so compare re-encoded text).
        assert_eq!(back.encode(), text);
        assert_eq!(back.victims.len(), 2);
        let (key, state) = &back.victims[0];
        assert_eq!(*key, 4);
        assert_eq!(state.traces_processed, 2);
        assert_eq!(state.traces_failed, 1);
    }

    #[test]
    fn restored_store_folds_bit_identically() {
        let acc = populated();
        let snap = Snapshot::capture(&acc, 3);
        let mut restored = snap.restore();
        // Applying the same new trace to original and restored stores
        // yields bit-identical estimates.
        let mut original = snap.restore();
        let next = RobustAttackResult {
            coefficients: vec![
                RobustCoefficient {
                    estimate: None,
                    confidence: 0.0,
                    suspicion: Suspicion::default(),
                    decision: HintDecision::Perfect { value: 1 },
                    rail: reveal_attack::Rail::Lda,
                };
                16
            ],
            diagnostics: reveal_attack::Diagnostics::default(),
        };
        let a = original.apply_success(11, 1, &next).unwrap();
        let b = restored.apply_success(11, 1, &next).unwrap();
        assert_eq!(a.bikz.to_bits(), b.bikz.to_bits());
    }

    #[test]
    fn atomic_write_and_load() {
        let acc = populated();
        let snap = Snapshot::capture(&acc, 3);
        let dir = std::env::temp_dir().join("reveal-serve-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.ckpt");
        snap.write_atomic(&path).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded.encode(), snap.encode());
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_inputs_fail_typed() {
        assert!(matches!(
            Snapshot::decode(""),
            Err(CheckpointError::BadHeader(_))
        ));
        assert!(matches!(
            Snapshot::decode("reveal-serve-checkpoint v2\n"),
            Err(CheckpointError::BadHeader(_))
        ));
        let good = Snapshot::capture(&populated(), 3).encode();
        let truncated: String = good.lines().take(5).map(|l| format!("{l}\n")).collect();
        assert!(Snapshot::decode(&truncated).is_err());
        let corrupt = good.replace("P:0", "X:0");
        assert!(matches!(
            Snapshot::decode(&corrupt),
            Err(CheckpointError::BadLine { .. })
        ));
    }

    #[test]
    fn rail_counts_round_trip_and_legacy_lines_restore_zero() {
        let acc = populated();
        let snap = Snapshot::capture(&acc, 3);
        let state = acc.victim(11).unwrap();
        assert_eq!(
            (state.lda_coefficients, state.learned_coefficients),
            (12, 4)
        );
        let text = snap.encode();
        let back = Snapshot::decode(&text).unwrap();
        let (_, restored) = back.victims.iter().find(|(k, _)| *k == 11).unwrap();
        assert_eq!(
            (restored.lda_coefficients, restored.learned_coefficients),
            (12, 4)
        );
        // A pre-arbitration checkpoint (no `rails` field) still loads,
        // with zeroed counts.
        let legacy: String = text
            .lines()
            .map(|l| {
                if l.starts_with("victim ") {
                    let w: Vec<&str> = l.split_whitespace().collect();
                    format!(
                        "{} {} {} {} {} {} {} {} {} {}\n",
                        w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7], w[11], w[12]
                    )
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let old = Snapshot::decode(&legacy).unwrap();
        let (_, restored) = old.victims.iter().find(|(k, _)| *k == 11).unwrap();
        assert_eq!(
            (restored.lda_coefficients, restored.learned_coefficients),
            (0, 0)
        );
        assert_eq!(restored.traces_processed, 1);
    }

    #[test]
    fn compatibility_check_catches_mismatches() {
        let snap = Snapshot::capture(&populated(), 3);
        assert!(snap.check_compatible(&params(), 16).is_ok());
        assert!(snap.check_compatible(&params(), 8).is_err());
        let other = LweParameters::seal_like(32, 3329.0, 2.0);
        assert!(snap.check_compatible(&other, 16).is_err());
    }
}
