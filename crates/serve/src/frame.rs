//! The wire format: a trace chopped into sequence-numbered frames,
//! addressed to one victim key.
//!
//! Framing is deliberately minimal — enough structure for a reassembler to
//! dedup, reorder, and detect completion, and for admission control to
//! reject garbage before it costs anything downstream. Payloads are moved,
//! never copied, from ingest to analysis.

use std::fmt;

/// A victim key identifier. Sharding is `key % shards`.
pub type KeyId = u64;

/// One frame of one victim trace stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFrame {
    /// The victim key this trace belongs to.
    pub key: KeyId,
    /// Per-victim monotone trace number (0-based). The scorer consumes
    /// outcomes in this order.
    pub trace_seq: u64,
    /// Position of this frame within the trace (0-based).
    pub frame_seq: u32,
    /// Whether this is the final frame of the trace.
    pub last: bool,
    /// The payload samples.
    pub samples: Vec<f64>,
}

/// Admission-control rejections, attributable to one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameError {
    /// A payload sample was NaN or infinite.
    NonFinite {
        /// Index of the first offending sample within the payload.
        index: usize,
    },
    /// The payload exceeds the configured per-frame bound.
    Oversized {
        /// Payload length.
        len: usize,
        /// The configured maximum.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::NonFinite { index } => {
                write!(f, "non-finite sample at payload index {index}")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "payload of {len} samples exceeds the {max}-sample bound")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl TraceFrame {
    /// Admission check: payload bounded and finite. Runs before any
    /// buffering so a poisoned frame costs O(len) and nothing downstream.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] or [`FrameError::NonFinite`].
    pub fn validate(&self, max_samples: usize) -> Result<(), FrameError> {
        if self.samples.len() > max_samples {
            return Err(FrameError::Oversized {
                len: self.samples.len(),
                max: max_samples,
            });
        }
        if let Some(index) = self.samples.iter().position(|s| !s.is_finite()) {
            return Err(FrameError::NonFinite { index });
        }
        Ok(())
    }
}

/// Splits a capture into wire frames of `frame_len` samples for `key`'s
/// trace number `trace_seq` (the final frame carries the remainder and is
/// marked `last`; `frame_len` is floored at 1; an empty capture yields one
/// empty terminal frame so the stream still completes).
pub fn frame_stream(
    key: KeyId,
    trace_seq: u64,
    samples: &[f64],
    frame_len: usize,
) -> Vec<TraceFrame> {
    let frame_len = frame_len.max(1);
    if samples.is_empty() {
        return vec![TraceFrame {
            key,
            trace_seq,
            frame_seq: 0,
            last: true,
            samples: Vec::new(),
        }];
    }
    let count = samples.len().div_ceil(frame_len);
    (0..count)
        .map(|i| {
            let start = i * frame_len;
            let end = (start + frame_len).min(samples.len());
            TraceFrame {
                key,
                trace_seq,
                frame_seq: i as u32,
                last: i + 1 == count,
                samples: samples[start..end].to_vec(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_stream_round_trips() {
        let samples: Vec<f64> = (0..1000).map(|i| f64::from(i) * 0.5).collect();
        let frames = frame_stream(7, 3, &samples, 256);
        assert_eq!(frames.len(), 4);
        assert!(frames.iter().all(|f| f.key == 7 && f.trace_seq == 3));
        assert!(frames[3].last && !frames[0].last);
        let rebuilt: Vec<f64> = frames.iter().flat_map(|f| f.samples.clone()).collect();
        assert_eq!(rebuilt, samples);
    }

    #[test]
    fn empty_trace_still_terminates() {
        let frames = frame_stream(1, 0, &[], 64);
        assert_eq!(frames.len(), 1);
        assert!(frames[0].last && frames[0].samples.is_empty());
    }

    #[test]
    fn validate_rejects_garbage() {
        let mut frame = frame_stream(1, 0, &[1.0, 2.0, f64::NAN], 8).remove(0);
        assert_eq!(frame.validate(8), Err(FrameError::NonFinite { index: 2 }));
        frame.samples = vec![0.0; 9];
        assert_eq!(
            frame.validate(8),
            Err(FrameError::Oversized { len: 9, max: 8 })
        );
        frame.samples = vec![0.0; 8];
        assert_eq!(frame.validate(8), Ok(()));
    }
}
