//! Per-key sharded hint accumulation: merging each victim's stream of
//! robust attack results into one monotone hint set and an incremental
//! bikz estimate, with a per-victim degradation ladder ending in
//! quarantine.
//!
//! ## Bit-identity by construction
//!
//! The scorer folds a victim's merged [`HintDecision`]s through
//! [`reveal_attack::integrate_decision`] in ascending coordinate order —
//! exactly what [`reveal_attack::report_robust`] does — so after a single
//! zero-fault trace the emitted estimate equals the one-shot report
//! bit-for-bit. Across traces, decisions only *upgrade* (skipped →
//! approximate → perfect; approximate keeps the smallest ε²), and the
//! merge is a left fold over trace order, so an interrupted-and-restored
//! run reproduces an uninterrupted one exactly.
//!
//! ## Sharding
//!
//! Victims are partitioned into `key % shards` ordered maps. The scorer
//! is single-threaded (per-key fold order is the determinism contract),
//! so shards are a data-layout choice: they give checkpoints a stable
//! iteration order, bound any per-shard scan, and are the unit a future
//! multi-scorer deployment would lock.

use crate::{KeyId, ServeError};
use reveal_attack::{integrate_decision, HintDecision, Rail, RobustAttackResult};
use reveal_hints::{DbddInstance, HintSummary, LweParameters, SecurityEstimate};
use std::collections::BTreeMap;
use std::fmt;

/// Why a victim key was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The stream failed this many consecutive traces.
    ConsecutiveFailures(u32),
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::ConsecutiveFailures(n) => {
                write!(f, "{n} consecutive failed traces")
            }
        }
    }
}

/// The bottom rung of the service-level degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimStatus {
    /// Healthy: traces are analyzed and hints accumulate.
    Active,
    /// Poisoned: frames are dropped at ingress, state is frozen.
    Quarantined(QuarantineReason),
}

/// One victim's accumulated state.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimState {
    /// Best decision seen per coordinate (the monotone merge).
    pub decisions: Vec<HintDecision>,
    /// Trace sequence numbers consumed (success or failure); the next
    /// expected `trace_seq`.
    pub traces_processed: u64,
    /// Traces that ended in a typed failure.
    pub traces_failed: u64,
    /// Failure run length driving the quarantine rung.
    pub consecutive_failures: u32,
    /// Active or quarantined.
    pub status: VictimStatus,
    /// The estimate after the last successful fold.
    pub last_estimate: Option<SecurityEstimate>,
    /// Hint counts from the last fold.
    pub summary: HintSummary,
    /// Cumulative coefficient decisions scored by the template (LDA) rail
    /// across this victim's successful traces.
    pub lda_coefficients: u64,
    /// Cumulative coefficient decisions won by the learned rail under
    /// per-burst arbitration.
    pub learned_coefficients: u64,
}

impl VictimState {
    fn new(coefficients: usize) -> Self {
        Self {
            decisions: vec![HintDecision::Skipped; coefficients],
            traces_processed: 0,
            traces_failed: 0,
            consecutive_failures: 0,
            status: VictimStatus::Active,
            last_estimate: None,
            summary: HintSummary::default(),
            lda_coefficients: 0,
            learned_coefficients: 0,
        }
    }
}

/// One incremental result emission, per consumed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimUpdate {
    /// The victim key.
    pub key: KeyId,
    /// The trace this update reflects.
    pub trace_seq: u64,
    /// Current bikz estimate for this key (baseline if nothing succeeded
    /// yet).
    pub bikz: f64,
    /// Equivalent bit security.
    pub bits: f64,
    /// Coordinates currently held as perfect hints.
    pub perfect: usize,
    /// Coordinates currently held as approximate hints.
    pub approximate: usize,
    /// Coordinates currently skipped.
    pub skipped: usize,
    /// Whether this trace failed (the update repeats the previous
    /// estimate).
    pub failed: Option<ServeError>,
    /// Whether this update quarantined the key.
    pub quarantined: bool,
    /// Coefficients of this trace scored by the template (LDA) rail
    /// (0 for failed traces).
    pub lda_coefficients: u64,
    /// Coefficients of this trace won by the learned rail (0 for failed
    /// traces).
    pub learned_coefficients: u64,
}

/// Decision rank for the monotone merge.
fn rank(decision: &HintDecision) -> u8 {
    match decision {
        HintDecision::Perfect { .. } => 2,
        HintDecision::Approximate { .. } => 1,
        HintDecision::Skipped => 0,
    }
}

/// The monotone per-coordinate merge: higher rank wins; equal-rank
/// approximate hints keep the smaller ε² (ties keep the incumbent, so the
/// merge is deterministic and order-stable).
fn merge_decision(current: &HintDecision, incoming: &HintDecision) -> HintDecision {
    if rank(incoming) > rank(current) {
        return *incoming;
    }
    if let (
        HintDecision::Approximate {
            eps_squared: cur, ..
        },
        HintDecision::Approximate {
            eps_squared: new, ..
        },
    ) = (current, incoming)
    {
        if new < cur {
            return *incoming;
        }
    }
    *current
}

/// The per-key sharded hint store.
pub struct ShardedAccumulator {
    shards: Vec<BTreeMap<KeyId, VictimState>>,
    params: LweParameters,
    baseline: SecurityEstimate,
    coefficients: usize,
    quarantine_threshold: u32,
}

impl ShardedAccumulator {
    /// An empty store for `coefficients`-coordinate victims under `params`.
    pub fn new(
        params: LweParameters,
        coefficients: usize,
        shards: usize,
        quarantine_threshold: u32,
    ) -> Self {
        let baseline = DbddInstance::from_lwe(&params).estimate();
        Self {
            shards: (0..shards.max(1)).map(|_| BTreeMap::new()).collect(),
            params,
            baseline,
            coefficients,
            quarantine_threshold: quarantine_threshold.max(1),
        }
    }

    /// The LWE parameters this store estimates against.
    pub fn params(&self) -> &LweParameters {
        &self.params
    }

    /// Expected coefficients per victim.
    pub fn coefficients(&self) -> usize {
        self.coefficients
    }

    /// The no-hints baseline estimate.
    pub fn baseline(&self) -> SecurityEstimate {
        self.baseline
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Victims tracked across all shards.
    pub fn victims(&self) -> usize {
        self.shards.iter().map(BTreeMap::len).sum()
    }

    fn shard_of(&self, key: KeyId) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    /// Read access to one victim's state.
    pub fn victim(&self, key: KeyId) -> Option<&VictimState> {
        self.shards[self.shard_of(key)].get(&key)
    }

    /// The next trace sequence number expected for `key` (0 for unseen
    /// victims).
    pub fn next_trace_seq(&self, key: KeyId) -> u64 {
        self.victim(key).map_or(0, |v| v.traces_processed)
    }

    /// Iterates victims in (shard, key) order — the checkpoint order.
    pub fn iter(&self) -> impl Iterator<Item = (KeyId, &VictimState)> {
        self.shards
            .iter()
            .flat_map(|shard| shard.iter().map(|(k, v)| (*k, v)))
    }

    /// Installs a restored victim state (checkpoint restore path).
    pub fn restore_victim(&mut self, key: KeyId, state: VictimState) {
        let shard = self.shard_of(key);
        self.shards[shard].insert(key, state);
    }

    fn entry(&mut self, key: KeyId) -> &mut VictimState {
        let shard = self.shard_of(key);
        let coefficients = self.coefficients;
        self.shards[shard]
            .entry(key)
            .or_insert_with(|| VictimState::new(coefficients))
    }

    /// Folds the merged decision vector of `key` into a fresh DBDD
    /// instance — the same arithmetic and order as
    /// [`reveal_attack::report_robust`].
    fn fold(
        &self,
        decisions: &[HintDecision],
    ) -> Result<(SecurityEstimate, HintSummary), ServeError> {
        let mut instance = DbddInstance::from_lwe(&self.params);
        let mut summary = HintSummary::default();
        for (coord, decision) in decisions.iter().enumerate() {
            integrate_decision(&mut instance, coord, decision, &mut summary)
                .map_err(|e| ServeError::Accumulator(format!("coordinate {coord}: {e}")))?;
        }
        Ok((instance.estimate(), summary))
    }

    /// Consumes a successful analysis of `key`'s trace `trace_seq`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Accumulator`] on coefficient-count mismatch or hint
    /// integration failure (configuration errors, not data faults).
    pub fn apply_success(
        &mut self,
        key: KeyId,
        trace_seq: u64,
        result: &RobustAttackResult,
    ) -> Result<VictimUpdate, ServeError> {
        if result.coefficients.len() != self.coefficients {
            return Err(ServeError::Accumulator(format!(
                "result has {} coefficients, store expects {}",
                result.coefficients.len(),
                self.coefficients
            )));
        }
        let merged: Vec<HintDecision> = {
            let state = self.entry(key);
            state
                .decisions
                .iter()
                .zip(result.coefficients.iter())
                .map(|(current, c)| merge_decision(current, &c.decision))
                .collect()
        };
        let lda = result
            .coefficients
            .iter()
            .filter(|c| c.rail == Rail::Lda)
            .count() as u64;
        let learned = result.coefficients.len() as u64 - lda;
        let (estimate, summary) = self.fold(&merged)?;
        let state = self.entry(key);
        state.decisions = merged;
        state.traces_processed = state.traces_processed.max(trace_seq + 1);
        state.consecutive_failures = 0;
        state.last_estimate = Some(estimate);
        state.summary = summary;
        state.lda_coefficients += lda;
        state.learned_coefficients += learned;
        Ok(VictimUpdate {
            key,
            trace_seq,
            bikz: estimate.bikz,
            bits: estimate.bits,
            perfect: summary.perfect,
            approximate: summary.approximate,
            skipped: summary.skipped,
            failed: None,
            quarantined: false,
            lda_coefficients: lda,
            learned_coefficients: learned,
        })
    }

    /// Consumes a failed trace: the estimate is repeated, the failure run
    /// length advances, and the key is quarantined at the threshold.
    pub fn apply_failure(&mut self, key: KeyId, trace_seq: u64, error: ServeError) -> VictimUpdate {
        let threshold = self.quarantine_threshold;
        let baseline = self.baseline;
        let state = self.entry(key);
        state.traces_processed = state.traces_processed.max(trace_seq + 1);
        state.traces_failed += 1;
        state.consecutive_failures += 1;
        let mut newly_quarantined = false;
        if state.consecutive_failures >= threshold && matches!(state.status, VictimStatus::Active) {
            state.status = VictimStatus::Quarantined(QuarantineReason::ConsecutiveFailures(
                state.consecutive_failures,
            ));
            newly_quarantined = true;
        }
        let estimate = state.last_estimate.unwrap_or(baseline);
        let summary = state.summary;
        VictimUpdate {
            key,
            trace_seq,
            bikz: estimate.bikz,
            bits: estimate.bits,
            perfect: summary.perfect,
            approximate: summary.approximate,
            skipped: summary.skipped,
            failed: Some(error),
            quarantined: newly_quarantined,
            lda_coefficients: 0,
            learned_coefficients: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LweParameters {
        LweParameters::seal_like(32, 3329.0, 2.0)
    }

    fn result_with(decisions: Vec<HintDecision>) -> RobustAttackResult {
        RobustAttackResult {
            coefficients: decisions
                .into_iter()
                .map(|decision| reveal_attack::RobustCoefficient {
                    estimate: None,
                    confidence: 0.0,
                    suspicion: reveal_attack::Suspicion::default(),
                    decision,
                    rail: Rail::Lda,
                })
                .collect(),
            diagnostics: reveal_attack::Diagnostics::default(),
        }
    }

    #[test]
    fn merge_is_monotone_and_deterministic() {
        let p = HintDecision::Perfect { value: 3 };
        let a1 = HintDecision::Approximate {
            value: 2,
            eps_squared: 0.5,
        };
        let a2 = HintDecision::Approximate {
            value: 1,
            eps_squared: 0.25,
        };
        let s = HintDecision::Skipped;
        assert_eq!(merge_decision(&s, &a1), a1);
        assert_eq!(merge_decision(&a1, &s), a1);
        assert_eq!(merge_decision(&a1, &a2), a2);
        assert_eq!(merge_decision(&a2, &a1), a2);
        assert_eq!(merge_decision(&a2, &p), p);
        assert_eq!(merge_decision(&p, &a2), p);
    }

    #[test]
    fn single_trace_matches_report_robust_bitwise() {
        let decisions: Vec<HintDecision> = (0..32)
            .map(|i| match i % 3 {
                0 => HintDecision::Perfect { value: 1 },
                1 => HintDecision::Approximate {
                    value: -1,
                    eps_squared: 0.75,
                },
                _ => HintDecision::Skipped,
            })
            .collect();
        let result = result_with(decisions);
        let report = reveal_attack::report_robust(&result, &params()).unwrap();
        let mut acc = ShardedAccumulator::new(params(), 32, 4, 3);
        let update = acc.apply_success(42, 0, &result).unwrap();
        assert_eq!(update.bikz.to_bits(), report.with_hints.bikz.to_bits());
        assert_eq!(
            (update.perfect, update.approximate, update.skipped),
            (
                report.hints.perfect,
                report.hints.approximate,
                report.hints.skipped
            )
        );
    }

    #[test]
    fn hints_accumulate_monotonically_across_traces() {
        // Large enough that the estimate does not floor at the minimum
        // block size (tiny instances saturate at bikz = 2).
        let big = LweParameters::seal_like(256, 132120577.0, 3.2);
        let mut acc = ShardedAccumulator::new(big, 256, 4, 3);
        let weak = result_with(
            (0..256)
                .map(|i| {
                    if i < 128 {
                        HintDecision::Approximate {
                            value: 0,
                            eps_squared: 1.0,
                        }
                    } else {
                        HintDecision::Skipped
                    }
                })
                .collect(),
        );
        let strong = result_with(
            (0..256)
                .map(|i| {
                    if i < 128 {
                        HintDecision::Perfect { value: 0 }
                    } else {
                        HintDecision::Skipped
                    }
                })
                .collect(),
        );
        let u1 = acc.apply_success(7, 0, &weak).unwrap();
        let u2 = acc.apply_success(7, 1, &strong).unwrap();
        let u3 = acc.apply_success(7, 2, &weak).unwrap();
        assert!(u2.bikz < u1.bikz, "stronger hints lower bikz");
        // A later weaker trace cannot undo the perfect hints.
        assert_eq!(u3.bikz.to_bits(), u2.bikz.to_bits());
        assert_eq!(acc.victim(7).unwrap().traces_processed, 3);
    }

    #[test]
    fn failures_ladder_into_quarantine_and_freeze_estimates() {
        let mut acc = ShardedAccumulator::new(params(), 32, 4, 2);
        let good = result_with(vec![HintDecision::Perfect { value: 0 }; 32]);
        let u0 = acc.apply_success(5, 0, &good).unwrap();
        let f1 = acc.apply_failure(5, 1, ServeError::GapAbandoned);
        assert!(!f1.quarantined);
        assert_eq!(f1.bikz.to_bits(), u0.bikz.to_bits());
        let f2 = acc.apply_failure(5, 2, ServeError::GapAbandoned);
        assert!(f2.quarantined);
        assert!(matches!(
            acc.victim(5).unwrap().status,
            VictimStatus::Quarantined(QuarantineReason::ConsecutiveFailures(2))
        ));
        // A third failure does not re-announce quarantine.
        let f3 = acc.apply_failure(5, 3, ServeError::GapAbandoned);
        assert!(!f3.quarantined);
        assert_eq!(acc.victim(5).unwrap().traces_failed, 3);
    }

    #[test]
    fn success_resets_the_failure_run() {
        let mut acc = ShardedAccumulator::new(params(), 32, 4, 3);
        let good = result_with(vec![HintDecision::Skipped; 32]);
        acc.apply_failure(1, 0, ServeError::GapAbandoned);
        acc.apply_failure(1, 1, ServeError::GapAbandoned);
        acc.apply_success(1, 2, &good).unwrap();
        assert_eq!(acc.victim(1).unwrap().consecutive_failures, 0);
        acc.apply_failure(1, 3, ServeError::GapAbandoned);
        assert!(matches!(
            acc.victim(1).unwrap().status,
            VictimStatus::Active
        ));
    }

    #[test]
    fn sharding_partitions_keys_deterministically() {
        let mut acc = ShardedAccumulator::new(params(), 32, 4, 3);
        let good = result_with(vec![HintDecision::Skipped; 32]);
        for key in 0..16u64 {
            acc.apply_success(key, 0, &good).unwrap();
        }
        assert_eq!(acc.victims(), 16);
        let keys: Vec<KeyId> = acc.iter().map(|(k, _)| k).collect();
        // Shard-major order: shard 0 holds 0,4,8,12 then shard 1 holds 1,5,9,13 …
        assert_eq!(keys[..4], [0, 4, 8, 12]);
        assert_eq!(acc.next_trace_seq(3), 1);
        assert_eq!(acc.next_trace_seq(99), 0);
    }

    #[test]
    fn rail_counts_accumulate_per_victim() {
        let mut acc = ShardedAccumulator::new(params(), 32, 4, 3);
        let mut result = result_with(vec![HintDecision::Skipped; 32]);
        for c in result.coefficients.iter_mut().take(5) {
            c.rail = Rail::Learned;
        }
        let u0 = acc.apply_success(9, 0, &result).unwrap();
        assert_eq!((u0.lda_coefficients, u0.learned_coefficients), (27, 5));
        let u1 = acc.apply_success(9, 1, &result).unwrap();
        assert_eq!((u1.lda_coefficients, u1.learned_coefficients), (27, 5));
        let state = acc.victim(9).unwrap();
        assert_eq!(
            (state.lda_coefficients, state.learned_coefficients),
            (54, 10)
        );
        // Failures contribute no rail counts.
        let f = acc.apply_failure(9, 2, ServeError::GapAbandoned);
        assert_eq!((f.lda_coefficients, f.learned_coefficients), (0, 0));
        assert_eq!(acc.victim(9).unwrap().lda_coefficients, 54);
    }

    #[test]
    fn coefficient_mismatch_is_a_typed_error() {
        let mut acc = ShardedAccumulator::new(params(), 32, 4, 3);
        let bad = result_with(vec![HintDecision::Skipped; 8]);
        assert!(matches!(
            acc.apply_success(0, 0, &bad),
            Err(ServeError::Accumulator(_))
        ));
    }
}
