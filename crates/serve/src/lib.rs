#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! # reveal-serve
//!
//! The RevEAL attack as a long-running service: a fault-tolerant,
//! backpressured supervisor that accepts streams of raw trace frames from
//! many simulated victims, reassembles them, pushes each completed trace
//! through the robust segment→classify→score pipeline against a persistent
//! fitted-template store, and emits incremental hint sets + bikz updates
//! per victim key.
//!
//! The one-shot pipeline (`reveal-attack`) answers "what does this trace
//! leak?"; this crate answers the operational question a real campaign
//! faces: what happens when a million of them arrive over a lossy link,
//! some of them garbage, and the answer must keep flowing anyway. The
//! design is robustness-first:
//!
//! - **Explicit job model.** Three stages — ingress (validate + reassemble),
//!   analyze (robust attack), score (per-key hint accumulation) — joined by
//!   bounded channels ([`reveal_par::channel`]) with block/shed overflow
//!   policies and high-water metrics. Memory is bounded by construction.
//! - **Typed failure, never panic.** Every way a stream can go wrong is a
//!   [`ServeError`] variant; a failed trace becomes a failure *outcome*
//!   that flows through the same scoring path as a success.
//! - **Bounded retry with backoff.** Analysis failures are retried up to
//!   the depth of `reveal_attack::robust`'s relaxation schedule (the same
//!   ladder the driver walks internally), with exponential backoff between
//!   attempts.
//! - **Degradation ladder.** Per coefficient: perfect → approximate →
//!   skipped, gated by the existing confidence machinery; per victim:
//!   repeated failures quarantine the key, so one poisoned stream can
//!   never stall or corrupt the others.
//! - **Checkpoint / restore.** The per-key accumulator state snapshots to a
//!   bit-exact text format ([`checkpoint`]); killing the supervisor
//!   mid-stream and restoring resumes bit-identically.
//!
//! ## Bit-identity contract
//!
//! A zero-fault served stream reproduces the one-shot pipeline exactly:
//! the scorer folds each trace's [`reveal_attack::HintDecision`]s through
//! [`reveal_attack::integrate_decision`] — the same helper, in the same
//! coordinate order, as [`reveal_attack::report_robust`] — so the emitted
//! bikz matches `report_full_attack` bit-for-bit (`f64::to_bits`
//! equality), at any worker count, across a kill + restore.

pub mod accumulator;
pub mod checkpoint;
pub mod frame;
pub mod reassembly;
pub mod supervisor;

pub use accumulator::{
    QuarantineReason, ShardedAccumulator, VictimState, VictimStatus, VictimUpdate,
};
pub use checkpoint::{CheckpointError, Snapshot};
pub use frame::{frame_stream, FrameError, KeyId, TraceFrame};
pub use reassembly::{CompletedTrace, ExpiredStream, Reassembly, ReassemblyError};
pub use supervisor::{IngestHandle, ServeConfig, ServeMetrics, ServeSummary, Supervisor};

use reveal_attack::AttackError;
use std::fmt;

/// A pipeline stage, for typed deadline/queue errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Frame validation and reassembly.
    Ingress,
    /// Robust trace analysis.
    Analyze,
    /// Hint accumulation and reporting.
    Score,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Ingress => write!(f, "ingress"),
            Stage::Analyze => write!(f, "analyze"),
            Stage::Score => write!(f, "score"),
        }
    }
}

/// Every way the service can fail a frame, a trace, or an operation —
/// typed, recoverable, and attributable to one victim stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A frame failed admission validation.
    Frame(FrameError),
    /// Reassembly rejected a frame or dropped a stream.
    Reassembly(ReassemblyError),
    /// A stream stalled past the reassembly deadline (mid-stream
    /// disconnect): frames stopped arriving before the trace completed.
    StreamTimeout {
        /// Milliseconds waited since the last frame made progress.
        waited_ms: u64,
        /// Frames that had arrived before the stall.
        frames_seen: u32,
    },
    /// A stage exceeded its per-item deadline.
    StageDeadline {
        /// Which stage blew the budget.
        stage: Stage,
        /// Observed processing time in milliseconds.
        elapsed_ms: u64,
        /// The configured budget in milliseconds.
        budget_ms: u64,
    },
    /// Analysis failed after the full retry ladder.
    Analysis {
        /// Attempts made (= the retry budget when surfaced).
        attempts: u32,
        /// The final attempt's typed attack error.
        last: AttackError,
    },
    /// The scorer abandoned a trace sequence number that never produced an
    /// outcome (its frames were shed before reassembly began).
    GapAbandoned,
    /// A queue was closed while the item was in flight (shutdown race).
    QueueClosed {
        /// The stage whose input closed.
        stage: Stage,
    },
    /// A submit was rejected because the ingest queue was full under the
    /// shed policy.
    Backpressure,
    /// The victim key is quarantined; its frames are dropped at ingress.
    Quarantined,
    /// Checkpoint encode/decode/IO failure.
    Checkpoint(CheckpointError),
    /// The accumulator rejected a result (coefficient-count mismatch or
    /// hint-integration failure) — indicates a configuration error.
    Accumulator(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Frame(e) => write!(f, "frame rejected: {e}"),
            ServeError::Reassembly(e) => write!(f, "reassembly: {e}"),
            ServeError::StreamTimeout {
                waited_ms,
                frames_seen,
            } => write!(
                f,
                "stream stalled for {waited_ms} ms after {frames_seen} frames"
            ),
            ServeError::StageDeadline {
                stage,
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "stage {stage} took {elapsed_ms} ms against a {budget_ms} ms deadline"
            ),
            ServeError::Analysis { attempts, last } => {
                write!(f, "analysis failed after {attempts} attempts: {last}")
            }
            ServeError::GapAbandoned => write!(f, "trace never produced an outcome"),
            ServeError::QueueClosed { stage } => write!(f, "{stage} queue closed"),
            ServeError::Backpressure => write!(f, "ingest queue full (shed policy)"),
            ServeError::Quarantined => write!(f, "victim key is quarantined"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            ServeError::Accumulator(msg) => write!(f, "accumulator: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Frame(e)
    }
}

impl From<ReassemblyError> for ServeError {
    fn from(e: ReassemblyError) -> Self {
        ServeError::Reassembly(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}
