//! Frame reassembly: turning a lossy, reordered, duplicated arrival
//! sequence back into complete traces, under a hard memory budget.
//!
//! Duplicates are dropped (first payload wins — arrival is serialized
//! through the ingress thread, so this is deterministic), out-of-order
//! frames are held in a per-stream ordered map, and a stream completes
//! when its terminal frame and every predecessor are present. Two things
//! bound memory: a global buffered-sample budget (exceeding it drops the
//! offending stream with a typed error) and a per-stream frame-count
//! bound. Stalled streams — the signature of a mid-stream disconnect —
//! are expired by deadline and surfaced as typed failures, so a client
//! that dies mid-trace costs one timeout, not a leak.

use crate::frame::{KeyId, TraceFrame};
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Reassembly limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReassemblyConfig {
    /// A stream making no progress for this long is expired.
    pub stream_deadline: Duration,
    /// Global cap on buffered samples across all incomplete streams.
    pub max_buffered_samples: usize,
    /// Per-stream cap on frame count (`frame_seq` must stay below this).
    pub max_frames_per_stream: u32,
}

impl Default for ReassemblyConfig {
    fn default() -> Self {
        Self {
            stream_deadline: Duration::from_secs(5),
            max_buffered_samples: 1 << 22,
            max_frames_per_stream: 4096,
        }
    }
}

/// Typed reassembly rejections. Each drops the offending stream so the
/// condition cannot recur on the next frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReassemblyError {
    /// Admitting the frame would exceed the global sample budget.
    BudgetExceeded {
        /// Samples buffered across all streams before this frame.
        buffered: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The frame's sequence number is past the per-stream bound, or past a
    /// previously seen terminal frame.
    BadSequence {
        /// The offending frame sequence number.
        frame_seq: u32,
        /// The bound it violated.
        bound: u32,
    },
}

impl fmt::Display for ReassemblyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReassemblyError::BudgetExceeded { buffered, budget } => {
                write!(f, "{buffered} samples buffered against a {budget} budget")
            }
            ReassemblyError::BadSequence { frame_seq, bound } => {
                write!(f, "frame_seq {frame_seq} violates bound {bound}")
            }
        }
    }
}

impl std::error::Error for ReassemblyError {}

/// A fully reassembled trace, ready for analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTrace {
    /// The victim key.
    pub key: KeyId,
    /// The per-victim trace number.
    pub trace_seq: u64,
    /// The reassembled samples, in frame order.
    pub samples: Vec<f64>,
    /// Frames the stream arrived in.
    pub frames: u32,
    /// Duplicate frames that were dropped.
    pub duplicates: u64,
}

/// An incomplete stream that was expired (deadline) or flushed (shutdown).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpiredStream {
    /// The victim key.
    pub key: KeyId,
    /// The per-victim trace number.
    pub trace_seq: u64,
    /// Milliseconds since the stream last made progress.
    pub waited_ms: u64,
    /// Frames that had arrived.
    pub frames_seen: u32,
}

/// What [`Reassembly::insert`] did with a frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Inserted {
    /// The stream completed; here is the trace.
    Complete(CompletedTrace),
    /// The frame was buffered; the stream is still incomplete.
    Pending,
    /// The frame's sequence number was already present; dropped.
    Duplicate,
}

struct StreamBuf {
    chunks: BTreeMap<u32, Vec<f64>>,
    last_seq: Option<u32>,
    samples: usize,
    duplicates: u64,
    last_progress: Instant,
}

/// The reassembly buffer. Single-owner (the ingress thread).
pub struct Reassembly {
    streams: BTreeMap<(KeyId, u64), StreamBuf>,
    buffered_samples: usize,
    config: ReassemblyConfig,
}

impl Reassembly {
    /// An empty buffer with the given limits.
    pub fn new(config: ReassemblyConfig) -> Self {
        Self {
            streams: BTreeMap::new(),
            buffered_samples: 0,
            config,
        }
    }

    /// Incomplete streams currently buffered.
    pub fn streams(&self) -> usize {
        self.streams.len()
    }

    /// Samples currently buffered across all incomplete streams. Never
    /// exceeds the configured budget.
    pub fn buffered_samples(&self) -> usize {
        self.buffered_samples
    }

    /// Admits one validated frame.
    ///
    /// # Errors
    ///
    /// On [`ReassemblyError`] the offending stream has been dropped and
    /// its buffered samples released; the caller should fail the trace.
    pub fn insert(&mut self, frame: TraceFrame, now: Instant) -> Result<Inserted, ReassemblyError> {
        let id = (frame.key, frame.trace_seq);
        if frame.frame_seq >= self.config.max_frames_per_stream {
            self.drop_stream(&id);
            return Err(ReassemblyError::BadSequence {
                frame_seq: frame.frame_seq,
                bound: self.config.max_frames_per_stream,
            });
        }
        let entry = self.streams.entry(id).or_insert_with(|| StreamBuf {
            chunks: BTreeMap::new(),
            last_seq: None,
            samples: 0,
            duplicates: 0,
            last_progress: now,
        });
        // A frame past a previously declared terminal frame is a protocol
        // violation: the stream is unrecoverable.
        if let Some(last) = entry.last_seq {
            if frame.frame_seq > last || (frame.last && frame.frame_seq != last) {
                let bound = last;
                self.drop_stream(&id);
                return Err(ReassemblyError::BadSequence {
                    frame_seq: frame.frame_seq,
                    bound,
                });
            }
        }
        if entry.chunks.contains_key(&frame.frame_seq) {
            entry.duplicates += 1;
            entry.last_progress = now;
            return Ok(Inserted::Duplicate);
        }
        if self.buffered_samples + frame.samples.len() > self.config.max_buffered_samples {
            let buffered = self.buffered_samples;
            self.drop_stream(&id);
            return Err(ReassemblyError::BudgetExceeded {
                buffered,
                budget: self.config.max_buffered_samples,
            });
        }
        let entry = self
            .streams
            .get_mut(&id)
            .expect("stream entry inserted above");
        if frame.last {
            entry.last_seq = Some(frame.frame_seq);
        }
        entry.samples += frame.samples.len();
        self.buffered_samples += frame.samples.len();
        entry.chunks.insert(frame.frame_seq, frame.samples);
        entry.last_progress = now;

        let complete = entry
            .last_seq
            .is_some_and(|last| entry.chunks.len() as u32 == last + 1);
        if complete {
            let buf = self.streams.remove(&id).expect("stream present");
            self.buffered_samples -= buf.samples;
            let frames = buf.chunks.len() as u32;
            let mut samples = Vec::with_capacity(buf.samples);
            for chunk in buf.chunks.into_values() {
                samples.extend_from_slice(&chunk);
            }
            return Ok(Inserted::Complete(CompletedTrace {
                key: id.0,
                trace_seq: id.1,
                samples,
                frames,
                duplicates: buf.duplicates,
            }));
        }
        Ok(Inserted::Pending)
    }

    /// Expires streams that have made no progress within the deadline —
    /// the mid-stream-disconnect detector.
    pub fn expire(&mut self, now: Instant) -> Vec<ExpiredStream> {
        let deadline = self.config.stream_deadline;
        let stale: Vec<(KeyId, u64)> = self
            .streams
            .iter()
            .filter(|(_, buf)| now.duration_since(buf.last_progress) >= deadline)
            .map(|(id, _)| *id)
            .collect();
        stale
            .into_iter()
            .map(|id| {
                let buf = self.streams.remove(&id).expect("stale stream present");
                self.buffered_samples -= buf.samples;
                ExpiredStream {
                    key: id.0,
                    trace_seq: id.1,
                    waited_ms: now.duration_since(buf.last_progress).as_millis() as u64,
                    frames_seen: buf.chunks.len() as u32,
                }
            })
            .collect()
    }

    /// Flushes every incomplete stream (shutdown): each becomes an expired
    /// entry so the scorer records a typed failure rather than a gap.
    pub fn drain_all(&mut self) -> Vec<ExpiredStream> {
        let ids: Vec<(KeyId, u64)> = self.streams.keys().copied().collect();
        ids.into_iter()
            .map(|id| {
                let buf = self.streams.remove(&id).expect("stream present");
                self.buffered_samples -= buf.samples;
                ExpiredStream {
                    key: id.0,
                    trace_seq: id.1,
                    waited_ms: 0,
                    frames_seen: buf.chunks.len() as u32,
                }
            })
            .collect()
    }

    /// Drops every buffered stream for `key` (quarantine enforcement),
    /// returning how many streams were discarded.
    pub fn drop_key(&mut self, key: KeyId) -> usize {
        let ids: Vec<(KeyId, u64)> = self
            .streams
            .keys()
            .filter(|(k, _)| *k == key)
            .copied()
            .collect();
        let count = ids.len();
        for id in ids {
            self.drop_stream(&id);
        }
        count
    }

    fn drop_stream(&mut self, id: &(KeyId, u64)) {
        if let Some(buf) = self.streams.remove(id) {
            self.buffered_samples -= buf.samples;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame_stream;

    fn cfg() -> ReassemblyConfig {
        ReassemblyConfig {
            stream_deadline: Duration::from_millis(50),
            max_buffered_samples: 10_000,
            max_frames_per_stream: 64,
        }
    }

    #[test]
    fn in_order_stream_completes_bit_identically() {
        let samples: Vec<f64> = (0..1500).map(|i| f64::from(i) * 0.125).collect();
        let mut r = Reassembly::new(cfg());
        let now = Instant::now();
        let mut out = None;
        for frame in frame_stream(9, 2, &samples, 512) {
            match r.insert(frame, now).unwrap() {
                Inserted::Complete(t) => out = Some(t),
                Inserted::Pending => {}
                Inserted::Duplicate => panic!("no duplicates sent"),
            }
        }
        let t = out.expect("completed");
        assert_eq!((t.key, t.trace_seq, t.frames), (9, 2, 3));
        assert!(t
            .samples
            .iter()
            .zip(&samples)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(r.buffered_samples(), 0);
        assert_eq!(r.streams(), 0);
    }

    #[test]
    fn out_of_order_and_duplicates_recover() {
        let samples: Vec<f64> = (0..900).map(f64::from).collect();
        let frames = frame_stream(1, 0, &samples, 300);
        let mut r = Reassembly::new(cfg());
        let now = Instant::now();
        assert_eq!(r.insert(frames[2].clone(), now).unwrap(), Inserted::Pending);
        assert_eq!(r.insert(frames[0].clone(), now).unwrap(), Inserted::Pending);
        assert_eq!(
            r.insert(frames[0].clone(), now).unwrap(),
            Inserted::Duplicate
        );
        match r.insert(frames[1].clone(), now).unwrap() {
            Inserted::Complete(t) => {
                assert_eq!(t.samples, samples);
                assert_eq!(t.duplicates, 1);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn budget_is_enforced_and_released() {
        let mut r = Reassembly::new(ReassemblyConfig {
            max_buffered_samples: 1000,
            ..cfg()
        });
        let now = Instant::now();
        // Incomplete stream holding 900 samples.
        let frames = frame_stream(1, 0, &vec![0.0; 1800], 900);
        r.insert(frames[0].clone(), now).unwrap();
        assert_eq!(r.buffered_samples(), 900);
        // A second stream pushing past the budget is rejected and dropped.
        let big = frame_stream(2, 0, &vec![0.0; 400], 200);
        assert!(matches!(
            r.insert(big[0].clone(), now),
            Err(ReassemblyError::BudgetExceeded { .. })
        ));
        assert_eq!(r.buffered_samples(), 900);
        assert_eq!(r.streams(), 1);
    }

    #[test]
    fn stalled_stream_expires() {
        let mut r = Reassembly::new(cfg());
        let t0 = Instant::now();
        let frames = frame_stream(5, 7, &vec![1.0; 600], 200);
        r.insert(frames[0].clone(), t0).unwrap();
        assert!(r.expire(t0).is_empty());
        let expired = r.expire(t0 + Duration::from_millis(60));
        assert_eq!(expired.len(), 1);
        assert_eq!((expired[0].key, expired[0].trace_seq), (5, 7));
        assert_eq!(expired[0].frames_seen, 1);
        assert_eq!(r.buffered_samples(), 0);
    }

    #[test]
    fn sequence_violations_drop_the_stream() {
        let mut r = Reassembly::new(cfg());
        let now = Instant::now();
        let mut frames = frame_stream(3, 0, &vec![1.0; 600], 200);
        // Deliver the terminal frame, then a frame past it.
        r.insert(frames[2].clone(), now).unwrap();
        frames[1].frame_seq = 9;
        assert!(matches!(
            r.insert(frames[1].clone(), now),
            Err(ReassemblyError::BadSequence { frame_seq: 9, .. })
        ));
        assert_eq!(r.streams(), 0);
    }

    #[test]
    fn drop_key_discards_all_streams_for_that_key() {
        let mut r = Reassembly::new(cfg());
        let now = Instant::now();
        for trace in 0..3u64 {
            let frames = frame_stream(8, trace, &vec![1.0; 400], 200);
            r.insert(frames[0].clone(), now).unwrap();
        }
        let frames = frame_stream(9, 0, &vec![1.0; 400], 200);
        r.insert(frames[0].clone(), now).unwrap();
        assert_eq!(r.drop_key(8), 3);
        assert_eq!(r.streams(), 1);
        assert_eq!(r.buffered_samples(), 200);
    }
}
