//! The three-stage supervisor: ingress → analyze → score, joined by
//! bounded channels, degrading gracefully under every fault the chaos
//! harness can throw.
//!
//! ## Topology
//!
//! ```text
//!  clients ──IngestHandle──▶ [ingest queue] ── ingress thread
//!                                                │  validate / reassemble / expire
//!                                                ▼
//!                                          [work queue] ── N worker threads
//!                                                │  robust attack + retry ladder
//!                                                ▼
//!                                        [result queue] ── scorer thread
//!                                                │  per-key reorder + fold
//!                                                ▼
//!                                   updates / checkpoints / metrics
//! ```
//!
//! The scorer is single-threaded on purpose: per-key fold order is the
//! determinism contract, so worker count only changes *when* outcomes
//! arrive, never what they fold to. A per-key reorder buffer re-serializes
//! outcomes by `trace_seq` before they touch the accumulator, which is why
//! a zero-fault stream emits bit-identical estimates at any
//! `REVEAL_THREADS`.
//!
//! ## Shutdown vs kill
//!
//! [`Supervisor::shutdown`] is the graceful path: close ingest, drain every
//! queue through the normal machinery (incomplete streams become typed
//! failures), write a final checkpoint, join, and report.
//! [`Supervisor::kill`] models a crash: raise the kill flag, slam every
//! channel shut, join, and deliberately skip the final checkpoint — the
//! recovery test restores from whatever the *periodic* checkpoint last
//! persisted, which is exactly what a real crash leaves behind.

use crate::accumulator::{ShardedAccumulator, VictimUpdate};
use crate::checkpoint::Snapshot;
use crate::frame::{KeyId, TraceFrame};
use crate::reassembly::{ExpiredStream, Inserted, Reassembly, ReassemblyConfig};
use crate::{ServeError, Stage};
use reveal_attack::{
    relaxation_schedule, Calibration, RobustAttack, RobustAttackResult, RobustConfig, TrainedAttack,
};
use reveal_hints::{HintPolicy, LweParameters};
use reveal_par::channel::{bounded, OverflowPolicy, QueueMetrics, Receiver, RecvError, Sender};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration. Construct with [`ServeConfig::new`] and override
/// fields as needed; every bound has a conservative default.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// LWE parameters the hint store estimates against.
    pub params: LweParameters,
    /// Coefficients per victim trace.
    pub coefficients: usize,
    /// Hint classification policy.
    pub policy: HintPolicy,
    /// Robust-pipeline knobs (defaults preserve bit-identity on clean
    /// captures).
    pub robust: RobustConfig,
    /// Clean-capture calibration, if one was measured.
    pub calibration: Option<Calibration>,
    /// Hint-store shard count.
    pub shards: usize,
    /// Analysis worker threads; 0 means [`reveal_par::max_threads`].
    pub workers: usize,
    /// Ingest queue capacity (frames).
    pub ingest_capacity: usize,
    /// Work queue capacity (completed traces awaiting analysis).
    pub work_capacity: usize,
    /// Result queue capacity (outcomes awaiting scoring).
    pub result_capacity: usize,
    /// Update buffer capacity; the oldest update is dropped (and counted)
    /// past this.
    pub update_capacity: usize,
    /// What a full ingest queue does to a submit: block the client or shed
    /// the frame.
    pub ingest_policy: OverflowPolicy,
    /// Per-trace analysis deadline; overruns become
    /// [`ServeError::StageDeadline`] failures.
    pub stage_deadline: Duration,
    /// Reassembly limits (stream deadline, memory budget, frame bound).
    pub reassembly: ReassemblyConfig,
    /// Per-frame payload bound for admission control.
    pub max_frame_samples: usize,
    /// Analysis retry budget; 0 means the depth of the robust relaxation
    /// schedule.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Consecutive failed traces before a victim key is quarantined.
    pub quarantine_threshold: u32,
    /// Checkpoint after every N scored traces; 0 disables periodic
    /// checkpoints.
    pub checkpoint_every: u64,
    /// Where checkpoints are written (atomic tmp+rename). `None` disables
    /// all checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Scorer reorder-buffer depth per key before a missing `trace_seq` is
    /// abandoned as [`ServeError::GapAbandoned`].
    pub gap_limit: usize,
    /// Poll tick for the ingress expiry sweep and scorer kill checks.
    pub tick: Duration,
}

impl ServeConfig {
    /// A configuration with conservative defaults for everything but the
    /// problem shape.
    pub fn new(params: LweParameters, coefficients: usize, policy: HintPolicy) -> Self {
        Self {
            params,
            coefficients,
            policy,
            robust: RobustConfig::default(),
            calibration: None,
            shards: 8,
            workers: 0,
            ingest_capacity: 256,
            work_capacity: 64,
            result_capacity: 128,
            update_capacity: 1024,
            ingest_policy: OverflowPolicy::Block,
            stage_deadline: Duration::from_secs(60),
            reassembly: ReassemblyConfig::default(),
            max_frame_samples: 1 << 20,
            max_retries: 0,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            quarantine_threshold: 3,
            checkpoint_every: 0,
            checkpoint_path: None,
            gap_limit: 64,
            tick: Duration::from_millis(25),
        }
    }
}

/// A point-in-time view of the service counters and queue depths.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMetrics {
    /// Frames accepted off the ingest queue.
    pub frames_received: u64,
    /// Frames rejected by admission validation.
    pub frames_rejected: u64,
    /// Frames dropped because their key is quarantined.
    pub frames_quarantined: u64,
    /// Incomplete streams expired by deadline or shutdown flush.
    pub streams_expired: u64,
    /// Traces that completed reassembly.
    pub traces_completed: u64,
    /// Traces scored as successes.
    pub traces_analyzed: u64,
    /// Traces scored as typed failures.
    pub traces_failed: u64,
    /// Analysis retry attempts beyond the first.
    pub retries: u64,
    /// Updates dropped because the update buffer was full.
    pub updates_dropped: u64,
    /// Periodic checkpoints written.
    pub checkpoints_written: u64,
    /// Checkpoint writes that failed (service keeps running).
    pub checkpoint_failures: u64,
    /// Ingest queue counters (capacity, high-water, depth, shed).
    pub ingest_queue: QueueMetrics,
    /// Work queue counters.
    pub work_queue: QueueMetrics,
    /// Result queue counters.
    pub result_queue: QueueMetrics,
    /// Victim keys tracked.
    pub victims: usize,
    /// Victim keys currently quarantined.
    pub quarantined_keys: usize,
}

/// The terminal report from a graceful [`Supervisor::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Final counters.
    pub metrics: ServeMetrics,
    /// Updates that had not been drained before shutdown.
    pub updates: Vec<VictimUpdate>,
    /// Per-trace end-to-end latencies in milliseconds (reassembly
    /// completion → scored), in scoring order.
    pub latencies_ms: Vec<f64>,
}

/// A completed trace queued for analysis.
struct TraceJob {
    key: KeyId,
    trace_seq: u64,
    samples: Vec<f64>,
    completed_at: Instant,
}

/// One trace's terminal outcome, en route to the scorer.
struct Outcome {
    key: KeyId,
    trace_seq: u64,
    result: Result<RobustAttackResult, ServeError>,
    completed_at: Option<Instant>,
}

#[derive(Default)]
struct Counters {
    frames_received: AtomicU64,
    frames_rejected: AtomicU64,
    frames_quarantined: AtomicU64,
    streams_expired: AtomicU64,
    traces_completed: AtomicU64,
    traces_analyzed: AtomicU64,
    traces_failed: AtomicU64,
    retries: AtomicU64,
    updates_dropped: AtomicU64,
    checkpoints_written: AtomicU64,
    checkpoint_failures: AtomicU64,
}

struct SharedState {
    counters: Counters,
    accumulator: Mutex<ShardedAccumulator>,
    quarantined: Mutex<BTreeSet<KeyId>>,
    updates: Mutex<VecDeque<VictimUpdate>>,
    latencies: Mutex<Vec<f64>>,
    kill: AtomicBool,
    workers_active: AtomicUsize,
}

/// Poison-proof lock: a panicking holder (which the crate forbids anyway)
/// must not cascade into every other thread.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A cloneable client-side submit handle.
#[derive(Clone)]
pub struct IngestHandle {
    tx: Sender<TraceFrame>,
    policy: OverflowPolicy,
}

impl IngestHandle {
    /// Submits one frame, honoring the configured overflow policy.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backpressure`] when the queue is full under the shed
    /// policy; [`ServeError::QueueClosed`] after shutdown/kill.
    pub fn submit(&self, frame: TraceFrame) -> Result<(), ServeError> {
        use reveal_par::channel::SendError;
        match self.tx.send(frame, self.policy) {
            Ok(()) => Ok(()),
            Err(SendError::Full(_)) => Err(ServeError::Backpressure),
            Err(SendError::Closed(_)) => Err(ServeError::QueueClosed {
                stage: Stage::Ingress,
            }),
        }
    }

    /// Ingest queue counters (capacity, depth, high-water, shed).
    pub fn metrics(&self) -> QueueMetrics {
        self.tx.metrics()
    }
}

/// The running service.
pub struct Supervisor {
    tx_ingest: Sender<TraceFrame>,
    tx_work: Sender<TraceJob>,
    tx_results: Sender<Outcome>,
    ingress: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    scorer: Option<JoinHandle<()>>,
    shared: Arc<SharedState>,
    config: ServeConfig,
}

impl Supervisor {
    /// Starts the service with an empty hint store.
    pub fn start(trained: TrainedAttack, config: ServeConfig) -> Self {
        let accumulator = ShardedAccumulator::new(
            config.params,
            config.coefficients,
            config.shards,
            config.quarantine_threshold,
        );
        Self::launch(trained, config, accumulator)
    }

    /// Resumes the service from a checkpoint snapshot; quarantined keys in
    /// the snapshot stay quarantined.
    ///
    /// # Errors
    ///
    /// [`ServeError::Checkpoint`] when the snapshot's parameters do not
    /// match `config`.
    pub fn resume(
        trained: TrainedAttack,
        config: ServeConfig,
        snapshot: &Snapshot,
    ) -> Result<Self, ServeError> {
        snapshot.check_compatible(&config.params, config.coefficients)?;
        let accumulator = snapshot.restore();
        let quarantined: BTreeSet<KeyId> = accumulator
            .iter()
            .filter(|(_, v)| matches!(v.status, crate::accumulator::VictimStatus::Quarantined(_)))
            .map(|(k, _)| k)
            .collect();
        let sup = Self::launch(trained, config, accumulator);
        lock(&sup.shared.quarantined).extend(quarantined);
        Ok(sup)
    }

    fn launch(
        trained: TrainedAttack,
        config: ServeConfig,
        accumulator: ShardedAccumulator,
    ) -> Self {
        let worker_count = if config.workers == 0 {
            reveal_par::max_threads()
        } else {
            config.workers
        };
        let (tx_ingest, rx_ingest) = bounded::<TraceFrame>(config.ingest_capacity);
        let (tx_work, rx_work) = bounded::<TraceJob>(config.work_capacity);
        let (tx_results, rx_results) = bounded::<Outcome>(config.result_capacity);

        let shared = Arc::new(SharedState {
            counters: Counters::default(),
            accumulator: Mutex::new(accumulator),
            quarantined: Mutex::new(BTreeSet::new()),
            updates: Mutex::new(VecDeque::new()),
            latencies: Mutex::new(Vec::new()),
            kill: AtomicBool::new(false),
            workers_active: AtomicUsize::new(worker_count),
        });

        let ingress = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            let rx = rx_ingest;
            let tx_work = tx_work.clone();
            let tx_results = tx_results.clone();
            std::thread::Builder::new()
                .name("serve-ingress".into())
                .spawn(move || ingress_loop(&shared, &config, &rx, &tx_work, &tx_results))
                .expect("spawn ingress thread")
        };

        let trained = Arc::new(trained);
        // Workers share one receiver: each job is delivered to exactly one
        // of them, whichever wins the next recv.
        let rx_work = Arc::new(rx_work);
        let workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let config = config.clone();
                let trained = Arc::clone(&trained);
                let rx = Arc::clone(&rx_work);
                let tx = tx_results.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &config, &trained, &rx, &tx))
                    .expect("spawn worker thread")
            })
            .collect();

        let scorer = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::Builder::new()
                .name("serve-scorer".into())
                .spawn(move || scorer_loop(&shared, &config, &rx_results))
                .expect("spawn scorer thread")
        };

        Self {
            tx_ingest,
            tx_work,
            tx_results,
            ingress: Some(ingress),
            workers,
            scorer: Some(scorer),
            shared,
            config,
        }
    }

    /// A cloneable submit handle for clients.
    pub fn handle(&self) -> IngestHandle {
        IngestHandle {
            tx: self.tx_ingest.clone(),
            policy: self.config.ingest_policy,
        }
    }

    /// Drains all pending incremental updates, in scoring order.
    pub fn drain_updates(&self) -> Vec<VictimUpdate> {
        lock(&self.shared.updates).drain(..).collect()
    }

    /// A live snapshot of the hint store (for ad-hoc checkpointing or
    /// inspection while the service runs).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(
            &lock(&self.shared.accumulator),
            self.config.quarantine_threshold,
        )
    }

    /// Current counters and queue depths.
    pub fn metrics(&self) -> ServeMetrics {
        let c = &self.shared.counters;
        ServeMetrics {
            frames_received: c.frames_received.load(Ordering::Relaxed),
            frames_rejected: c.frames_rejected.load(Ordering::Relaxed),
            frames_quarantined: c.frames_quarantined.load(Ordering::Relaxed),
            streams_expired: c.streams_expired.load(Ordering::Relaxed),
            traces_completed: c.traces_completed.load(Ordering::Relaxed),
            traces_analyzed: c.traces_analyzed.load(Ordering::Relaxed),
            traces_failed: c.traces_failed.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            updates_dropped: c.updates_dropped.load(Ordering::Relaxed),
            checkpoints_written: c.checkpoints_written.load(Ordering::Relaxed),
            checkpoint_failures: c.checkpoint_failures.load(Ordering::Relaxed),
            ingest_queue: self.tx_ingest.metrics(),
            work_queue: self.tx_work.metrics(),
            result_queue: self.tx_results.metrics(),
            victims: lock(&self.shared.accumulator).victims(),
            quarantined_keys: lock(&self.shared.quarantined).len(),
        }
    }

    /// Graceful shutdown: close ingest, drain every stage, write a final
    /// checkpoint, join all threads, and report.
    pub fn shutdown(mut self) -> ServeSummary {
        self.tx_ingest.close();
        if let Some(h) = self.ingress.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.scorer.take() {
            let _ = h.join();
        }
        let metrics = self.metrics();
        ServeSummary {
            metrics,
            updates: self.drain_updates(),
            latencies_ms: lock(&self.shared.latencies).clone(),
        }
    }

    /// Crash the service: raise the kill flag, slam every channel shut,
    /// join, and skip the final checkpoint. Whatever the last *periodic*
    /// checkpoint persisted is what a restore sees — crash semantics.
    pub fn kill(mut self) {
        self.shared.kill.store(true, Ordering::SeqCst);
        self.tx_ingest.close();
        self.tx_work.close();
        self.tx_results.close();
        if let Some(h) = self.ingress.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.scorer.take() {
            let _ = h.join();
        }
    }
}

/// Sends a failure outcome toward the scorer; send errors are swallowed
/// (they only happen while the service is being killed).
fn send_failure(tx: &Sender<Outcome>, key: KeyId, trace_seq: u64, error: ServeError) {
    let _ = tx.send(
        Outcome {
            key,
            trace_seq,
            result: Err(error),
            completed_at: None,
        },
        OverflowPolicy::Block,
    );
}

fn expired_to_failures(tx: &Sender<Outcome>, shared: &SharedState, expired: Vec<ExpiredStream>) {
    for e in expired {
        shared
            .counters
            .streams_expired
            .fetch_add(1, Ordering::Relaxed);
        send_failure(
            tx,
            e.key,
            e.trace_seq,
            ServeError::StreamTimeout {
                waited_ms: e.waited_ms,
                frames_seen: e.frames_seen,
            },
        );
    }
}

fn ingress_loop(
    shared: &SharedState,
    config: &ServeConfig,
    rx: &Receiver<TraceFrame>,
    tx_work: &Sender<TraceJob>,
    tx_results: &Sender<Outcome>,
) {
    let mut reassembly = Reassembly::new(config.reassembly);
    let mut last_sweep = Instant::now();
    loop {
        if shared.kill.load(Ordering::SeqCst) {
            break;
        }
        match rx.recv_timeout(config.tick) {
            Ok(frame) => {
                shared
                    .counters
                    .frames_received
                    .fetch_add(1, Ordering::Relaxed);
                let key = frame.key;
                let trace_seq = frame.trace_seq;
                if lock(&shared.quarantined).contains(&key) {
                    shared
                        .counters
                        .frames_quarantined
                        .fetch_add(1, Ordering::Relaxed);
                    reassembly.drop_key(key);
                    continue;
                }
                if let Err(e) = frame.validate(config.max_frame_samples) {
                    shared
                        .counters
                        .frames_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    send_failure(tx_results, key, trace_seq, ServeError::Frame(e));
                    continue;
                }
                let now = Instant::now();
                match reassembly.insert(frame, now) {
                    Ok(Inserted::Complete(trace)) => {
                        shared
                            .counters
                            .traces_completed
                            .fetch_add(1, Ordering::Relaxed);
                        let job = TraceJob {
                            key: trace.key,
                            trace_seq: trace.trace_seq,
                            samples: trace.samples,
                            completed_at: now,
                        };
                        if tx_work.send(job, OverflowPolicy::Block).is_err() {
                            break;
                        }
                    }
                    Ok(Inserted::Pending | Inserted::Duplicate) => {}
                    Err(e) => {
                        send_failure(tx_results, key, trace_seq, ServeError::Reassembly(e));
                    }
                }
                if last_sweep.elapsed() >= config.tick {
                    last_sweep = Instant::now();
                    expired_to_failures(tx_results, shared, reassembly.expire(last_sweep));
                }
            }
            Err(RecvError::Timeout) => {
                last_sweep = Instant::now();
                expired_to_failures(tx_results, shared, reassembly.expire(last_sweep));
            }
            Err(RecvError::Closed) => {
                // Graceful drain: every incomplete stream becomes a typed
                // failure so the scorer never sees a silent gap.
                if !shared.kill.load(Ordering::SeqCst) {
                    expired_to_failures(tx_results, shared, reassembly.drain_all());
                }
                break;
            }
        }
    }
    tx_work.close();
}

fn worker_loop(
    shared: &SharedState,
    config: &ServeConfig,
    trained: &TrainedAttack,
    rx: &Receiver<TraceJob>,
    tx: &Sender<Outcome>,
) {
    let mut robust = RobustAttack::new(trained).with_config(config.robust.clone());
    if let Some(calibration) = config.calibration {
        robust = robust.with_calibration(calibration);
    }
    let budget = if config.max_retries == 0 {
        relaxation_schedule(&trained.config().segment).len() as u32
    } else {
        config.max_retries
    }
    .max(1);

    while let Ok(job) = rx.recv() {
        if shared.kill.load(Ordering::SeqCst) {
            break;
        }
        let start = Instant::now();
        let mut attempt = 0u32;
        let result = loop {
            attempt += 1;
            match robust.attack_trace(&job.samples, config.coefficients, &config.policy) {
                Ok(r) => break Ok(r),
                Err(e) => {
                    if attempt >= budget || shared.kill.load(Ordering::SeqCst) {
                        break Err(ServeError::Analysis {
                            attempts: attempt,
                            last: e,
                        });
                    }
                    shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = config
                        .backoff_base
                        .saturating_mul(1u32 << (attempt - 1).min(16))
                        .min(config.backoff_cap);
                    std::thread::sleep(backoff);
                }
            }
        };
        let elapsed = start.elapsed();
        let result = if result.is_ok() && elapsed > config.stage_deadline {
            Err(ServeError::StageDeadline {
                stage: Stage::Analyze,
                elapsed_ms: elapsed.as_millis() as u64,
                budget_ms: config.stage_deadline.as_millis() as u64,
            })
        } else {
            result
        };
        let outcome = Outcome {
            key: job.key,
            trace_seq: job.trace_seq,
            result,
            completed_at: Some(job.completed_at),
        };
        if tx.send(outcome, OverflowPolicy::Block).is_err() {
            break;
        }
    }
    // The last worker out closes the result queue so the scorer can drain
    // and exit.
    if shared.workers_active.fetch_sub(1, Ordering::SeqCst) == 1 {
        tx.close();
    }
}

/// The scorer's per-key reorder buffers.
type Pending = BTreeMap<KeyId, BTreeMap<u64, Outcome>>;

struct Scorer<'a> {
    shared: &'a SharedState,
    config: &'a ServeConfig,
    pending: Pending,
    scored: u64,
}

impl Scorer<'_> {
    fn expected(&self, key: KeyId) -> u64 {
        lock(&self.shared.accumulator).next_trace_seq(key)
    }

    /// Applies one outcome to the accumulator and emits its update. The
    /// order — fold, checkpoint, then publish — guarantees that any update
    /// a client has observed is covered by a checkpoint at least as new.
    fn apply(&mut self, outcome: Outcome) {
        let update = {
            let mut acc = lock(&self.shared.accumulator);
            match outcome.result {
                Ok(result) => match acc.apply_success(outcome.key, outcome.trace_seq, &result) {
                    Ok(u) => u,
                    Err(e) => acc.apply_failure(outcome.key, outcome.trace_seq, e),
                },
                Err(e) => acc.apply_failure(outcome.key, outcome.trace_seq, e),
            }
        };
        if update.failed.is_some() {
            self.shared
                .counters
                .traces_failed
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.shared
                .counters
                .traces_analyzed
                .fetch_add(1, Ordering::Relaxed);
        }
        if let Some(completed_at) = outcome.completed_at {
            lock(&self.shared.latencies).push(completed_at.elapsed().as_secs_f64() * 1e3);
        }
        if update.quarantined {
            lock(&self.shared.quarantined).insert(update.key);
        }
        self.scored += 1;
        if self.config.checkpoint_every > 0
            && self.scored.is_multiple_of(self.config.checkpoint_every)
        {
            self.write_checkpoint();
        }
        let mut updates = lock(&self.shared.updates);
        if updates.len() >= self.config.update_capacity {
            updates.pop_front();
            self.shared
                .counters
                .updates_dropped
                .fetch_add(1, Ordering::Relaxed);
        }
        updates.push_back(update);
    }

    fn write_checkpoint(&self) {
        let Some(path) = self.config.checkpoint_path.as_deref() else {
            return;
        };
        let snapshot = Snapshot::capture(
            &lock(&self.shared.accumulator),
            self.config.quarantine_threshold,
        );
        match snapshot.write_atomic(path) {
            Ok(()) => {
                self.shared
                    .counters
                    .checkpoints_written
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // Checkpointing is best-effort: a failed write costs
                // recovery freshness, never liveness.
                self.shared
                    .counters
                    .checkpoint_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Buffers an outcome and drains everything now in order.
    fn admit(&mut self, outcome: Outcome) {
        let key = outcome.key;
        if outcome.trace_seq < self.expected(key) {
            return; // replay of an already-scored trace
        }
        self.pending
            .entry(key)
            .or_default()
            .entry(outcome.trace_seq)
            .or_insert(outcome);
        self.drain_key(key, false);
    }

    /// Scores buffered outcomes for `key` in `trace_seq` order. A missing
    /// sequence number stalls the key until `force` (shutdown flush) or
    /// the reorder buffer exceeds the gap limit, at which point the gap is
    /// abandoned as a typed failure so later outcomes can land.
    fn drain_key(&mut self, key: KeyId, force: bool) {
        loop {
            let expected = self.expected(key);
            let Some(map) = self.pending.get_mut(&key) else {
                return;
            };
            // Discard anything the accumulator has already moved past.
            while let Some((&seq, _)) = map.iter().next() {
                if seq < expected {
                    map.remove(&seq);
                } else {
                    break;
                }
            }
            if map.is_empty() {
                self.pending.remove(&key);
                return;
            }
            if let Some(outcome) = map.remove(&expected) {
                self.apply(outcome);
                continue;
            }
            if force || map.len() > self.config.gap_limit {
                self.apply(Outcome {
                    key,
                    trace_seq: expected,
                    result: Err(ServeError::GapAbandoned),
                    completed_at: None,
                });
                continue;
            }
            return;
        }
    }

    /// Shutdown flush: everything still buffered is scored, with gaps
    /// abandoned, in (key, seq) order.
    fn flush(&mut self) {
        let keys: Vec<KeyId> = self.pending.keys().copied().collect();
        for key in keys {
            self.drain_key(key, true);
        }
    }
}

fn scorer_loop(shared: &SharedState, config: &ServeConfig, rx: &Receiver<Outcome>) {
    let mut scorer = Scorer {
        shared,
        config,
        pending: Pending::new(),
        scored: 0,
    };
    loop {
        if shared.kill.load(Ordering::SeqCst) {
            return; // crash semantics: no flush, no final checkpoint
        }
        match rx.recv_timeout(config.tick) {
            Ok(outcome) => scorer.admit(outcome),
            Err(RecvError::Timeout) => {}
            Err(RecvError::Closed) => break,
        }
    }
    if shared.kill.load(Ordering::SeqCst) {
        return;
    }
    scorer.flush();
    scorer.write_checkpoint();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Supervisor behavior is exercised end-to-end (with real trained
    // attacks) in `tests/serve.rs`; the unit tests here cover the pure
    // config plumbing.

    fn config() -> ServeConfig {
        ServeConfig::new(
            LweParameters::seal_like(16, 3329.0, 2.0),
            16,
            HintPolicy::seal_paper(),
        )
    }

    #[test]
    fn defaults_are_bounded_and_sane() {
        let c = config();
        assert!(c.ingest_capacity > 0 && c.work_capacity > 0 && c.result_capacity > 0);
        assert_eq!(c.ingest_policy, OverflowPolicy::Block);
        assert_eq!(c.max_retries, 0, "0 delegates to the relaxation ladder");
        assert!(c.checkpoint_path.is_none() && c.checkpoint_every == 0);
    }
}
