//! Golden-report snapshots: the exact human-format certifier output for
//! every kernel variant at the reference geometry (`n = 8`, one modulus).
//! Any drift in findings, ordering, anchors, or wording shows up as a
//! diff against `tests/golden/<variant>.txt`.
//!
//! To regenerate after an intentional change:
//! `cargo run -p reveal-lint -- --variant <v> --fail-on never > crates/lint/tests/golden/<v>.txt`

use reveal_lint::analyze_kernel;
use reveal_rv32::{KernelVariant, SamplerKernel};

const Q: u64 = 132_120_577;

fn check(variant: KernelVariant, golden: &str) {
    let kernel = SamplerKernel::with_variant(8, &[Q], variant).unwrap();
    let report = analyze_kernel(&kernel);
    let rendered = report.render_human();
    assert_eq!(
        rendered, golden,
        "golden snapshot drift for {variant:?}; regenerate if intentional"
    );
}

#[test]
fn vulnerable_report_matches_golden() {
    check(
        KernelVariant::Vulnerable,
        include_str!("golden/vulnerable.txt"),
    );
}

#[test]
fn branchless_report_matches_golden() {
    check(
        KernelVariant::Branchless,
        include_str!("golden/branchless.txt"),
    );
}

#[test]
fn masked_ladder_report_matches_golden() {
    check(
        KernelVariant::MaskedLadder,
        include_str!("golden/masked.txt"),
    );
}

#[test]
fn shuffled_report_matches_golden() {
    check(KernelVariant::Shuffled, include_str!("golden/shuffled.txt"));
}

#[test]
fn ckks_report_matches_golden() {
    check(KernelVariant::Ckks, include_str!("golden/ckks.txt"));
}
