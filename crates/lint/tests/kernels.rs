//! The paper-level acceptance tests: the analyzer must reproduce §V-A's
//! verdicts on the three sampler variants.
//!
//! - `Vulnerable` (SEAL v3.2, Fig. 2): the sign ladder branches on the
//!   sampled noise — L1 fires at both ladder branches.
//! - `Branchless` (post-v3.6 spirit): constant control flow and addressing —
//!   no L1/L2; only the unavoidable L4 stores remain.
//! - `MaskedLadder` (masking the stored value but keeping the ladder): the
//!   half-measure still trips L1.

use reveal_lint::{analyze_kernel, Rule, Severity};
use reveal_rv32::{KernelVariant, SamplerKernel};

const Q: u64 = 132_120_577;

fn report_for(variant: KernelVariant) -> (reveal_lint::Report, SamplerKernel) {
    let kernel = SamplerKernel::with_variant(8, &[Q], variant).unwrap();
    (analyze_kernel(&kernel), kernel)
}

#[test]
fn vulnerable_ladder_branches_on_the_secret() {
    let (report, kernel) = report_for(KernelVariant::Vulnerable);
    let l1: Vec<_> = report.findings_for(Rule::L1SecretBranch).collect();
    assert!(
        !l1.is_empty(),
        "Fig. 2's ladder must be flagged:\n{}",
        report.render_human()
    );

    // Both arms of the if/else-if ladder are found: the `blez` right after
    // the noise load and the `bgez` at `not_positive`.
    let program = kernel.program();
    let blez_pc = program.symbol("dist_done").unwrap() + 8;
    let bgez_pc = program.symbol("not_positive").unwrap();
    let pcs: Vec<u32> = l1.iter().map(|f| f.pc).collect();
    assert!(
        pcs.contains(&blez_pc),
        "blez at {blez_pc:#x} missing from {pcs:x?}"
    );
    assert!(
        pcs.contains(&bgez_pc),
        "bgez at {bgez_pc:#x} missing from {pcs:x?}"
    );

    // Every finding traces back to the NOISE_PORT load.
    let noise_pc = kernel.secret_sources()[0].pc;
    for f in &l1 {
        assert_eq!(f.origin, noise_pc);
    }

    assert!(!report.is_constant_time());
    assert!(
        report.caveats.is_empty(),
        "no indirect jumps in this variant"
    );
}

#[test]
fn vulnerable_ladder_has_no_secret_addressing() {
    // The paper's vulnerability 2 is value leakage at the store port, not
    // address leakage: poly indices come from public loop counters.
    let (report, _) = report_for(KernelVariant::Vulnerable);
    assert_eq!(report.findings_for(Rule::L2SecretAddress).count(), 0);
    assert!(report.findings_for(Rule::L4SecretStore).count() >= 2);
}

#[test]
fn branchless_variant_is_constant_time() {
    let (report, _) = report_for(KernelVariant::Branchless);
    assert_eq!(
        report.findings_for(Rule::L1SecretBranch).count(),
        0,
        "branchless writer must not branch on the secret:\n{}",
        report.render_human()
    );
    assert_eq!(report.findings_for(Rule::L2SecretAddress).count(), 0);
    assert!(report.is_constant_time());

    // Data-flow leakage remains: the residue still crosses the store port.
    assert!(report.findings_for(Rule::L4SecretStore).count() >= 1);
    assert!(!report.has_findings_at_least(Severity::Warning));
}

#[test]
fn masked_ladder_still_leaks_control_flow() {
    let (report, kernel) = report_for(KernelVariant::MaskedLadder);
    let l1: Vec<_> = report.findings_for(Rule::L1SecretBranch).collect();
    assert!(
        !l1.is_empty(),
        "masking stores does not fix the ladder:\n{}",
        report.render_human()
    );
    let program = kernel.program();
    let bgez_pc = program.symbol("m_not_pos").unwrap();
    assert!(l1.iter().any(|f| f.pc == bgez_pc));
    assert!(!report.is_constant_time());
}

#[test]
fn masked_ladder_masks_the_first_share() {
    // share0 = r is a fresh mask: storing it is clean. Only the share1
    // store (residue - r, still first-order tainted through `sub`) and the
    // plain `mv` path leak at the store port.
    let (report, kernel) = report_for(KernelVariant::MaskedLadder);
    let program = kernel.program();
    let store_block = program.symbol("m_store").unwrap();
    for f in report.findings_for(Rule::L4SecretStore) {
        assert!(
            f.pc >= store_block,
            "only the m_store helper stores data: {:#x}",
            f.pc
        );
    }
    assert!(report.findings_for(Rule::L4SecretStore).count() >= 1);
}

#[test]
fn findings_are_anchored_and_renderable() {
    let (report, _) = report_for(KernelVariant::Vulnerable);
    for f in &report.findings {
        let anchor = f
            .anchor
            .as_ref()
            .expect("kernel programs are fully labeled");
        assert!(!anchor.0.is_empty());
        assert!(!f.instruction.is_empty());
    }
    let human = report.render_human();
    assert!(human.contains("error[L1]"));
    assert!(human.contains("NOT constant-time"));
    let json = report.render_json();
    assert!(json.contains("\"constant_time\":false"));
    assert!(json.contains("\"rule\":\"L1\""));
}

#[test]
fn verdicts_are_stable_across_parameters() {
    // The verdict is a property of the ladder shape, not of n or the
    // modulus count.
    for n in [4usize, 64, 1024] {
        for moduli in [&[Q][..], &[Q, 8_380_417][..]] {
            let kernel = SamplerKernel::with_variant(n, moduli, KernelVariant::Vulnerable).unwrap();
            assert!(!analyze_kernel(&kernel).is_constant_time());
            let kernel = SamplerKernel::with_variant(n, moduli, KernelVariant::Branchless).unwrap();
            assert!(analyze_kernel(&kernel).is_constant_time());
        }
    }
}
