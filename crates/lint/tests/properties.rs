//! Property tests for the certifier's analysis core:
//!
//! * the VSA fixpoint (widening + narrowing + indirect resolution)
//!   terminates on arbitrary decodable programs, not just the kernels;
//! * verdicts and leakage rankings are invariant under an
//!   assemble → disassemble → assemble round trip of every kernel.

use proptest::prelude::*;
use reveal_lint::{analyzer_for_kernel, Analyzer};
use reveal_rv32::power::PowerModelConfig;
use reveal_rv32::{assemble, disassemble, KernelVariant, SamplerKernel};

const Q: u64 = 132_120_577;

/// A tiny deterministic generator (xorshift64*) so program shapes derive
/// from one proptest-supplied seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.0 = x;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const REGS: [&str; 12] = [
    "t0", "t1", "t2", "t3", "a0", "a1", "a2", "a3", "s0", "s1", "s2", "s3",
];

/// Emits a random but always-decodable program: straight-line arithmetic,
/// loads/stores through `s0`, and forward/backward branches and jumps whose
/// targets stay inside the program. Ends in `ebreak`.
fn random_program(seed: u64, len: usize) -> String {
    let mut g = Gen(seed);
    let mut lines = vec!["    lui s0, 0x10000".to_string()];
    for i in 0..len {
        let rd = REGS[g.below(REGS.len() as u64) as usize];
        let rs1 = REGS[g.below(REGS.len() as u64) as usize];
        let rs2 = REGS[g.below(REGS.len() as u64) as usize];
        let line = match g.below(10) {
            0 => format!("    addi {rd}, {rs1}, {}", g.below(4096) as i64 - 2048),
            1 => format!("    add {rd}, {rs1}, {rs2}"),
            2 => format!("    sub {rd}, {rs1}, {rs2}"),
            3 => format!("    and {rd}, {rs1}, {rs2}"),
            4 => format!("    slli {rd}, {rs1}, {}", g.below(32)),
            5 => format!("    mul {rd}, {rs1}, {rs2}"),
            6 => format!("    lw {rd}, {}(s0)", 4 * g.below(16)),
            7 => format!("    sw {rs2}, {}(s0)", 4 * g.below(16)),
            8 => {
                // Branch to any instruction in the body (offsets relative
                // to this line, which sits at index i + 1).
                let target = g.below(len as u64 + 1) as i64;
                let off = 4 * (target - (i as i64 + 1));
                let cond = ["beq", "bne", "blt", "bge"][g.below(4) as usize];
                format!("    {cond} {rs1}, {rs2}, {off}")
            }
            _ => {
                let target = g.below(len as u64 + 1) as i64;
                let off = 4 * (target - (i as i64 + 1));
                format!("    jal zero, {off}")
            }
        };
        lines.push(line);
    }
    lines.push("    ebreak".to_string());
    lines.join("\n")
}

proptest! {
    #[test]
    fn prop_fixpoint_terminates_on_random_programs(seed in any::<u64>()) {
        let src = random_program(seed, 24);
        let program = assemble(&src, 0).expect("generated programs assemble");
        let mut analyzer = Analyzer::new(&program, 0).expect("decodable CFG");
        // Mark an arbitrary load secret so the taint half runs too.
        analyzer.mark_secret_load(4, "prop secret");
        // Termination *is* the property: analyze() must return.
        let report = analyzer.analyze("prop");
        prop_assert!(report.analyzed_instructions > 0);
    }

    #[test]
    fn prop_verdict_invariant_under_asm_roundtrip(
        n_idx in 0usize..3,
        variant_idx in 0usize..5,
    ) {
        let n = [8usize, 16, 64][n_idx];
        let variant = [
            KernelVariant::Vulnerable,
            KernelVariant::Branchless,
            KernelVariant::MaskedLadder,
            KernelVariant::Shuffled,
            KernelVariant::Ckks,
        ][variant_idx];
        let kernel = SamplerKernel::with_variant(n, &[Q], variant).unwrap();
        let program = kernel.program();

        // Round-trip the machine code through the textual pipeline.
        let text: String = disassemble(&program.words, 0)
            .into_iter()
            .map(|(_, _, line)| format!("    {line}\n"))
            .collect();
        let round = assemble(&text, 0).expect("disassembly must reassemble");
        prop_assert_eq!(
            &round.words,
            &program.words,
            "asm → disasm → asm must be the identity on kernel code"
        );

        // And the verdict pipeline agrees bit-for-bit on both images.
        let mut direct = analyzer_for_kernel(&kernel);
        let mut rebuilt = Analyzer::new(&round, 0).unwrap();
        for source in kernel.secret_sources() {
            rebuilt.mark_secret_load(source.pc, source.description);
        }
        for bound in kernel.load_bounds() {
            rebuilt.assume_load_bound(bound);
        }
        // Labels don't survive disassembly, so compare everything except
        // the symbolic anchors: same rules at the same PCs with the same
        // origins and messages, same caveats, same leakage ranking.
        let a = direct.analyze("roundtrip");
        let b = rebuilt.analyze("roundtrip");
        let verdict = |r: &reveal_lint::Report| {
            (
                r.findings
                    .iter()
                    .map(|f| (f.rule, f.pc, f.origin, f.instruction.clone(), f.message.clone()))
                    .collect::<Vec<_>>(),
                r.caveats.clone(),
            )
        };
        prop_assert_eq!(verdict(&a), verdict(&b));

        let config = PowerModelConfig::default();
        let map_a = reveal_lint::leakage::compute_leakage_map(&mut direct, &config, "roundtrip");
        let map_b = reveal_lint::leakage::compute_leakage_map(&mut rebuilt, &config, "roundtrip");
        let ranking = |m: &reveal_lint::LeakageMap| {
            m.sites
                .iter()
                .map(|site| (site.pc, site.mask, format!("{:.9}", site.score()), site.covered.clone()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(ranking(&map_a), ranking(&map_b));
    }
}
