//! The taint fixpoint over the CFG and the L1–L4 rule checks.

use std::collections::{BTreeMap, VecDeque};

use reveal_rv32::cfg::{Cfg, CfgError};
use reveal_rv32::{format_instruction, AluOp, Instruction, MulOp, Program, Reg, SamplerKernel};

use crate::report::{anchor_for, Finding, Report, Rule};
use crate::taint::{AbsVal, RegVal, State, Taint};

/// The analyzer: a program, its CFG, and the declared secret sources.
#[derive(Debug)]
pub struct Analyzer<'p> {
    program: &'p Program,
    base: u32,
    cfg: Cfg,
    secret_loads: BTreeMap<u32, String>,
}

impl<'p> Analyzer<'p> {
    /// Prepares `program` (loaded at `base`) for analysis.
    ///
    /// # Errors
    ///
    /// Fails when the program's control flow cannot be reconstructed
    /// ([`CfgError`]).
    pub fn new(program: &'p Program, base: u32) -> Result<Self, CfgError> {
        let cfg = Cfg::from_program(program, base)?;
        Ok(Analyzer {
            program,
            base,
            cfg,
            secret_loads: BTreeMap::new(),
        })
    }

    /// Declares the load at `pc` a secret source: the register it defines
    /// becomes the taint root `description` names.
    pub fn mark_secret_load(&mut self, pc: u32, description: impl Into<String>) -> &mut Self {
        self.secret_loads.insert(pc, description.into());
        self
    }

    /// The reconstructed CFG (for callers that want to inspect it).
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Runs the taint fixpoint and the rule checks.
    pub fn analyze(&self, target: impl Into<String>) -> Report {
        let in_states = self.fixpoint();
        let mut findings = Vec::new();
        for (pc, instr) in self.cfg.reachable_instructions() {
            let Some(state) = in_states.get(&pc) else {
                continue;
            };
            self.check_rules(pc, instr, state, &mut findings);
        }
        findings.sort_by_key(|f| (f.pc, f.rule));

        let mut caveats = Vec::new();
        for &pc in &self.cfg.unresolved_indirect {
            caveats.push(format!(
                "indirect jump at {pc:#06x} has unknown targets; paths through it are not analyzed"
            ));
        }

        Report {
            target: target.into(),
            findings,
            caveats,
            analyzed_instructions: self.cfg.reachable_instructions().count(),
        }
    }

    /// Worklist fixpoint: the abstract state *entering* each reachable pc.
    fn fixpoint(&self) -> BTreeMap<u32, State> {
        let mut in_states: BTreeMap<u32, State> = BTreeMap::new();
        in_states.insert(self.base, State::entry());
        let mut worklist = VecDeque::from([self.base]);
        while let Some(pc) = worklist.pop_front() {
            let Some(instr) = self.cfg.instruction_at(pc) else {
                continue;
            };
            let mut out = in_states[&pc].clone();
            self.transfer(pc, instr, &mut out);
            for &succ in self.cfg.successors_of(pc) {
                let changed = match in_states.get_mut(&succ) {
                    Some(existing) => existing.join_from(&out),
                    None => {
                        in_states.insert(succ, out.clone());
                        true
                    }
                };
                if changed && !worklist.contains(&succ) {
                    worklist.push_back(succ);
                }
            }
        }
        in_states
    }

    /// Applies one instruction's effect to `state`.
    fn transfer(&self, pc: u32, instr: Instruction, state: &mut State) {
        match instr {
            Instruction::Lui { rd, imm } => {
                state.set_reg(rd, clean(AbsVal::Const(imm as u32)));
            }
            Instruction::Auipc { rd, imm } => {
                state.set_reg(rd, clean(AbsVal::Const(pc.wrapping_add(imm as u32))));
            }
            Instruction::Jal { rd, .. } | Instruction::Jalr { rd, .. } => {
                // The link address is public.
                state.set_reg(rd, clean(AbsVal::Const(pc.wrapping_add(4))));
            }
            Instruction::Branch { .. } | Instruction::Ecall | Instruction::Ebreak => {}
            Instruction::Load {
                rd, rs1, offset, ..
            } => {
                let base = state.reg(rs1);
                let taint = if self.secret_loads.contains_key(&pc) {
                    Taint::source(pc)
                } else {
                    state.load_taint(base.val.region(offset)).join(base.taint)
                };
                state.set_reg(
                    rd,
                    RegVal {
                        val: AbsVal::Unknown,
                        taint,
                    },
                );
            }
            Instruction::Store {
                rs1, rs2, offset, ..
            } => {
                let base = state.reg(rs1);
                let data = state.reg(rs2);
                state.store(base.val.region(offset), data.taint.join(base.taint));
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let a = state.reg(rs1);
                let val = eval_alu_imm(op, a.val, imm);
                state.set_reg(
                    rd,
                    RegVal {
                        val,
                        taint: a.taint,
                    },
                );
            }
            Instruction::AluReg { op, rd, rs1, rs2 } => {
                let a = state.reg(rs1);
                let b = state.reg(rs2);
                let val = eval_alu_reg(op, a.val, b.val);
                state.set_reg(
                    rd,
                    RegVal {
                        val,
                        taint: a.taint.join(b.taint),
                    },
                );
            }
            Instruction::MulDiv { op, rd, rs1, rs2 } => {
                let a = state.reg(rs1);
                let b = state.reg(rs2);
                let val = eval_muldiv(op, a.val, b.val);
                state.set_reg(
                    rd,
                    RegVal {
                        val,
                        taint: a.taint.join(b.taint),
                    },
                );
            }
        }
    }

    /// Emits findings for `instr` given the state entering it.
    fn check_rules(&self, pc: u32, instr: Instruction, state: &State, out: &mut Vec<Finding>) {
        let tainted = |r: Reg| state.reg(r).taint.is_tainted();
        let origin = |regs: &[Reg]| {
            regs.iter()
                .fold(Taint::CLEAN, |acc, &r| acc.join(state.reg(r).taint))
                .origin()
                .unwrap_or(pc)
        };
        let names = |regs: &[Reg]| {
            regs.iter()
                .filter(|&&r| tainted(r))
                .map(|r| r.abi_name())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut push = |rule: Rule, origin: u32, message: String| {
            out.push(Finding {
                rule,
                pc,
                instruction: format_instruction(&instr),
                anchor: anchor_for(self.program, self.base, pc),
                origin,
                message,
            });
        };
        match instr {
            Instruction::Branch { rs1, rs2, .. } if tainted(rs1) || tainted(rs2) => {
                push(
                    Rule::L1SecretBranch,
                    origin(&[rs1, rs2]),
                    format!(
                        "branch condition depends on secret register {}",
                        names(&[rs1, rs2])
                    ),
                );
            }
            Instruction::Jalr { rs1, .. } if tainted(rs1) => {
                push(
                    Rule::L1SecretBranch,
                    origin(&[rs1]),
                    format!(
                        "indirect jump target depends on secret register {}",
                        names(&[rs1])
                    ),
                );
            }
            Instruction::Load { rs1, .. } if tainted(rs1) => {
                push(
                    Rule::L2SecretAddress,
                    origin(&[rs1]),
                    format!("load address depends on secret register {}", names(&[rs1])),
                );
            }
            Instruction::Store { rs1, rs2, .. } => {
                if tainted(rs1) {
                    push(
                        Rule::L2SecretAddress,
                        origin(&[rs1]),
                        format!("store address depends on secret register {}", names(&[rs1])),
                    );
                }
                if tainted(rs2) {
                    push(
                        Rule::L4SecretStore,
                        origin(&[rs2]),
                        format!(
                            "stored value derives from secret register {}",
                            names(&[rs2])
                        ),
                    );
                }
            }
            Instruction::MulDiv { op, rs1, rs2, .. } if tainted(rs1) || tainted(rs2) => {
                push(
                    Rule::L3VariableLatency,
                    origin(&[rs1, rs2]),
                    format!(
                        "{:?} operand depends on secret register {} (variable-latency unit)",
                        op,
                        names(&[rs1, rs2])
                    ),
                );
            }
            _ => {}
        }
    }
}

fn clean(val: AbsVal) -> RegVal {
    RegVal {
        val,
        taint: Taint::CLEAN,
    }
}

fn eval_alu_const(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
    }
}

fn eval_alu_imm(op: AluOp, a: AbsVal, imm: i32) -> AbsVal {
    match (op, a) {
        (op, AbsVal::Const(c)) => AbsVal::Const(eval_alu_const(op, c, imm as u32)),
        // Offsetting a pointer by an immediate stays inside its buffer for
        // the stride-sized offsets these kernels use.
        (AluOp::Add, AbsVal::Addr(b)) => AbsVal::Addr(b),
        _ => AbsVal::Unknown,
    }
}

fn eval_alu_reg(op: AluOp, a: AbsVal, b: AbsVal) -> AbsVal {
    use AbsVal::{Addr, Const, Unknown};
    match (op, a, b) {
        (op, Const(x), Const(y)) => Const(eval_alu_const(op, x, y)),
        // base + computed index: the defining pattern of an array access.
        (AluOp::Add, Const(c), Unknown) | (AluOp::Add, Unknown, Const(c)) => Addr(c),
        (AluOp::Add, Addr(b), Const(c)) | (AluOp::Add, Const(c), Addr(b)) => {
            Addr(b.wrapping_add(c))
        }
        (AluOp::Add, Addr(b), Unknown) | (AluOp::Add, Unknown, Addr(b)) => Addr(b),
        (AluOp::Sub, Addr(b), Const(c)) => Addr(b.wrapping_sub(c)),
        _ => Unknown,
    }
}

fn eval_muldiv(op: MulOp, a: AbsVal, b: AbsVal) -> AbsVal {
    let (AbsVal::Const(x), AbsVal::Const(y)) = (a, b) else {
        return AbsVal::Unknown;
    };
    let val = match op {
        MulOp::Mul => x.wrapping_mul(y),
        MulOp::Mulh => (((x as i32 as i64) * (y as i32 as i64)) >> 32) as u32,
        MulOp::Mulhsu => (((x as i32 as i64) * (y as i64)) >> 32) as u32,
        MulOp::Mulhu => (((x as u64) * (y as u64)) >> 32) as u32,
        MulOp::Div if y != 0 => ((x as i32).wrapping_div(y as i32)) as u32,
        MulOp::Divu if y != 0 => x / y,
        MulOp::Rem if y != 0 => ((x as i32).wrapping_rem(y as i32)) as u32,
        MulOp::Remu if y != 0 => x % y,
        // RISC-V defines division by zero, but the kernels never rely on it;
        // losing precision here is harmless.
        _ => return AbsVal::Unknown,
    };
    AbsVal::Const(val)
}

/// Analyzes a [`SamplerKernel`] with its declared secret sources.
pub fn analyze_kernel(kernel: &SamplerKernel) -> Report {
    let program = kernel.program();
    let mut analyzer = Analyzer::new(program, 0).expect("kernel programs always have a valid CFG");
    for source in kernel.secret_sources() {
        analyzer.mark_secret_load(source.pc, source.description);
    }
    analyzer.analyze(format!(
        "kernel[{:?}] n={} moduli={}",
        kernel.variant(),
        kernel.degree(),
        kernel.moduli().len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;
    use reveal_rv32::assemble;

    /// Analyzes `src` with every load labeled `secret*` marked as a secret
    /// source (labels survive `li` expansion, PCs don't).
    fn analyze_src(src: &str) -> (Report, reveal_rv32::Program) {
        let program = assemble(src, 0).unwrap();
        let mut analyzer = Analyzer::new(&program, 0).unwrap();
        for (name, &off) in &program.symbols {
            if name.starts_with("secret") {
                analyzer.mark_secret_load(off, "test secret");
            }
        }
        let report = analyzer.analyze("unit");
        (report, program)
    }

    #[test]
    fn clean_program_has_no_findings() {
        let (report, _) = analyze_src(
            "
            li t0, 5
            loop:
            addi t0, t0, -1
            bnez t0, loop
            ebreak
            ",
        );
        assert!(report.findings.is_empty());
        assert!(report.is_constant_time());
    }

    #[test]
    fn secret_branch_fires_l1() {
        let (report, program) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            leak:
            beqz t0, out
            addi t1, t1, 1
            out:
            ebreak
            ",
        );
        let l1: Vec<_> = report.findings_for(Rule::L1SecretBranch).collect();
        assert_eq!(l1.len(), 1);
        assert_eq!(l1[0].pc, program.symbol("leak").unwrap());
        assert_eq!(l1[0].origin, program.symbol("secret").unwrap());
    }

    #[test]
    fn secret_index_fires_l2() {
        let (report, program) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            slli t0, t0, 2
            li t1, 0x1000
            add t0, t0, t1
            leak:
            lw t2, 0(t0)
            ebreak
            ",
        );
        let l2: Vec<_> = report.findings_for(Rule::L2SecretAddress).collect();
        assert_eq!(l2.len(), 1);
        assert_eq!(l2[0].pc, program.symbol("leak").unwrap());
        assert!(!report.is_constant_time());
    }

    #[test]
    fn secret_mul_fires_l3_and_store_fires_l4() {
        let (report, _) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            mul t1, t0, t0
            li t2, 0x2000
            sw t1, 0(t2)
            ebreak
            ",
        );
        assert_eq!(report.findings_for(Rule::L3VariableLatency).count(), 1);
        assert_eq!(report.findings_for(Rule::L4SecretStore).count(), 1);
        assert_eq!(report.findings_for(Rule::L1SecretBranch).count(), 0);
        // L3 is a warning, L4 info: no error-severity findings.
        assert!(!report.has_findings_at_least(Severity::Error));
        assert!(report.has_findings_at_least(Severity::Warning));
    }

    #[test]
    fn taint_flows_through_memory() {
        // Secret is spilled to RAM and reloaded into a branch.
        let (report, _) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            li t1, 0x3000
            sw t0, 0(t1)
            lw t2, 0(t1)
            beqz t2, out
            nop
            out:
            ebreak
            ",
        );
        assert_eq!(report.findings_for(Rule::L1SecretBranch).count(), 1);
    }

    #[test]
    fn distinct_regions_do_not_alias() {
        // Secret stored to 0x3000 must not taint a load from 0x4000.
        let (report, _) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            li t1, 0x3000
            sw t0, 0(t1)
            li t3, 0x4000
            lw t2, 0(t3)
            beqz t2, out
            nop
            out:
            ebreak
            ",
        );
        assert_eq!(report.findings_for(Rule::L1SecretBranch).count(), 0);
    }

    #[test]
    fn sanitizing_overwrite_clears_taint() {
        // The tainted register is redefined from a constant before the
        // branch: no finding.
        let (report, _) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            li t0, 7
            beqz t0, out
            nop
            out:
            ebreak
            ",
        );
        assert!(report.findings.is_empty());
    }

    #[test]
    fn unresolved_indirect_becomes_caveat() {
        let (report, _) = analyze_src("jr t0\nebreak");
        assert_eq!(report.caveats.len(), 1);
        assert!(!report.is_constant_time());
    }

    #[test]
    fn loop_fixpoint_terminates_and_propagates() {
        // The taint enters on iteration-carried state: t2 accumulates the
        // secret, then gates a branch after the loop.
        let (report, program) = analyze_src(
            "
            li s0, 0xF0000000
            li t1, 4
            li t2, 0
            loop:
            secret:
            lw t0, 0(s0)
            add t2, t2, t0
            addi t1, t1, -1
            bnez t1, loop
            leak:
            beqz t2, out
            nop
            out:
            ebreak
            ",
        );
        let l1: Vec<_> = report.findings_for(Rule::L1SecretBranch).collect();
        assert_eq!(l1.len(), 1, "only the post-loop branch leaks");
        assert_eq!(l1[0].pc, program.symbol("leak").unwrap());
    }
}
