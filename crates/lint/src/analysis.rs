//! The VSA + taint fixpoint over the CFG, indirect-target resolution, and
//! the L1–L4 rule checks.
//!
//! The analysis runs in rounds. Each round solves a forward fixpoint with
//! delayed widening (joins stay exact for [`WIDEN_DELAY`] visits per PC,
//! then [`crate::taint::State::widen_from`] accelerates loop-carried growth
//! to the type extremes; branch-edge refinement narrows values back inside
//! loop bodies). After a round, every still-unresolved `jalr` is evaluated
//! against the solved states: when its target register's value-set is a
//! small concrete set, the targets are fed back into
//! [`Cfg::from_program_with_targets`] and the next round re-solves the
//! richer graph. The loop is monotone in the number of resolved sites, so
//! it runs at most once per indirect jump.

use std::collections::{BTreeMap, VecDeque};

use reveal_rv32::cfg::{Cfg, CfgError};
use reveal_rv32::{
    format_instruction, AluOp, BranchCond, Instruction, LoadBound, MemWidth, MulOp, Program, Reg,
    SamplerKernel,
};

use crate::report::{anchor_for, Finding, Report, Rule};
use crate::taint::{RegVal, State, Taint};
use crate::vsa::{eval_binop, eval_muldiv, Value};

/// Joins a PC's in-state may absorb exactly before widening kicks in.
/// Large enough to let [`crate::vsa::MAX_SET`]-sized sets fully enumerate,
/// small enough that deep counters converge in a handful of sweeps.
const WIDEN_DELAY: u32 = 12;

/// Most concrete targets an indirect jump may resolve to; larger sets stay
/// unresolved (and become caveats) rather than exploding the CFG.
const MAX_INDIRECT_TARGETS: usize = 16;

/// Rounds of solve → resolve → rebuild. Monotone, so this only bounds
/// pathological inputs; real kernels settle in two or three.
const MAX_RESOLVE_ROUNDS: usize = 8;

/// Bounded descending-iteration count after the ascending fixpoint.
/// Narrowing needs no widening to terminate, but transfer functions are
/// only monotone up to edge refinement, so we cap the passes.
const NARROW_PASSES: usize = 8;

const I32_LO: i64 = i32::MIN as i64;
const I32_HI: i64 = i32::MAX as i64;

/// The analyzer: a program, its (progressively refined) CFG, the declared
/// secret sources, and the public-input preconditions.
#[derive(Debug)]
pub struct Analyzer<'p> {
    program: &'p Program,
    base: u32,
    cfg: Cfg,
    secret_loads: BTreeMap<u32, String>,
    load_bounds: Vec<LoadBound>,
    resolved: BTreeMap<u32, Vec<u32>>,
    in_states: BTreeMap<u32, State>,
    solved: bool,
}

impl<'p> Analyzer<'p> {
    /// Prepares `program` (loaded at `base`) for analysis.
    ///
    /// # Errors
    ///
    /// Fails when the program's control flow cannot be reconstructed
    /// ([`CfgError`]).
    pub fn new(program: &'p Program, base: u32) -> Result<Self, CfgError> {
        let cfg = Cfg::from_program(program, base)?;
        Ok(Analyzer {
            program,
            base,
            cfg,
            secret_loads: BTreeMap::new(),
            load_bounds: Vec::new(),
            resolved: BTreeMap::new(),
            in_states: BTreeMap::new(),
            solved: false,
        })
    }

    /// Declares the load at `pc` a secret source: the register it defines
    /// becomes the taint root `description` names.
    pub fn mark_secret_load(&mut self, pc: u32, description: impl Into<String>) -> &mut Self {
        self.secret_loads.insert(pc, description.into());
        self.solved = false;
        self
    }

    /// Declares a public-input precondition: loads falling inside the
    /// bound's byte range observe values in `[bound.lo, bound.hi]`. This is
    /// how harness-written inputs (MMIO ports, permutation tables, the `q`
    /// table) get bounds the program text alone cannot supply.
    pub fn assume_load_bound(&mut self, bound: LoadBound) -> &mut Self {
        self.load_bounds.push(bound);
        self.solved = false;
        self
    }

    /// The reconstructed CFG — after [`Analyzer::solve`], with resolved
    /// indirect edges spliced in.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Resolved indirect-jump targets, keyed by the `jalr` PC.
    pub fn resolved_targets(&self) -> &BTreeMap<u32, Vec<u32>> {
        &self.resolved
    }

    /// The abstract state *entering* `pc`, once solved.
    pub fn state_at(&self, pc: u32) -> Option<&State> {
        self.in_states.get(&pc)
    }

    /// The abstract state *after* `pc`'s instruction, once solved — what
    /// the defined register holds when the write-back happens. This is the
    /// state the leakage scorer reads def masks from.
    pub fn out_state(&self, pc: u32) -> Option<State> {
        let instr = self.cfg.instruction_at(pc)?;
        let mut out = self.in_states.get(&pc)?.clone();
        self.transfer(pc, instr, &mut out);
        Some(out)
    }

    /// The program under analysis.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The load address of the program under analysis.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Runs the solve/resolve rounds to a simultaneous fixpoint of states
    /// and CFG. Idempotent.
    pub fn solve(&mut self) {
        if self.solved {
            return;
        }
        for _ in 0..MAX_RESOLVE_ROUNDS {
            self.in_states = self.fixpoint();
            let mut progressed = false;
            for pc in self.cfg.unresolved_indirect.clone() {
                if self.resolved.contains_key(&pc) {
                    continue;
                }
                if let Some(targets) = self.resolve_indirect(pc) {
                    self.resolved.insert(pc, targets);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
            // A resolution that produces an invalid graph (target outside
            // the program) falls back to the previous CFG and the site
            // stays a caveat.
            match Cfg::from_program_with_targets(self.program, self.base, &self.resolved) {
                Ok(cfg) => self.cfg = cfg,
                Err(_) => break,
            }
        }
        self.solved = true;
    }

    /// Concrete targets of the unresolved `jalr` at `pc`, when its solved
    /// value-set is small, in-program, and word-aligned.
    fn resolve_indirect(&self, pc: u32) -> Option<Vec<u32>> {
        let Some(Instruction::Jalr { rs1, offset, .. }) = self.cfg.instruction_at(pc) else {
            return None;
        };
        let state = self.in_states.get(&pc)?;
        let target_val = eval_binop(
            AluOp::Add,
            &state.reg(rs1).val,
            &Value::constant(offset as u32),
        );
        let raw = target_val.concrete(MAX_INDIRECT_TARGETS)?;
        let end = self.base + 4 * u32::try_from(self.cfg.len()).unwrap_or(u32::MAX);
        let mut targets: Vec<u32> = raw
            .into_iter()
            .map(|t| t & !1) // JALR clears bit 0 in hardware.
            .collect();
        targets.sort_unstable();
        targets.dedup();
        if targets.is_empty()
            || targets
                .iter()
                .any(|&t| t < self.base || t >= end || t % 4 != 0)
        {
            return None;
        }
        Some(targets)
    }

    /// Runs the solve rounds and the rule checks.
    pub fn analyze(&mut self, target: impl Into<String>) -> Report {
        self.solve();
        let mut findings = Vec::new();
        for (pc, instr) in self.cfg.reachable_instructions() {
            let Some(state) = self.in_states.get(&pc) else {
                continue;
            };
            self.check_rules(pc, instr, state, &mut findings);
        }

        let mut caveats = Vec::new();
        let mut unresolved: Vec<u32> = self
            .cfg
            .unresolved_indirect
            .iter()
            .copied()
            .filter(|pc| !self.resolved.contains_key(pc))
            .collect();
        unresolved.sort_unstable();
        for pc in unresolved {
            caveats.push(format!(
                "indirect jump at {pc:#06x} has unknown targets; paths through it are not analyzed"
            ));
        }

        let mut report = Report {
            target: target.into(),
            findings,
            caveats,
            analyzed_instructions: self.cfg.reachable_instructions().count(),
        };
        report.normalize();
        report
    }

    /// Worklist fixpoint with delayed widening: the abstract state
    /// *entering* each reachable pc.
    fn fixpoint(&self) -> BTreeMap<u32, State> {
        let thresholds = self.widening_thresholds();
        let mut in_states: BTreeMap<u32, State> = BTreeMap::new();
        in_states.insert(self.base, State::entry());
        let mut join_counts: BTreeMap<u32, u32> = BTreeMap::new();
        let mut worklist = VecDeque::from([self.base]);
        while let Some(pc) = worklist.pop_front() {
            let Some(instr) = self.cfg.instruction_at(pc) else {
                continue;
            };
            let mut out = in_states[&pc].clone();
            self.transfer(pc, instr, &mut out);
            for &succ in self.cfg.successors_of(pc) {
                let Some(edge_state) = refine_edge(pc, instr, &out, succ) else {
                    continue; // infeasible edge
                };
                let changed = if let Some(existing) = in_states.get_mut(&succ) {
                    let count = join_counts.entry(succ).or_insert(0);
                    *count += 1;
                    if *count > WIDEN_DELAY {
                        existing.widen_from(&edge_state, &thresholds)
                    } else {
                        existing.join_from(&edge_state)
                    }
                } else {
                    in_states.insert(succ, edge_state);
                    true
                };
                if changed && !worklist.contains(&succ) {
                    worklist.push_back(succ);
                }
            }
        }

        // Descending (narrowing) phase. The widened solution is a
        // post-fixpoint, so every fresh re-application of the transfer
        // system from the entry stays sound while shedding transient
        // garbage the ascending phase accumulated monotonically — e.g. a
        // loop counter that briefly widened to `[0, i32::MAX]` before a
        // guard refinement caught up made one store address unresolvable,
        // permanently poisoning `unknown_store`. Recomputing in-states
        // from the converged (narrower) predecessor outs drops those
        // artifacts.
        for _ in 0..NARROW_PASSES {
            let next = self.reapply(&in_states);
            if next == in_states {
                break;
            }
            in_states = next;
        }
        in_states
    }

    /// Landmarks for widening-with-thresholds: every constant the program
    /// text or the declared input bounds mention (±1 for strict/non-strict
    /// guard off-by-ones), sorted. Loop bounds are always program constants,
    /// so a widening counter lands on `[0, n]`-shaped intervals instead of
    /// overshooting to `[0, i32::MAX]` — where the next increment would wrap
    /// to `Top` and poison every address computed from it.
    fn widening_thresholds(&self) -> Vec<i64> {
        let mut t: Vec<i64> = vec![0];
        let mut push = |c: i64| {
            t.push(c - 1);
            t.push(c);
            t.push(c + 1);
        };
        for (_, instr) in self.cfg.reachable_instructions() {
            match instr {
                Instruction::Lui { imm, .. } | Instruction::Auipc { imm, .. } => {
                    push(i64::from(imm));
                }
                Instruction::AluImm { imm, .. } => push(i64::from(imm)),
                Instruction::Load { offset, .. } | Instruction::Store { offset, .. } => {
                    push(i64::from(offset));
                }
                _ => {}
            }
        }
        for bound in &self.load_bounds {
            push(bound.lo);
            push(bound.hi);
            push(i64::from(bound.base));
            push(i64::from(bound.base) + i64::from(bound.len));
        }
        t.retain(|&c| (I32_LO..=I32_HI).contains(&c));
        t.sort_unstable();
        t.dedup();
        t
    }

    /// One application of the full transfer system to `in_states`:
    /// recomputes every in-state as the join of its refined predecessor
    /// edges (entry keeps [`State::entry`]). Used by the narrowing phase.
    fn reapply(&self, in_states: &BTreeMap<u32, State>) -> BTreeMap<u32, State> {
        let mut next: BTreeMap<u32, State> = BTreeMap::new();
        next.insert(self.base, State::entry());
        for (&pc, state) in in_states {
            let Some(instr) = self.cfg.instruction_at(pc) else {
                continue;
            };
            let mut out = state.clone();
            self.transfer(pc, instr, &mut out);
            for &succ in self.cfg.successors_of(pc) {
                let Some(edge_state) = refine_edge(pc, instr, &out, succ) else {
                    continue; // infeasible edge
                };
                match next.get_mut(&succ) {
                    Some(existing) => {
                        existing.join_from(&edge_state);
                    }
                    None => {
                        next.insert(succ, edge_state);
                    }
                }
            }
        }
        next
    }

    /// The value a load in `range` observes under the declared
    /// preconditions, when the whole range sits inside one bound.
    fn bound_for(&self, range: Option<(u32, u32)>) -> Option<Value> {
        let (lo, hi) = range?;
        self.load_bounds
            .iter()
            .filter(|b| b.len > 0 && b.base <= lo && hi <= b.base + (b.len - 1))
            .map(|b| Value::interval(b.lo, b.hi, 1))
            .reduce(|a, b| a.join(&b))
    }

    /// Applies one instruction's effect to `state`.
    fn transfer(&self, pc: u32, instr: Instruction, state: &mut State) {
        match instr {
            Instruction::Lui { rd, imm } => {
                state.set_reg(rd, RegVal::constant(imm as u32));
            }
            Instruction::Auipc { rd, imm } => {
                state.set_reg(rd, RegVal::constant(pc.wrapping_add(imm as u32)));
            }
            Instruction::Jal { rd, .. } | Instruction::Jalr { rd, .. } => {
                // The link address is public.
                state.set_reg(rd, RegVal::constant(pc.wrapping_add(4)));
            }
            Instruction::Branch { .. } | Instruction::Ecall | Instruction::Ebreak => {}
            Instruction::Load {
                rd,
                rs1,
                offset,
                width,
                signed: sign_extend,
            } => {
                let base = state.reg(rs1).clone();
                let range = State::addr_interval(&base.val, offset, width_bytes(width));
                let (val, taint) = if self.secret_loads.contains_key(&pc) {
                    let val = self
                        .bound_for(range)
                        .unwrap_or_else(|| width_default(width, sign_extend));
                    (val, Taint::source(pc))
                } else {
                    let (mem_val, mem_taint) = state.load(range);
                    let val = match self.bound_for(range) {
                        Some(bound) => bound,
                        None => clip_width(&mem_val, width, sign_extend),
                    };
                    // Data read through a secret-derived pointer is itself
                    // secret-shaped: every bit suspect.
                    let addr_taint = if base.effective_taint().is_tainted() {
                        base.taint.with_mask(u32::MAX)
                    } else {
                        Taint::CLEAN
                    };
                    (
                        val,
                        clip_taint(mem_taint, width, sign_extend).join(addr_taint),
                    )
                };
                define(state, rd, val, taint);
            }
            Instruction::Store {
                rs1,
                rs2,
                offset,
                width,
            } => {
                let base = state.reg(rs1).clone();
                let data = state.reg(rs2).clone();
                let range = State::addr_interval(&base.val, offset, width_bytes(width));
                let stored_val = match width {
                    MemWidth::Word => data.val,
                    // Sub-word stores merge with prior bytes we don't track.
                    _ => Value::Top,
                };
                let addr_taint = if base.effective_taint().is_tainted() {
                    base.taint.with_mask(u32::MAX)
                } else {
                    Taint::CLEAN
                };
                state.store(range, &stored_val, data.taint.join(addr_taint));
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let a = state.reg(rs1).clone();
                let b = RegVal::constant(imm as u32);
                let val = eval_binop(op, &a.val, &b.val);
                let taint = taint_binop(op, &a, &b);
                define(state, rd, val, taint);
            }
            Instruction::AluReg { op, rd, rs1, rs2 } => {
                let a = state.reg(rs1).clone();
                let b = state.reg(rs2).clone();
                let val = eval_binop(op, &a.val, &b.val);
                let taint = taint_binop(op, &a, &b);
                define(state, rd, val, taint);
            }
            Instruction::MulDiv { op, rd, rs1, rs2 } => {
                let a = state.reg(rs1).clone();
                let b = state.reg(rs2).clone();
                let val = eval_muldiv(op, &a.val, &b.val);
                let joined = a.taint.join(b.taint);
                let taint = match op {
                    // Low-half multiply: carries spread taint upward only.
                    MulOp::Mul => joined.spread_up(),
                    // High halves, division, remainder mix every bit.
                    _ => joined.with_mask(if joined.is_tainted() { u32::MAX } else { 0 }),
                };
                define(state, rd, val, taint);
            }
        }
    }

    /// Emits findings for `instr` given the state entering it.
    fn check_rules(&self, pc: u32, instr: Instruction, state: &State, out: &mut Vec<Finding>) {
        let eff = |r: Reg| state.reg(r).effective_taint();
        let tainted = |r: Reg| eff(r).is_tainted();
        let origin = |regs: &[Reg]| {
            regs.iter()
                .fold(Taint::CLEAN, |acc, &r| acc.join(eff(r)))
                .origin()
                .unwrap_or(pc)
        };
        let names = |regs: &[Reg]| {
            regs.iter()
                .filter(|&&r| tainted(r))
                .map(|r| r.abi_name())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut push = |rule: Rule, origin: u32, message: String| {
            out.push(Finding {
                rule,
                pc,
                instruction: format_instruction(&instr),
                anchor: anchor_for(self.program, self.base, pc),
                origin,
                message,
            });
        };
        match instr {
            Instruction::Branch { rs1, rs2, .. } if tainted(rs1) || tainted(rs2) => {
                push(
                    Rule::L1SecretBranch,
                    origin(&[rs1, rs2]),
                    format!(
                        "branch condition depends on secret register {}",
                        names(&[rs1, rs2])
                    ),
                );
            }
            Instruction::Jalr { rs1, .. } if tainted(rs1) => {
                push(
                    Rule::L1SecretBranch,
                    origin(&[rs1]),
                    format!(
                        "indirect jump target depends on secret register {}",
                        names(&[rs1])
                    ),
                );
            }
            Instruction::Load { rs1, .. } if tainted(rs1) => {
                push(
                    Rule::L2SecretAddress,
                    origin(&[rs1]),
                    format!("load address depends on secret register {}", names(&[rs1])),
                );
            }
            Instruction::Store { rs1, rs2, .. } => {
                if tainted(rs1) {
                    push(
                        Rule::L2SecretAddress,
                        origin(&[rs1]),
                        format!("store address depends on secret register {}", names(&[rs1])),
                    );
                }
                if tainted(rs2) {
                    push(
                        Rule::L4SecretStore,
                        origin(&[rs2]),
                        format!(
                            "stored value derives from secret register {}",
                            names(&[rs2])
                        ),
                    );
                }
            }
            Instruction::MulDiv { op, rs1, rs2, .. } if tainted(rs1) || tainted(rs2) => {
                push(
                    Rule::L3VariableLatency,
                    origin(&[rs1, rs2]),
                    format!(
                        "{:?} operand depends on secret register {} (variable-latency unit)",
                        op,
                        names(&[rs1, rs2])
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Defines `rd` with the mask cut to the bits the value can actually vary
/// in — a value the VSA proves constant cannot leak.
fn define(state: &mut State, rd: Reg, val: Value, taint: Taint) {
    let cut = taint.with_mask(taint.mask & val.varying_bits());
    state.set_reg(rd, RegVal { val, taint: cut });
}

fn width_bytes(width: MemWidth) -> u32 {
    match width {
        MemWidth::Byte => 1,
        MemWidth::Half => 2,
        MemWidth::Word => 4,
    }
}

/// The widest value a load of this shape can produce.
fn width_default(width: MemWidth, sign_extend: bool) -> Value {
    match (width, sign_extend) {
        (MemWidth::Byte, false) => Value::interval(0, 0xFF, 1),
        (MemWidth::Byte, true) => Value::interval(-128, 127, 1),
        (MemWidth::Half, false) => Value::interval(0, 0xFFFF, 1),
        (MemWidth::Half, true) => Value::interval(-32768, 32767, 1),
        (MemWidth::Word, _) => Value::Top,
    }
}

/// Narrows a stored-word summary to what a (possibly sub-word) load sees.
fn clip_width(val: &Value, width: MemWidth, sign_extend: bool) -> Value {
    match width {
        MemWidth::Word => val.clone(),
        // Sub-word loads slice bytes our summaries don't isolate; fall back
        // to the width's full range.
        _ => width_default(width, sign_extend),
    }
}

/// Narrows a stored taint to the bits a sub-word load can carry out.
fn clip_taint(taint: Taint, width: MemWidth, sign_extend: bool) -> Taint {
    let (low_mask, sign_bit) = match width {
        MemWidth::Byte => (0xFFu32, 0x80u32),
        MemWidth::Half => (0xFFFF, 0x8000),
        MemWidth::Word => return taint,
    };
    let mut mask = taint.mask & low_mask;
    if sign_extend && mask & sign_bit != 0 {
        mask |= !low_mask;
    }
    taint.with_mask(mask)
}

/// The value of `v` when it is a proven singleton.
fn singleton(v: &Value) -> Option<u32> {
    match v.concrete(1) {
        Some(vs) if vs.len() == 1 => Some(vs[0]),
        _ => None,
    }
}

/// Bit-mask taint transfer for ALU operations.
fn taint_binop(op: AluOp, a: &RegVal, b: &RegVal) -> Taint {
    let joined = a.taint.join(b.taint);
    if !joined.is_tainted() {
        return Taint::CLEAN;
    }
    match op {
        // Carries propagate a tainted bit into every bit above it.
        AluOp::Add | AluOp::Sub => joined.spread_up(),
        AluOp::And => match (singleton(&a.val), singleton(&b.val)) {
            // Masking with a clean constant keeps only the surviving bits.
            (Some(c), _) if !a.taint.is_tainted() => joined.with_mask(joined.mask & c),
            (_, Some(c)) if !b.taint.is_tainted() => joined.with_mask(joined.mask & c),
            _ => joined,
        },
        AluOp::Or => match (singleton(&a.val), singleton(&b.val)) {
            // Bits forced to one by a clean constant stop varying.
            (Some(c), _) if !a.taint.is_tainted() => joined.with_mask(joined.mask & !c),
            (_, Some(c)) if !b.taint.is_tainted() => joined.with_mask(joined.mask & !c),
            _ => joined,
        },
        // XOR with anything clean permutes values bitwise: mask unchanged.
        AluOp::Xor => joined,
        AluOp::Sll => match singleton(&b.val) {
            Some(k) if !b.taint.is_tainted() => a.taint.with_mask(a.taint.mask << (k & 31)),
            _ => joined.with_mask(u32::MAX),
        },
        AluOp::Srl => match singleton(&b.val) {
            Some(k) if !b.taint.is_tainted() => a.taint.with_mask(a.taint.mask >> (k & 31)),
            _ => joined.with_mask(u32::MAX),
        },
        AluOp::Sra => match singleton(&b.val) {
            Some(k) if !b.taint.is_tainted() => a
                .taint
                .with_mask(((a.taint.mask as i32) >> (k & 31)) as u32),
            _ => joined.with_mask(u32::MAX),
        },
        // Comparisons compress everything into bit 0.
        AluOp::Slt | AluOp::Sltu => joined.with_mask(1),
    }
}

/// Refines `out` along the edge `pc → succ`; `None` when the VSA proves
/// the edge infeasible.
fn refine_edge(pc: u32, instr: Instruction, out: &State, succ: u32) -> Option<State> {
    let Instruction::Branch {
        cond,
        rs1,
        rs2,
        offset,
    } = instr
    else {
        return Some(out.clone());
    };
    let taken_target = pc.wrapping_add(offset as u32);
    let fallthrough = pc.wrapping_add(4);
    if taken_target == fallthrough {
        return Some(out.clone());
    }
    let taken = succ == taken_target;
    let v1 = out.reg(rs1).val.clone();
    let v2 = out.reg(rs2).val.clone();
    let refined = refine_pair(cond, taken, &v1, &v2)?;
    let mut state = out.clone();
    if let Some(new1) = refined.0 {
        let taint = state.reg(rs1).taint;
        define(&mut state, rs1, new1, taint);
    }
    if let Some(new2) = refined.1 {
        let taint = state.reg(rs2).taint;
        define(&mut state, rs2, new2, taint);
    }
    Some(state)
}

/// New values for (rs1, rs2) under `rs1 ⟨cond⟩ rs2` (or its negation when
/// `!taken`); `None` for the whole pair when the constraint is
/// unsatisfiable, `None` per side when no refinement applies.
#[allow(clippy::type_complexity)]
fn refine_pair(
    cond: BranchCond,
    taken: bool,
    v1: &Value,
    v2: &Value,
) -> Option<(Option<Value>, Option<Value>)> {
    // Normalize to one of: Eq, Ne, Lt (signed), Ge (signed) — the unsigned
    // forms refine only when both hulls are non-negative, where the two
    // orders agree.
    let unsigned_ok =
        matches!((v1.hull(), v2.hull()), (Some((l1, _)), Some((l2, _))) if l1 >= 0 && l2 >= 0);
    let rel = match (cond, taken) {
        (BranchCond::Eq, true) | (BranchCond::Ne, false) => BranchCond::Eq,
        (BranchCond::Eq, false) | (BranchCond::Ne, true) => BranchCond::Ne,
        (BranchCond::Lt, true) | (BranchCond::Ge, false) => BranchCond::Lt,
        (BranchCond::Lt, false) | (BranchCond::Ge, true) => BranchCond::Ge,
        (BranchCond::Ltu, true) | (BranchCond::Geu, false) if unsigned_ok => BranchCond::Lt,
        (BranchCond::Ltu, false) | (BranchCond::Geu, true) if unsigned_ok => BranchCond::Ge,
        _ => return Some((None, None)),
    };
    match rel {
        BranchCond::Eq => {
            let new1 = match v2.hull() {
                Some((lo, hi)) => Some(v1.clamp_signed(lo, hi)?),
                None => None,
            };
            let new2 = match v1.hull() {
                Some((lo, hi)) => Some(v2.clamp_signed(lo, hi)?),
                None => None,
            };
            Some((new1, new2))
        }
        BranchCond::Ne => {
            let new1 = match singleton(v2) {
                Some(c) => Some(v1.remove(c)?),
                None => None,
            };
            let new2 = match singleton(v1) {
                Some(c) => Some(v2.remove(c)?),
                None => None,
            };
            Some((new1, new2))
        }
        BranchCond::Lt => {
            let new1 = match v2.hull() {
                Some((_, hi)) => Some(v1.clamp_signed(I32_LO, hi - 1)?),
                None => None,
            };
            let new2 = match v1.hull() {
                Some((lo, _)) => Some(v2.clamp_signed(lo + 1, I32_HI)?),
                None => None,
            };
            Some((new1, new2))
        }
        BranchCond::Ge => {
            let new1 = match v2.hull() {
                Some((lo, _)) => Some(v1.clamp_signed(lo, I32_HI)?),
                None => None,
            };
            let new2 = match v1.hull() {
                Some((_, hi)) => Some(v2.clamp_signed(I32_LO, hi)?),
                None => None,
            };
            Some((new1, new2))
        }
        _ => unreachable!("normalized above"),
    }
}

/// Analyzes a [`SamplerKernel`] with its declared secret sources and
/// public-input bounds.
pub fn analyze_kernel(kernel: &SamplerKernel) -> Report {
    analyzer_for_kernel(kernel).analyze(format!(
        "kernel[{:?}] n={} moduli={}",
        kernel.variant(),
        kernel.degree(),
        kernel.moduli().len()
    ))
}

/// Builds (but does not solve) the analyzer for a kernel, with its secret
/// sources and load bounds declared. Exposed for the leakage-map layer.
pub fn analyzer_for_kernel(kernel: &SamplerKernel) -> Analyzer<'_> {
    let program = kernel.program();
    let mut analyzer = Analyzer::new(program, 0).expect("kernel programs always have a valid CFG");
    for source in kernel.secret_sources() {
        analyzer.mark_secret_load(source.pc, source.description);
    }
    for bound in kernel.load_bounds() {
        analyzer.assume_load_bound(bound);
    }
    analyzer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;
    use reveal_rv32::assemble;

    /// Analyzes `src` with every load labeled `secret*` marked as a secret
    /// source (labels survive `li` expansion, PCs don't).
    fn analyze_src(src: &str) -> (Report, reveal_rv32::Program) {
        let program = assemble(src, 0).unwrap();
        let mut analyzer = Analyzer::new(&program, 0).unwrap();
        for (name, &off) in &program.symbols {
            if name.starts_with("secret") {
                analyzer.mark_secret_load(off, "test secret");
            }
        }
        let report = analyzer.analyze("unit");
        (report, program)
    }

    #[test]
    fn clean_program_has_no_findings() {
        let (report, _) = analyze_src(
            "
            li t0, 5
            loop:
            addi t0, t0, -1
            bnez t0, loop
            ebreak
            ",
        );
        assert!(report.findings.is_empty());
        assert!(report.is_constant_time());
    }

    #[test]
    fn secret_branch_fires_l1() {
        let (report, program) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            leak:
            beqz t0, out
            addi t1, t1, 1
            out:
            ebreak
            ",
        );
        let l1: Vec<_> = report.findings_for(Rule::L1SecretBranch).collect();
        assert_eq!(l1.len(), 1);
        assert_eq!(l1[0].pc, program.symbol("leak").unwrap());
        assert_eq!(l1[0].origin, program.symbol("secret").unwrap());
    }

    #[test]
    fn secret_index_fires_l2() {
        let (report, program) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            slli t0, t0, 2
            li t1, 0x1000
            add t0, t0, t1
            leak:
            lw t2, 0(t0)
            ebreak
            ",
        );
        let l2: Vec<_> = report.findings_for(Rule::L2SecretAddress).collect();
        assert_eq!(l2.len(), 1);
        assert_eq!(l2[0].pc, program.symbol("leak").unwrap());
        assert!(!report.is_constant_time());
    }

    #[test]
    fn secret_mul_fires_l3_and_store_fires_l4() {
        let (report, _) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            mul t1, t0, t0
            li t2, 0x2000
            sw t1, 0(t2)
            ebreak
            ",
        );
        assert_eq!(report.findings_for(Rule::L3VariableLatency).count(), 1);
        assert_eq!(report.findings_for(Rule::L4SecretStore).count(), 1);
        assert_eq!(report.findings_for(Rule::L1SecretBranch).count(), 0);
        // L3 is a warning, L4 info: no error-severity findings.
        assert!(!report.has_findings_at_least(Severity::Error));
        assert!(report.has_findings_at_least(Severity::Warning));
    }

    #[test]
    fn taint_flows_through_memory() {
        // Secret is spilled to RAM and reloaded into a branch.
        let (report, _) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            li t1, 0x3000
            sw t0, 0(t1)
            lw t2, 0(t1)
            beqz t2, out
            nop
            out:
            ebreak
            ",
        );
        assert_eq!(report.findings_for(Rule::L1SecretBranch).count(), 1);
    }

    #[test]
    fn distinct_regions_do_not_alias() {
        // Secret stored to 0x3000 must not taint a load from 0x4000.
        let (report, _) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            li t1, 0x3000
            sw t0, 0(t1)
            li t3, 0x4000
            lw t2, 0(t3)
            beqz t2, out
            nop
            out:
            ebreak
            ",
        );
        assert_eq!(report.findings_for(Rule::L1SecretBranch).count(), 0);
    }

    #[test]
    fn sanitizing_overwrite_clears_taint() {
        // The tainted register is redefined from a constant before the
        // branch: no finding.
        let (report, _) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            li t0, 7
            beqz t0, out
            nop
            out:
            ebreak
            ",
        );
        assert!(report.findings.is_empty());
    }

    #[test]
    fn masking_to_zero_launders_the_secret() {
        // `andi t0, t0, 0` zeroes every bit: the VSA proves the branch
        // condition constant, so the old mask no longer matters.
        let (report, _) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            andi t0, t0, 0
            beqz t0, out
            nop
            out:
            ebreak
            ",
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn partial_mask_keeps_only_surviving_bits_tainted() {
        // Only bit 0 of the secret survives the mask; the branch still
        // leaks (that one bit), the upper bits do not.
        let (report, _) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t0, 0(s0)
            andi t0, t0, 1
            beqz t0, out
            nop
            out:
            ebreak
            ",
        );
        assert_eq!(report.findings_for(Rule::L1SecretBranch).count(), 1);
    }

    #[test]
    fn unresolved_indirect_becomes_caveat() {
        let (report, _) = analyze_src("jr t0\nebreak");
        assert_eq!(report.caveats.len(), 1);
        assert!(!report.is_constant_time());
    }

    #[test]
    fn la_plus_jalr_resolves_and_clears_the_caveat() {
        // The classic dispatch idiom: a label address materialized with
        // `la`, then an indirect call. The VSA resolves the target set, so
        // the CFG covers the callee and no caveat survives.
        let (report, program) = analyze_src(
            "
            li s0, 0xF0000000
            la t6, helper
            jalr ra, t6, 0
            secret:
            lw t0, 0(s0)
            leak:
            beqz t0, out
            nop
            out:
            ebreak
            helper:
            addi a0, a0, 1
            ret
            ",
        );
        assert!(report.caveats.is_empty(), "caveats: {:?}", report.caveats);
        let l1: Vec<_> = report.findings_for(Rule::L1SecretBranch).collect();
        assert_eq!(l1.len(), 1);
        assert_eq!(l1[0].pc, program.symbol("leak").unwrap());
    }

    #[test]
    fn loop_fixpoint_terminates_and_propagates() {
        // The taint enters on iteration-carried state: t2 accumulates the
        // secret, then gates a branch after the loop.
        let (report, program) = analyze_src(
            "
            li s0, 0xF0000000
            li t1, 4
            li t2, 0
            loop:
            secret:
            lw t0, 0(s0)
            add t2, t2, t0
            addi t1, t1, -1
            bnez t1, loop
            leak:
            beqz t2, out
            nop
            out:
            ebreak
            ",
        );
        let l1: Vec<_> = report.findings_for(Rule::L1SecretBranch).collect();
        assert_eq!(l1.len(), 1, "only the post-loop branch leaks");
        assert_eq!(l1[0].pc, program.symbol("leak").unwrap());
    }

    #[test]
    fn long_counter_loop_terminates_via_widening() {
        // A 100k-iteration counter would never converge by enumeration;
        // widening must close it in a handful of sweeps.
        let (report, _) = analyze_src(
            "
            li t0, 100000
            loop:
            addi t0, t0, -1
            bnez t0, loop
            ebreak
            ",
        );
        assert!(report.is_constant_time());
    }

    #[test]
    fn branch_refinement_narrows_the_negative_arm() {
        // The ladder shape: t2 in [-21, 21] (declared via load bound),
        // `bgez` splits the sign, the negative arm negates. After
        // refinement the negated magnitude is [1, 21]: only the low 5 bits
        // vary, so a store of it carries a 5-bit effective taint, which
        // still fires L4 but proves the high bits quiet.
        let program = assemble(
            "
            li s0, 0xF0000000
            secret:
            lw t2, 0(s0)
            bgez t2, store
            sub t2, zero, t2
            store:
            li t3, 0x2000
            sw t2, 0(t3)
            ebreak
            ",
            0,
        )
        .unwrap();
        let mut analyzer = Analyzer::new(&program, 0).unwrap();
        analyzer.mark_secret_load(program.symbol("secret").unwrap(), "noise");
        analyzer.assume_load_bound(LoadBound {
            base: 0xF000_0000,
            len: 4,
            lo: -21,
            hi: 21,
            description: "noise port",
        });
        analyzer.solve();
        // At the join point the negative arm contributed [1, 21] and the
        // taken arm [0, 21]: hull [0, 21], varying bits ≤ 0x1F.
        let store_pc = program.symbol("store").unwrap();
        let state = analyzer.state_at(store_pc).unwrap();
        let t2 = state.reg(Reg::parse("t2").unwrap());
        let (lo, hi) = t2.val.hull().unwrap();
        assert!(lo >= 0 && hi <= 21, "refined hull: [{lo}, {hi}]");
        assert_eq!(
            t2.effective_taint().mask & !0x1F,
            0,
            "high bits proven quiet"
        );
        assert!(t2.effective_taint().is_tainted(), "magnitude still leaks");
    }

    #[test]
    fn infeasible_edges_are_pruned() {
        // t0 is provably 3, so `beq t0, t1, out` with t1 = 3 always jumps:
        // the fallthrough (which would branch on the secret) is dead.
        let (report, _) = analyze_src(
            "
            li s0, 0xF0000000
            secret:
            lw t4, 0(s0)
            li t0, 3
            li t1, 3
            beq t0, t1, out
            beqz t4, out
            nop
            out:
            ebreak
            ",
        );
        assert_eq!(
            report.findings_for(Rule::L1SecretBranch).count(),
            0,
            "the secret branch is unreachable"
        );
    }
}
