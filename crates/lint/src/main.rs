#![forbid(unsafe_code)]
#![deny(clippy::pedantic)]

//! `reveal-lint` — command-line front end for the static leakage certifier.
//!
//! ```text
//! reveal-lint [--variant vulnerable|branchless|masked|shuffled|ckks]
//!             [--n N] [--moduli q1,q2,...]
//!             [--format human|json|sarif]
//!             [--fail-on error|warning|info|never]
//!             [--fail-on-caveats]
//!             [--leakage-map FILE]
//!             [--max-control-energy X]
//! ```
//!
//! Exit status: 0 when no gate trips, 1 when one does, 2 on usage errors.
//! Gates:
//!
//! * `--fail-on` — a finding at or above the severity threshold
//!   (default `error`);
//! * `--fail-on-caveats` — any analysis caveat, i.e. an indirect jump the
//!   value-set analysis could not resolve (the certifier refuses to certify
//!   code it has not fully explored);
//! * `--max-control-energy` — the summed flush + control components of the
//!   leakage map exceed the threshold (a branchless kernel must score 0.0).
//!
//! `--leakage-map FILE` writes the ranked per-PC leakage map as JSON
//! regardless of the verdict, so CI can archive it. With `-` the map owns
//! stdout (pipe it straight into a JSON consumer) and the report moves to
//! stderr.

use std::process::ExitCode;

use reveal_lint::{analyze_kernel, leakage_map_for_kernel, Severity};
use reveal_rv32::{KernelVariant, PowerModelConfig, SamplerKernel};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Options {
    variant: KernelVariant,
    n: usize,
    moduli: Vec<u64>,
    format: Format,
    fail_on: Option<Severity>,
    fail_on_caveats: bool,
    leakage_map: Option<String>,
    max_control_energy: Option<f64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            variant: KernelVariant::Vulnerable,
            n: 8,
            // SEAL's 27-bit NTT prime used throughout the workspace.
            moduli: vec![132_120_577],
            format: Format::Human,
            fail_on: Some(Severity::Error),
            fail_on_caveats: false,
            leakage_map: None,
            max_control_energy: None,
        }
    }
}

fn usage() -> &'static str {
    "usage: reveal-lint [--variant vulnerable|branchless|masked|shuffled|ckks]\n\
     \x20                  [--n N] [--moduli q1,q2,...] [--format human|json|sarif]\n\
     \x20                  [--fail-on error|warning|info|never] [--fail-on-caveats]\n\
     \x20                  [--leakage-map FILE] [--max-control-energy X]"
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--variant" => {
                opts.variant = match value("--variant")?.as_str() {
                    "vulnerable" => KernelVariant::Vulnerable,
                    "branchless" => KernelVariant::Branchless,
                    "masked" | "masked-ladder" => KernelVariant::MaskedLadder,
                    "shuffled" => KernelVariant::Shuffled,
                    "ckks" => KernelVariant::Ckks,
                    other => return Err(format!("unknown variant '{other}'")),
                };
            }
            "--n" => {
                opts.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?;
            }
            "--moduli" => {
                opts.moduli = value("--moduli")?
                    .split(',')
                    .map(|q| q.trim().parse().map_err(|e| format!("--moduli: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "json" => Format::Json,
                    "human" => Format::Human,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            "--fail-on" => {
                opts.fail_on = match value("--fail-on")?.as_str() {
                    "error" => Some(Severity::Error),
                    "warning" => Some(Severity::Warning),
                    "info" => Some(Severity::Info),
                    "never" => None,
                    other => return Err(format!("unknown threshold '{other}'")),
                };
            }
            "--fail-on-caveats" => opts.fail_on_caveats = true,
            "--leakage-map" => opts.leakage_map = Some(value("--leakage-map")?),
            "--max-control-energy" => {
                opts.max_control_energy = Some(
                    value("--max-control-energy")?
                        .parse()
                        .map_err(|e| format!("--max-control-energy: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("reveal-lint: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let kernel = match SamplerKernel::with_variant(opts.n, &opts.moduli, opts.variant) {
        Ok(kernel) => kernel,
        Err(e) => {
            eprintln!("reveal-lint: cannot build kernel: {e}");
            return ExitCode::from(2);
        }
    };

    let report = analyze_kernel(&kernel);
    // `--leakage-map -` gives the map sole ownership of stdout (so it can be
    // piped into a JSON consumer); the report moves to stderr.
    let map_owns_stdout = opts.leakage_map.as_deref() == Some("-");
    let rendered = match opts.format {
        Format::Json => format!("{}\n", report.render_json()),
        Format::Sarif => format!("{}\n", report.render_sarif()),
        Format::Human => report.render_human(),
    };
    if map_owns_stdout {
        eprint!("{rendered}");
    } else {
        print!("{rendered}");
    }

    // The leakage map is computed lazily: only when a consumer (file or
    // control-energy gate) asks for it.
    let map = if opts.leakage_map.is_some() || opts.max_control_energy.is_some() {
        Some(leakage_map_for_kernel(
            &kernel,
            &PowerModelConfig::default(),
        ))
    } else {
        None
    };
    if let (Some(path), Some(map)) = (&opts.leakage_map, &map) {
        let json = map.render_json();
        if path == "-" {
            println!("{json}");
        } else if let Err(e) = std::fs::write(path, json) {
            eprintln!("reveal-lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    let mut failures = Vec::new();
    if let Some(threshold) = opts.fail_on {
        if report.has_findings_at_least(threshold) {
            failures.push("findings at or above the --fail-on threshold".to_string());
        }
    }
    if opts.fail_on_caveats && !report.caveats.is_empty() {
        failures.push(format!(
            "{} unresolved-analysis caveat(s)",
            report.caveats.len()
        ));
    }
    if let (Some(limit), Some(map)) = (opts.max_control_energy, &map) {
        let energy = map.control_flow_energy();
        if energy > limit {
            failures.push(format!(
                "control-flow leakage energy {energy:.3} exceeds --max-control-energy {limit}"
            ));
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("reveal-lint: FAIL: {failure}");
        }
        ExitCode::FAILURE
    }
}
