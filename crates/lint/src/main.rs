#![forbid(unsafe_code)]

//! `reveal-lint` — command-line front end for the static constant-time
//! analyzer.
//!
//! ```text
//! reveal-lint [--variant vulnerable|branchless|masked] [--n N]
//!             [--moduli q1,q2,...] [--format human|json]
//!             [--fail-on error|warning|info|never]
//! ```
//!
//! Exit status: 0 when no finding reaches the `--fail-on` threshold
//! (default `error`), 1 when one does, 2 on usage errors. Designed to gate
//! CI: `reveal-lint --variant branchless` passes, `--variant vulnerable`
//! fails.

use std::process::ExitCode;

use reveal_lint::{analyze_kernel, Severity};
use reveal_rv32::{KernelVariant, SamplerKernel};

struct Options {
    variant: KernelVariant,
    n: usize,
    moduli: Vec<u64>,
    json: bool,
    fail_on: Option<Severity>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            variant: KernelVariant::Vulnerable,
            n: 8,
            // SEAL's 27-bit NTT prime used throughout the workspace.
            moduli: vec![132_120_577],
            json: false,
            fail_on: Some(Severity::Error),
        }
    }
}

fn usage() -> &'static str {
    "usage: reveal-lint [--variant vulnerable|branchless|masked] [--n N]\n\
     \x20                  [--moduli q1,q2,...] [--format human|json]\n\
     \x20                  [--fail-on error|warning|info|never]"
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--variant" => {
                opts.variant = match value("--variant")?.as_str() {
                    "vulnerable" => KernelVariant::Vulnerable,
                    "branchless" => KernelVariant::Branchless,
                    "masked" | "masked-ladder" => KernelVariant::MaskedLadder,
                    other => return Err(format!("unknown variant '{other}'")),
                };
            }
            "--n" => {
                opts.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?;
            }
            "--moduli" => {
                opts.moduli = value("--moduli")?
                    .split(',')
                    .map(|q| q.trim().parse().map_err(|e| format!("--moduli: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--format" => {
                opts.json = match value("--format")?.as_str() {
                    "json" => true,
                    "human" => false,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            "--fail-on" => {
                opts.fail_on = match value("--fail-on")?.as_str() {
                    "error" => Some(Severity::Error),
                    "warning" => Some(Severity::Warning),
                    "info" => Some(Severity::Info),
                    "never" => None,
                    other => return Err(format!("unknown threshold '{other}'")),
                };
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("reveal-lint: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let kernel = match SamplerKernel::with_variant(opts.n, &opts.moduli, opts.variant) {
        Ok(kernel) => kernel,
        Err(e) => {
            eprintln!("reveal-lint: cannot build kernel: {e}");
            return ExitCode::from(2);
        }
    };

    let report = analyze_kernel(&kernel);
    if opts.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }

    let fail = match opts.fail_on {
        Some(threshold) => report.has_findings_at_least(threshold),
        None => false,
    };
    if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
