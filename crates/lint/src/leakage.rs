//! Quantitative leakage scoring: per-PC bounds on secret-dependent power
//! variance under the renderer's own model.
//!
//! For every reachable instruction the scorer reads the solved VSA/taint
//! states and asks: *which bits of the operands this instruction puts on a
//! bus can differ across secret values?* Those effective masks are priced
//! with the exact coefficients and per-bit weight table
//! [`reveal_rv32::power::PowerRenderer`] renders with:
//!
//! - `direct`  — `alpha_hw · Σ weights[b]` over the defined register's
//!   effective mask (write-back bus);
//! - `hamming_distance` — `beta_hd · popcount(mask)` (old→new toggles);
//! - `memory`  — `gamma_mem · Σ weights[b]` over load/store data masks;
//! - `address` — `delta_addr · popcount(address mask)`;
//! - `flush`   — `epsilon_flush` when a branch condition is tainted (the
//!   flush happens or not depending on the secret);
//! - `control` — the divergence a tainted branch injects: the summed
//!   `base_level × cycle_cost` of the instructions only one arm executes.
//!   This is what makes the sign branch of the ladder the top-ranked site:
//!   its arms *are* the leak the dynamic templates key on.
//!
//! Each tainted branch also carries a **cover set**: the arm-difference
//! PCs, plus — when the arms provably take different cycle counts — every
//! PC reachable from the rejoin point, because a secret-dependent duration
//! time-shifts all later samples (the paper's segmentation signal). The
//! static-predicts-dynamic contract is [`LeakageMap::covers`]: every PC the
//! dynamic attack exploits must be the site, or in the cover set, of a
//! top-ranked entry.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use reveal_rv32::cpu::cycle_cost;
use reveal_rv32::power::base_level;
use reveal_rv32::{
    format_instruction, Cfg, Instruction, PowerModelConfig, PowerRenderer, SamplerKernel,
};

use crate::analysis::{analyzer_for_kernel, Analyzer};
use crate::report::{anchor_for, json_str};

/// The additive pieces of one site's score, mirroring the renderer's
/// data-term components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LeakageComponents {
    /// `alpha_hw`-weighted write-back leakage.
    pub direct: f64,
    /// `beta_hd`-weighted toggle leakage.
    pub hamming_distance: f64,
    /// `gamma_mem`-weighted data-bus leakage.
    pub memory: f64,
    /// `delta_addr`-weighted address-bus leakage.
    pub address: f64,
    /// `epsilon_flush` when the flush itself is secret-conditioned.
    pub flush: f64,
    /// Control-divergence energy injected by a tainted branch.
    pub control: f64,
}

impl LeakageComponents {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.direct + self.hamming_distance + self.memory + self.address + self.flush + self.control
    }
}

/// One ranked leakage site.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageSite {
    /// PC of the instruction.
    pub pc: u32,
    /// Its disassembly.
    pub instruction: String,
    /// Nearest preceding label, when the program has one.
    pub anchor: Option<(String, u32)>,
    /// Union of the effective secret masks feeding the instruction.
    pub mask: u32,
    /// Score breakdown.
    pub components: LeakageComponents,
    /// PCs whose samples this site's secret dependence modulates or
    /// time-shifts (beyond the site itself).
    pub covered: Vec<u32>,
}

impl LeakageSite {
    /// Total score (the ranking key).
    pub fn score(&self) -> f64 {
        self.components.total()
    }
}

/// The ranked per-PC leakage map of one program.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageMap {
    /// What was analyzed.
    pub target: String,
    /// Sites with nonzero score, best first (ties broken by ascending PC,
    /// so the ranking is deterministic).
    pub sites: Vec<LeakageSite>,
}

impl LeakageMap {
    /// The `k` best sites (fewer when the map is shorter).
    pub fn top(&self, k: usize) -> &[LeakageSite] {
        &self.sites[..k.min(self.sites.len())]
    }

    /// The static-predicts-dynamic contract: whether `pc` is, or is
    /// covered by, one of the `top_k` ranked sites.
    pub fn covers(&self, top_k: usize, pc: u32) -> bool {
        self.top(top_k)
            .iter()
            .any(|s| s.pc == pc || s.covered.contains(&pc))
    }

    /// The site at `pc`, if it scored at all.
    pub fn site_at(&self, pc: u32) -> Option<&LeakageSite> {
        self.sites.iter().find(|s| s.pc == pc)
    }

    /// The best score in the map (0 when empty — a fully quiet program).
    pub fn max_score(&self) -> f64 {
        self.sites.first().map_or(0.0, LeakageSite::score)
    }

    /// Sum of flush + control energy across the map: zero certifies that
    /// no secret-dependent control flow exists anywhere.
    pub fn control_flow_energy(&self) -> f64 {
        self.sites
            .iter()
            .map(|s| s.components.flush + s.components.control)
            .sum()
    }

    /// Renders the map as JSON (schema documented in `docs/lint.md`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"target\":{},", json_str(&self.target)));
        out.push_str(&format!("\"max_score\":{:.6},", self.max_score()));
        out.push_str(&format!(
            "\"control_flow_energy\":{:.6},",
            self.control_flow_energy()
        ));
        out.push_str("\"sites\":[");
        for (rank, s) in self.sites.iter().enumerate() {
            if rank > 0 {
                out.push(',');
            }
            let c = &s.components;
            out.push_str(&format!(
                "{{\"rank\":{},\"pc\":{},\"instruction\":{},\"anchor\":{},\
                 \"mask\":{},\"score\":{:.6},\"components\":{{\
                 \"direct\":{:.6},\"hamming_distance\":{:.6},\"memory\":{:.6},\
                 \"address\":{:.6},\"flush\":{:.6},\"control\":{:.6}}},\
                 \"covered_pcs\":[{}]}}",
                rank + 1,
                s.pc,
                json_str(&s.instruction),
                match &s.anchor {
                    Some((label, delta)) =>
                        format!("{{\"label\":{},\"offset\":{}}}", json_str(label), delta),
                    None => "null".to_string(),
                },
                s.mask,
                s.score(),
                c.direct,
                c.hamming_distance,
                c.memory,
                c.address,
                c.flush,
                c.control,
                s.covered
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Computes the leakage map of a solved analyzer under `config`.
pub fn compute_leakage_map(
    analyzer: &mut Analyzer<'_>,
    config: &PowerModelConfig,
    target: impl Into<String>,
) -> LeakageMap {
    analyzer.solve();
    let renderer = PowerRenderer::new(config);
    let cfg = analyzer.cfg();
    let pd = postdominators(cfg);

    let mut masks: BTreeMap<u32, u32> = BTreeMap::new();
    let mut comps: BTreeMap<u32, LeakageComponents> = BTreeMap::new();
    let mut covers: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();

    let mut bump = |pc: u32, mask: u32, f: &dyn Fn(&mut LeakageComponents)| {
        *masks.entry(pc).or_insert(0) |= mask;
        f(comps.entry(pc).or_default());
    };

    for (pc, instr) in cfg.reachable_instructions() {
        let Some(in_state) = analyzer.state_at(pc) else {
            continue;
        };
        // Write-back bus: the defined register's effective mask.
        if let Some(rd) = instr.def() {
            if let Some(out) = analyzer.out_state(pc) {
                let eff = out.reg(rd).effective_taint();
                if eff.is_tainted() {
                    let direct = config.alpha_hw * renderer.leakage(eff.mask);
                    let hd = config.beta_hd * f64::from(eff.mask.count_ones());
                    bump(pc, eff.mask, &move |c| {
                        c.direct += direct;
                        c.hamming_distance += hd;
                    });
                }
            }
        }
        match instr {
            Instruction::Load { rd, rs1, .. } => {
                let addr = in_state.reg(rs1).effective_taint();
                if addr.is_tainted() {
                    let a = config.delta_addr * f64::from(addr.mask.count_ones());
                    bump(pc, addr.mask, &move |c| c.address += a);
                }
                // The loaded word crosses the memory bus with the same
                // mask it lands in the register with.
                if let Some(out) = analyzer.out_state(pc) {
                    let eff = out.reg(rd).effective_taint();
                    if eff.is_tainted() {
                        let m = config.gamma_mem * renderer.leakage(eff.mask);
                        bump(pc, eff.mask, &move |c| c.memory += m);
                    }
                }
            }
            Instruction::Store { rs1, rs2, .. } => {
                let addr = in_state.reg(rs1).effective_taint();
                if addr.is_tainted() {
                    let a = config.delta_addr * f64::from(addr.mask.count_ones());
                    bump(pc, addr.mask, &move |c| c.address += a);
                }
                let data = in_state.reg(rs2).effective_taint();
                if data.is_tainted() {
                    let m = config.gamma_mem * renderer.leakage(data.mask);
                    bump(pc, data.mask, &move |c| c.memory += m);
                }
            }
            Instruction::Branch { rs1, rs2, .. } => {
                let cond = in_state
                    .reg(rs1)
                    .effective_taint()
                    .join(in_state.reg(rs2).effective_taint());
                if cond.is_tainted() {
                    let (control, covered) = branch_divergence(cfg, pc, &pd);
                    let flush = config.epsilon_flush;
                    bump(pc, cond.mask, &move |c| {
                        c.flush += flush;
                        c.control += control;
                    });
                    covers.entry(pc).or_default().extend(covered);
                }
            }
            Instruction::Jalr { rs1, .. } => {
                let t = in_state.reg(rs1).effective_taint();
                if t.is_tainted() {
                    // A secret-steered dispatch displaces everything it can
                    // reach; score it like a maximal branch.
                    let reach = reachable_from(cfg, pc);
                    let control: f64 = reach
                        .iter()
                        .filter_map(|&d| cfg.instruction_at(d))
                        .map(|i| base_level(&i) * f64::from(cycle_cost(&i, true)))
                        .sum();
                    let flush = config.epsilon_flush;
                    bump(pc, t.mask, &move |c| {
                        c.flush += flush;
                        c.control += control;
                    });
                    covers.entry(pc).or_default().extend(reach);
                }
            }
            _ => {}
        }
    }

    let mut sites: Vec<LeakageSite> = comps
        .into_iter()
        .filter(|(_, c)| c.total() > 0.0)
        .map(|(pc, components)| LeakageSite {
            pc,
            instruction: cfg
                .instruction_at(pc)
                .map(|i| format_instruction(&i))
                .unwrap_or_default(),
            anchor: anchor_for(analyzer.program(), analyzer.base(), pc),
            mask: masks.get(&pc).copied().unwrap_or(0),
            components,
            covered: covers
                .get(&pc)
                .map(|set| set.iter().copied().filter(|&d| d != pc).collect())
                .unwrap_or_default(),
        })
        .collect();
    sites.sort_by(|a, b| {
        b.score()
            .partial_cmp(&a.score())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.pc.cmp(&b.pc))
    });
    LeakageMap {
        target: target.into(),
        sites,
    }
}

/// Computes the leakage map of a [`SamplerKernel`] under `config`, with
/// its secret sources and load bounds declared.
pub fn leakage_map_for_kernel(kernel: &SamplerKernel, config: &PowerModelConfig) -> LeakageMap {
    let mut analyzer = analyzer_for_kernel(kernel);
    compute_leakage_map(
        &mut analyzer,
        config,
        format!(
            "kernel[{:?}] n={} moduli={}",
            kernel.variant(),
            kernel.degree(),
            kernel.moduli().len()
        ),
    )
}

/// Control-divergence energy and cover set of the tainted branch at `pc`.
///
/// Arm sets are BFS from each successor, bounded at the branch's nearest
/// common postdominator (the rejoin point). The energy is the summed
/// `base_level × cycle_cost` of the arm-difference PCs. When the two arms'
/// straight-line cycle sums differ — or either arm contains further
/// control flow — the branch also time-shifts everything after the rejoin,
/// so the cover set widens to all PCs reachable from it.
fn branch_divergence(
    cfg: &Cfg,
    pc: u32,
    pd: &BTreeMap<u32, BTreeSet<u32>>,
) -> (f64, BTreeSet<u32>) {
    let succs = cfg.successors_of(pc);
    if succs.len() < 2 {
        return (0.0, BTreeSet::new());
    }
    let (t, f) = (succs[0], succs[1]);
    let join = nearest_common_postdominator(pc, t, f, pd);
    let arm_t = arm_set(cfg, t, join);
    let arm_f = arm_set(cfg, f, join);
    let divergent: BTreeSet<u32> = arm_t.symmetric_difference(&arm_f).copied().collect();
    let arm_cost = |arm: &BTreeSet<u32>| -> (u64, bool) {
        let mut cycles = 0u64;
        let mut has_control = false;
        for &d in arm {
            if let Some(i) = cfg.instruction_at(d) {
                cycles += u64::from(cycle_cost(&i, true));
                has_control |= matches!(
                    i,
                    Instruction::Branch { .. } | Instruction::Jal { .. } | Instruction::Jalr { .. }
                );
            }
        }
        (cycles, has_control)
    };
    let (cyc_t, ctl_t) = arm_cost(&arm_t);
    let (cyc_f, ctl_f) = arm_cost(&arm_f);
    // The divergence energy is how different the two arms look on the
    // trace: the energy over the instructions only one arm executes.
    let control: f64 = divergent
        .iter()
        .filter_map(|&d| cfg.instruction_at(d))
        .map(|i| base_level(&i) * f64::from(cycle_cost(&i, true)))
        .sum();
    let displaced = cyc_t != cyc_f || ctl_t || ctl_f;
    let mut covered = divergent;
    if displaced {
        let from = join.map_or_else(BTreeSet::new, |j| reachable_from_inclusive(cfg, j));
        covered.extend(from);
        // A duration difference shifts every later sample of the same
        // iteration *and* later iterations: cover everything reachable
        // from the branch itself too.
        covered.extend(reachable_from(cfg, pc));
    }
    (control, covered)
}

/// All PCs reachable from `pc`'s successors (not necessarily including
/// `pc`).
fn reachable_from(cfg: &Cfg, pc: u32) -> BTreeSet<u32> {
    let mut seen = BTreeSet::new();
    let mut queue: VecDeque<u32> = cfg.successors_of(pc).iter().copied().collect();
    while let Some(n) = queue.pop_front() {
        if seen.insert(n) {
            queue.extend(cfg.successors_of(n).iter().copied());
        }
    }
    seen
}

/// All PCs reachable from `pc`, including `pc`.
fn reachable_from_inclusive(cfg: &Cfg, pc: u32) -> BTreeSet<u32> {
    let mut seen = reachable_from(cfg, pc);
    seen.insert(pc);
    seen
}

/// BFS from `start`, not expanding (or including) `stop`.
fn arm_set(cfg: &Cfg, start: u32, stop: Option<u32>) -> BTreeSet<u32> {
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::from([start]);
    while let Some(n) = queue.pop_front() {
        if Some(n) == stop || !seen.insert(n) {
            continue;
        }
        queue.extend(cfg.successors_of(n).iter().copied());
    }
    seen
}

/// Iterative postdominator sets over the reachable instructions: `pd[n]` =
/// the PCs on every path from `n` to a halt.
fn postdominators(cfg: &Cfg) -> BTreeMap<u32, BTreeSet<u32>> {
    let nodes: Vec<u32> = cfg.reachable_instructions().map(|(pc, _)| pc).collect();
    let all: BTreeSet<u32> = nodes.iter().copied().collect();
    let mut pd: BTreeMap<u32, BTreeSet<u32>> = nodes
        .iter()
        .map(|&n| {
            if cfg.successors_of(n).is_empty() {
                (n, BTreeSet::from([n]))
            } else {
                (n, all.clone())
            }
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &n in nodes.iter().rev() {
            let succs = cfg.successors_of(n);
            if succs.is_empty() {
                continue;
            }
            let mut meet: Option<BTreeSet<u32>> = None;
            for s in succs {
                if let Some(ps) = pd.get(s) {
                    meet = Some(match meet {
                        None => ps.clone(),
                        Some(m) => m.intersection(ps).copied().collect(),
                    });
                }
            }
            let mut new = meet.unwrap_or_default();
            new.insert(n);
            if pd.get(&n) != Some(&new) {
                pd.insert(n, new);
                changed = true;
            }
        }
    }
    pd
}

/// The nearest PC that postdominates both `t` and `f` (excluding the
/// branch itself), i.e. the rejoin point of the two arms.
fn nearest_common_postdominator(
    branch: u32,
    t: u32,
    f: u32,
    pd: &BTreeMap<u32, BTreeSet<u32>>,
) -> Option<u32> {
    let (pt, pf) = (pd.get(&t)?, pd.get(&f)?);
    let candidates: BTreeSet<u32> = pt
        .intersection(pf)
        .copied()
        .filter(|&c| c != branch)
        .collect();
    candidates.iter().copied().find(|&j| {
        candidates
            .iter()
            .all(|&k| pd.get(&j).is_some_and(|pj| pj.contains(&k)))
    })
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-zero energy assertions are intentional
mod tests {
    use super::*;
    use reveal_rv32::{assemble, LoadBound};

    fn map_for(src: &str, bound: Option<LoadBound>) -> (LeakageMap, reveal_rv32::Program) {
        let program = assemble(src, 0).unwrap();
        let mut analyzer = Analyzer::new(&program, 0).unwrap();
        for (name, &off) in &program.symbols {
            if name.starts_with("secret") {
                analyzer.mark_secret_load(off, "test secret");
            }
        }
        if let Some(b) = bound {
            analyzer.assume_load_bound(b);
        }
        let map = compute_leakage_map(&mut analyzer, &PowerModelConfig::default(), "unit");
        (map, program)
    }

    const NOISE_BOUND: LoadBound = LoadBound {
        base: 0xF000_0000,
        len: 4,
        lo: -21,
        hi: 21,
        description: "noise port",
    };

    #[test]
    fn quiet_program_has_an_empty_map() {
        let (map, _) = map_for(
            "
            li t0, 5
            loop:
            addi t0, t0, -1
            bnez t0, loop
            ebreak
            ",
            None,
        );
        assert!(map.sites.is_empty());
        assert_eq!(map.max_score(), 0.0);
        assert_eq!(map.control_flow_energy(), 0.0);
    }

    #[test]
    fn tainted_branch_tops_the_ranking_and_covers_its_arms() {
        let (map, program) = map_for(
            "
            li s0, 0xF0000000
            secret:
            lw t2, 0(s0)
            sign:
            bgez t2, pos
            neg:
            sub t2, zero, t2
            addi t2, t2, 1
            pos:
            li t3, 0x2000
            sw t2, 0(t3)
            ebreak
            ",
            Some(NOISE_BOUND),
        );
        let sign = program.symbol("sign").unwrap();
        let neg = program.symbol("neg").unwrap();
        // The sign branch and the full-mask secret load dominate the map.
        let top_pcs: Vec<u32> = map.top(2).iter().map(|s| s.pc).collect();
        assert!(
            top_pcs.contains(&sign),
            "sign branch in the top 2: {top_pcs:?}"
        );
        let branch = map.site_at(sign).unwrap();
        assert!(branch.components.control > 0.0);
        assert!(branch.components.flush > 0.0);
        assert!(map.covers(2, sign));
        assert!(map.covers(2, neg), "the arm is covered by the branch");
        // The arms take different cycle counts, so everything after the
        // rejoin is time-shifted and covered too.
        let store_pc = program.symbol("pos").unwrap();
        assert!(map.covers(2, store_pc));
    }

    #[test]
    fn refined_magnitude_scores_below_full_mask() {
        // Same ladder; the secret load (full 32-bit mask) must outscore the
        // store of the refined magnitude (≤ 6-bit mask after the arms
        // rejoin: [0, 22]).
        let (map, program) = map_for(
            "
            li s0, 0xF0000000
            secret:
            lw t2, 0(s0)
            bgez t2, pos
            sub t2, zero, t2
            addi t2, t2, 1
            pos:
            li t3, 0x2000
            store:
            sw t2, 0(t3)
            ebreak
            ",
            Some(NOISE_BOUND),
        );
        let load_pc = program.symbol("secret").unwrap();
        let store_pc = program.symbol("store").unwrap();
        let load = map.site_at(load_pc).expect("secret load scores");
        let store = map.site_at(store_pc).expect("magnitude store scores");
        assert_eq!(load.mask, u32::MAX, "sign-crossing value: all bits vary");
        assert!(store.mask <= 0x3F, "refined magnitude: {:#x}", store.mask);
        assert!(load.score() > store.score());
    }

    #[test]
    fn branchless_map_certifies_quiet_control_flow() {
        // Arithmetic-only sign fold: data leaks (stores), zero control
        // energy.
        let (map, _) = map_for(
            "
            li s0, 0xF0000000
            secret:
            lw t2, 0(s0)
            srai t3, t2, 31
            xor t2, t2, t3
            sub t2, t2, t3
            li t4, 0x2000
            sw t2, 0(t4)
            ebreak
            ",
            Some(NOISE_BOUND),
        );
        assert!(!map.sites.is_empty(), "stores still score");
        assert_eq!(map.control_flow_energy(), 0.0);
        assert!(map
            .sites
            .iter()
            .all(|s| s.components.flush == 0.0 && s.components.control == 0.0));
    }

    #[test]
    fn json_is_balanced_and_ranked() {
        let (map, _) = map_for(
            "
            li s0, 0xF0000000
            secret:
            lw t2, 0(s0)
            beqz t2, out
            nop
            out:
            ebreak
            ",
            Some(NOISE_BOUND),
        );
        let json = map.render_json();
        assert!(json.contains("\"rank\":1"));
        assert!(json.contains("\"covered_pcs\""));
        assert!(json.contains("\"control_flow_energy\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
