//! Value-set analysis domain: small concrete sets and strided intervals.
//!
//! Every abstract value is one of three shapes, ordered by precision:
//!
//! - [`Value::Set`]: at most [`MAX_SET`] concrete 32-bit words — exact, the
//!   shape `li`/`lui` constants and small loop counters live in;
//! - [`Value::Interval`]: a strided interval `{lo, lo+stride, …, hi}` over
//!   the *signed* (sign-extended) reading of the word, the Reps-style hull
//!   a set collapses to when it outgrows [`MAX_SET`];
//! - [`Value::Top`]: any word.
//!
//! Joins take the set union while it stays small, otherwise the interval
//! hull with a gcd stride. [`Value::widen`] accelerates growing bounds to
//! the type extremes so fixpoints terminate; the analysis recovers precision
//! afterwards through branch-condition refinement ([`Value::clamp_signed`],
//! [`Value::remove`]), the classic widen-then-narrow split.
//!
//! The signed reading keeps the sampled noise (`[-21, 21]`) a compact
//! interval across its sign flip; high MMIO addresses such as `0xF000_0000`
//! stay exact because constants travel as singleton *sets* of raw words and
//! never round-trip through the signed hull.

use std::fmt;

/// Maximum cardinality a concrete set may reach before collapsing to its
/// interval hull.
pub const MAX_SET: usize = 8;

/// Least signed value of a 32-bit word.
const I32_LO: i64 = i32::MIN as i64;
/// Greatest signed value of a 32-bit word.
const I32_HI: i64 = i32::MAX as i64;

/// Sign-extended reading of a word — the canonical ordering the interval
/// shape uses.
#[inline]
pub fn signed(word: u32) -> i64 {
    i64::from(word as i32)
}

/// An element of the value-set lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// At most [`MAX_SET`] concrete words, sorted by unsigned value, deduped.
    Set(Vec<u32>),
    /// `{lo, lo + stride, …, hi}` under the signed reading; `lo < hi` and
    /// `stride ≥ 1` always (singletons normalize to `Set`).
    Interval {
        /// Least member (signed reading).
        lo: i64,
        /// Greatest member (signed reading).
        hi: i64,
        /// Distance between consecutive members.
        stride: u64,
    },
    /// Any 32-bit word.
    Top,
}

impl Value {
    /// The singleton holding exactly `word`.
    pub fn constant(word: u32) -> Value {
        Value::Set(vec![word])
    }

    /// An interval `[lo, hi]` with the given stride, normalized: empty →
    /// panic (callers use [`Value::clamp_signed`] for possibly-empty meets),
    /// singleton → `Set`, out-of-range bounds → `Top`.
    pub fn interval(lo: i64, hi: i64, stride: u64) -> Value {
        assert!(lo <= hi, "interval [{lo}, {hi}] is empty");
        if lo < I32_LO || hi > I32_HI {
            return Value::Top;
        }
        if lo == hi {
            return Value::constant(lo as u32);
        }
        let stride = stride.max(1);
        // Align hi down to the stride lattice anchored at lo.
        let span = (hi - lo) as u64;
        let hi = lo + (span - span % stride) as i64;
        if lo == hi {
            return Value::constant(lo as u32);
        }
        Value::Interval { lo, hi, stride }
    }

    /// The signed hull `[lo, hi]`, or `None` for `Top`.
    pub fn hull(&self) -> Option<(i64, i64)> {
        match self {
            Value::Set(vs) => {
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for &v in vs {
                    lo = lo.min(signed(v));
                    hi = hi.max(signed(v));
                }
                Some((lo, hi))
            }
            Value::Interval { lo, hi, .. } => Some((*lo, *hi)),
            Value::Top => None,
        }
    }

    /// Every concrete word, when the value is finite and has at most
    /// `limit` members. The workhorse of indirect-target resolution.
    pub fn concrete(&self, limit: usize) -> Option<Vec<u32>> {
        match self {
            Value::Set(vs) if vs.len() <= limit => Some(vs.clone()),
            Value::Interval { lo, hi, stride } => {
                let count = ((hi - lo) as u64 / stride) + 1;
                if count as usize > limit {
                    return None;
                }
                Some(
                    (0..count)
                        .map(|k| (lo + (k * stride) as i64) as u32)
                        .collect(),
                )
            }
            _ => None,
        }
    }

    /// Whether `word` may be a member (over-approximate: `true` unless the
    /// shape can prove otherwise).
    pub fn may_contain(&self, word: u32) -> bool {
        match self {
            Value::Set(vs) => vs.contains(&word),
            Value::Interval { lo, hi, stride } => {
                let v = signed(word);
                v >= *lo && v <= *hi && ((v - lo) as u64).is_multiple_of(*stride)
            }
            Value::Top => true,
        }
    }

    /// The bits that can differ between members: `OR ^ AND` for sets, the
    /// low bits below the hull's highest differing bit for intervals (full
    /// mask when the hull crosses a sign flip), everything for `Top`.
    ///
    /// Taint masks are intersected with this, so a value the VSA proves
    /// constant cannot leak no matter where its bits came from.
    pub fn varying_bits(&self) -> u32 {
        match self {
            Value::Set(vs) => {
                let ones = vs.iter().fold(0u32, |acc, &v| acc | v);
                let all = vs.iter().fold(u32::MAX, |acc, &v| acc & v);
                ones ^ all
            }
            Value::Interval { lo, hi, .. } => {
                if *lo < 0 && *hi >= 0 {
                    return u32::MAX;
                }
                let x = (*lo as u32) ^ (*hi as u32);
                if x == 0 {
                    0
                } else {
                    u32::MAX >> x.leading_zeros()
                }
            }
            Value::Top => u32::MAX,
        }
    }

    /// Least upper bound.
    #[must_use]
    pub fn join(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Top, _) | (_, Value::Top) => Value::Top,
            (Value::Set(a), Value::Set(b)) => {
                let mut union = a.clone();
                for &v in b {
                    if !union.contains(&v) {
                        union.push(v);
                    }
                }
                if union.len() <= MAX_SET {
                    union.sort_unstable();
                    Value::Set(union)
                } else {
                    hull_join(self, other)
                }
            }
            _ => hull_join(self, other),
        }
    }

    /// Widening: like join, but bounds that grew since `self` (the previous
    /// state) accelerate straight to the type extremes. Guarantees
    /// termination: after widening each bound changes at most once more and
    /// the stride only shrinks along a divisor chain.
    #[must_use]
    pub fn widen(&self, next: &Value, thresholds: &[i64]) -> Value {
        let joined = self.join(next);
        if joined == *self {
            return joined;
        }
        let (Some((prev_lo, prev_hi)), Some((lo, hi))) = (self.hull(), joined.hull()) else {
            return Value::Top;
        };
        // Growing sets below the cardinality cap are still exact — let them
        // accumulate; the cap bounds that chain.
        if matches!(joined, Value::Set(_)) {
            return joined;
        }
        // Widening with thresholds: a growing bound jumps to the nearest
        // program constant past it before giving up and going to the i32
        // extreme. Loop bounds are program constants, so counters settle at
        // e.g. `[0, n]` instead of `[0, i32::MAX]` — which matters because
        // an extreme bound makes the next increment wrap to `Top` and every
        // address computed from it unresolvable.
        let lo = if lo < prev_lo {
            thresholds
                .iter()
                .rev()
                .copied()
                .find(|&t| t <= lo)
                .unwrap_or(I32_LO)
        } else {
            lo
        };
        let hi = if hi > prev_hi {
            thresholds
                .iter()
                .copied()
                .find(|&t| t >= hi)
                .unwrap_or(I32_HI)
        } else {
            hi
        };
        let stride = match joined {
            Value::Interval { stride, .. } => stride,
            _ => 1,
        };
        Value::interval(lo, hi, stride)
    }

    /// Meet with the signed constraint `lo_bound ≤ v ≤ hi_bound`; `None`
    /// when the meet is empty (the refining edge is infeasible).
    pub fn clamp_signed(&self, lo_bound: i64, hi_bound: i64) -> Option<Value> {
        if lo_bound > hi_bound {
            return None;
        }
        match self {
            Value::Set(vs) => {
                let kept: Vec<u32> = vs
                    .iter()
                    .copied()
                    .filter(|&v| signed(v) >= lo_bound && signed(v) <= hi_bound)
                    .collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(Value::Set(kept))
                }
            }
            Value::Interval { lo, hi, stride } => {
                let mut new_lo = (*lo).max(lo_bound);
                let mut new_hi = (*hi).min(hi_bound);
                if new_lo > new_hi {
                    return None;
                }
                // Snap to the stride lattice anchored at the original lo.
                let stride_i = *stride as i64;
                let up = (new_lo - lo).rem_euclid(stride_i);
                if up != 0 {
                    new_lo += stride_i - up;
                }
                new_hi -= (new_hi - lo).rem_euclid(stride_i);
                if new_lo > new_hi {
                    return None;
                }
                Some(Value::interval(new_lo, new_hi, *stride))
            }
            Value::Top => Some(Value::interval(
                lo_bound.max(I32_LO),
                hi_bound.min(I32_HI),
                1,
            )),
        }
    }

    /// Meet with `v ≠ word`: drops the member from sets, trims matching
    /// interval endpoints. `None` when the value was exactly `word`.
    pub fn remove(&self, word: u32) -> Option<Value> {
        match self {
            Value::Set(vs) => {
                let kept: Vec<u32> = vs.iter().copied().filter(|&v| v != word).collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(Value::Set(kept))
                }
            }
            Value::Interval { lo, hi, stride } => {
                let w = signed(word);
                if w == *lo {
                    Some(Value::interval(lo + *stride as i64, *hi, *stride))
                } else if w == *hi {
                    Some(Value::interval(*lo, hi - *stride as i64, *stride))
                } else {
                    Some(self.clone())
                }
            }
            Value::Top => Some(Value::Top),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Set(vs) => {
                write!(f, "{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:#x}")?;
                }
                write!(f, "}}")
            }
            Value::Interval { lo, hi, stride } => write!(f, "[{lo}, {hi}]/{stride}"),
            Value::Top => write!(f, "⊤"),
        }
    }
}

/// Interval hull of two finite values with a gcd stride.
fn hull_join(a: &Value, b: &Value) -> Value {
    let (Some((alo, ahi)), Some((blo, bhi))) = (a.hull(), b.hull()) else {
        return Value::Top;
    };
    let lo = alo.min(blo);
    let hi = ahi.max(bhi);
    let stride = gcd(gcd(stride_of(a), stride_of(b)), (blo - alo).unsigned_abs());
    Value::interval(lo, hi, stride.max(1))
}

/// The stride a value contributes to a hull: interval strides survive,
/// sets contribute the gcd of member gaps.
fn stride_of(v: &Value) -> u64 {
    match v {
        Value::Interval { stride, .. } => *stride,
        Value::Set(vs) if vs.len() >= 2 => {
            let mut signed_vs: Vec<i64> = vs.iter().map(|&v| signed(v)).collect();
            signed_vs.sort_unstable();
            signed_vs
                .windows(2)
                .fold(0, |acc, w| gcd(acc, (w[1] - w[0]).unsigned_abs()))
        }
        _ => 0,
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Evaluates a binary ALU operation over the domain.
#[must_use]
pub fn eval_binop(op: reveal_rv32::AluOp, a: &Value, b: &Value) -> Value {
    use reveal_rv32::AluOp;
    // Exact cartesian evaluation while both sides are small sets.
    if let (Value::Set(xs), Value::Set(ys)) = (a, b) {
        if xs.len() * ys.len() <= MAX_SET * MAX_SET {
            let mut out: Vec<u32> = Vec::with_capacity(xs.len() * ys.len());
            for &x in xs {
                for &y in ys {
                    let v = eval_concrete(op, x, y);
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            out.sort_unstable();
            if out.len() <= MAX_SET {
                return Value::Set(out);
            }
            let lo = out.iter().map(|&v| signed(v)).min().unwrap();
            let hi = out.iter().map(|&v| signed(v)).max().unwrap();
            let stride = stride_of(&Value::Set(out));
            return Value::interval(lo, hi, stride.max(1));
        }
    }
    let single = |v: &Value| -> Option<u32> {
        match v {
            Value::Set(vs) if vs.len() == 1 => Some(vs[0]),
            _ => None,
        }
    };
    match op {
        AluOp::Add => interval_add(a, b),
        AluOp::Sub => interval_sub(a, b),
        AluOp::And => {
            // `x & c` with `c ≥ 0` lands in `[0, c]` whatever `x` is.
            let c = single(a).or_else(|| single(b));
            match c {
                Some(c) if (c as i32) >= 0 => Value::interval(0, i64::from(c), 1),
                _ => match (a.hull(), b.hull()) {
                    // Both non-negative: the result cannot exceed either.
                    (Some((alo, ahi)), Some((blo, bhi))) if alo >= 0 && blo >= 0 => {
                        Value::interval(0, ahi.min(bhi), 1)
                    }
                    _ => Value::Top,
                },
            }
        }
        AluOp::Or | AluOp::Xor => match (a.hull(), b.hull()) {
            // Non-negative operands: or/xor stays below the next power of
            // two above both hulls.
            (Some((alo, ahi)), Some((blo, bhi))) if alo >= 0 && blo >= 0 => {
                let bound = next_pow2_minus_1(ahi.max(bhi));
                Value::interval(0, bound, 1)
            }
            _ => Value::Top,
        },
        AluOp::Sll => match single(b) {
            Some(k) => shift_left(a, k & 31),
            None => Value::Top,
        },
        AluOp::Srl => match (single(b), a.hull()) {
            (Some(k), Some((lo, _))) if lo >= 0 => shift_right_signed(a, k & 31),
            (Some(k), _) if k & 31 != 0 => {
                // A nonzero logical shift of any word is non-negative.
                Value::interval(0, (1i64 << (32 - (k & 31))) - 1, 1)
            }
            _ => Value::Top,
        },
        AluOp::Sra => match single(b) {
            Some(k) => shift_right_signed(a, k & 31),
            None => Value::Top,
        },
        AluOp::Slt | AluOp::Sltu => Value::interval(0, 1, 1),
    }
}

/// Evaluates an M-extension operation over the domain.
#[must_use]
pub fn eval_muldiv(op: reveal_rv32::MulOp, a: &Value, b: &Value) -> Value {
    if let (Value::Set(xs), Value::Set(ys)) = (a, b) {
        if xs.len() * ys.len() <= MAX_SET {
            let mut out: Vec<u32> = Vec::new();
            for &x in xs {
                for &y in ys {
                    let v = eval_muldiv_concrete(op, x, y);
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            out.sort_unstable();
            return Value::Set(out);
        }
    }
    match op {
        // Non-negative bounded multiply keeps an interval when it fits.
        reveal_rv32::MulOp::Mul => match (a.hull(), b.hull()) {
            (Some((alo, ahi)), Some((blo, bhi))) if alo >= 0 && blo >= 0 && ahi * bhi <= I32_HI => {
                Value::interval(alo * blo, ahi * bhi, 1)
            }
            _ => Value::Top,
        },
        _ => Value::Top,
    }
}

fn eval_concrete(op: reveal_rv32::AluOp, a: u32, b: u32) -> u32 {
    use reveal_rv32::AluOp;
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
    }
}

fn eval_muldiv_concrete(op: reveal_rv32::MulOp, x: u32, y: u32) -> u32 {
    use reveal_rv32::MulOp;
    match op {
        MulOp::Mul => x.wrapping_mul(y),
        MulOp::Mulh => ((i64::from(x as i32) * i64::from(y as i32)) >> 32) as u32,
        MulOp::Mulhsu => ((i64::from(x as i32) * i64::from(y)) >> 32) as u32,
        MulOp::Mulhu => ((u64::from(x) * u64::from(y)) >> 32) as u32,
        MulOp::Div if y != 0 => (x as i32).wrapping_div(y as i32) as u32,
        MulOp::Divu if y != 0 => x / y,
        MulOp::Rem if y != 0 => (x as i32).wrapping_rem(y as i32) as u32,
        MulOp::Remu if y != 0 => x % y,
        // RISC-V defines division by zero (all-ones / dividend); model it.
        MulOp::Div | MulOp::Divu => u32::MAX,
        MulOp::Rem | MulOp::Remu => x,
    }
}

fn interval_add(a: &Value, b: &Value) -> Value {
    let (Some((alo, ahi)), Some((blo, bhi))) = (a.hull(), b.hull()) else {
        return Value::Top;
    };
    let lo = alo + blo;
    let hi = ahi + bhi;
    if lo < I32_LO || hi > I32_HI {
        return Value::Top;
    }
    Value::interval(lo, hi, gcd(stride_of(a), stride_of(b)).max(1))
}

fn interval_sub(a: &Value, b: &Value) -> Value {
    let (Some((alo, ahi)), Some((blo, bhi))) = (a.hull(), b.hull()) else {
        return Value::Top;
    };
    let lo = alo - bhi;
    let hi = ahi - blo;
    if lo < I32_LO || hi > I32_HI {
        return Value::Top;
    }
    Value::interval(lo, hi, gcd(stride_of(a), stride_of(b)).max(1))
}

fn shift_left(a: &Value, k: u32) -> Value {
    let Some((lo, hi)) = a.hull() else {
        return Value::Top;
    };
    let new_lo = lo << k;
    let new_hi = hi << k;
    if new_lo < I32_LO || new_hi > I32_HI {
        return Value::Top;
    }
    Value::interval(new_lo, new_hi, (stride_of(a).max(1)) << k)
}

fn shift_right_signed(a: &Value, k: u32) -> Value {
    let Some((lo, hi)) = a.hull() else {
        return Value::Top;
    };
    Value::interval(lo >> k, hi >> k, 1)
}

fn next_pow2_minus_1(v: i64) -> i64 {
    let mut bound: i64 = 1;
    while bound - 1 < v && bound < (1i64 << 32) {
        bound <<= 1;
    }
    bound - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use reveal_rv32::AluOp;

    #[test]
    fn constants_stay_exact_sets() {
        let mmio = Value::constant(0xF000_0000);
        assert_eq!(mmio.concrete(8), Some(vec![0xF000_0000]));
        assert_eq!(mmio.varying_bits(), 0);
        let off = eval_binop(AluOp::Add, &mmio, &Value::constant(8));
        assert_eq!(off, Value::constant(0xF000_0008));
    }

    #[test]
    fn join_unions_until_cap_then_hulls() {
        let mut v = Value::constant(0);
        for i in 1..(MAX_SET as u32) {
            v = v.join(&Value::constant(4 * i));
        }
        assert!(matches!(&v, Value::Set(vs) if vs.len() == MAX_SET));
        let overflowed = v.join(&Value::constant(4 * MAX_SET as u32));
        match overflowed {
            Value::Interval { lo, hi, stride } => {
                assert_eq!((lo, hi, stride), (0, 4 * MAX_SET as i64, 4));
            }
            other => panic!("expected hull, got {other:?}"),
        }
    }

    #[test]
    fn widen_accelerates_growing_bounds() {
        let prev = Value::interval(0, 100, 1);
        let grown = Value::interval(0, 200, 1);
        let widened = prev.widen(&grown, &[]);
        assert_eq!(widened.hull(), Some((0, I32_HI)), "hi grew → extreme");
        // Stable state widens to itself.
        assert_eq!(widened.widen(&widened, &[]), widened);
    }

    #[test]
    fn widen_jumps_to_the_nearest_threshold_first() {
        let prev = Value::interval(0, 8, 1);
        let grown = Value::interval(0, 12, 1);
        let thresholds = [0, 57, 1024];
        let widened = prev.widen(&grown, &thresholds);
        assert_eq!(widened.hull(), Some((0, 57)), "hi snaps to threshold 57");
        // A bound past every threshold still escapes to the extreme.
        let grown = Value::interval(-5, 2048, 1);
        let widened = Value::interval(0, 57, 1).widen(&grown, &thresholds);
        assert_eq!(widened.hull(), Some((I32_LO, I32_HI)));
    }

    #[test]
    fn clamp_narrows_after_widening() {
        let wide = Value::interval(0, I32_HI, 1);
        let narrowed = wide.clamp_signed(0, 7).unwrap();
        assert_eq!(narrowed.hull(), Some((0, 7)));
        assert!(wide.clamp_signed(-5, -1).is_none(), "empty meet");
    }

    #[test]
    fn clamp_respects_stride_lattice() {
        let v = Value::interval(0, 40, 4);
        let clamped = v.clamp_signed(3, 17).unwrap();
        assert_eq!(clamped.hull(), Some((4, 16)));
        assert!(clamped.may_contain(8));
        assert!(!clamped.may_contain(6));
    }

    #[test]
    fn varying_bits_tracks_sign_and_magnitude() {
        // The noise value after clipping: sign flip ⇒ every bit can differ.
        let noise = Value::interval(-21, 21, 1);
        assert_eq!(noise.varying_bits(), u32::MAX);
        // Refined to the negative arm and negated: only low bits differ.
        let mag = Value::interval(1, 21, 1);
        assert_eq!(mag.varying_bits(), 0x1F);
        // A q-relative residue keeps its high bits fixed (the hull spans
        // the carry out of bit 21, so everything below it may flip, but
        // bits 22+ are provably constant).
        let q = 132_120_577i64;
        let residue = Value::interval(q - 21, q - 1, 1);
        assert_eq!(residue.varying_bits() & 0xFFC0_0000, 0);
    }

    #[test]
    fn sub_flips_a_bounded_interval() {
        // `sub t2, zero, t2` with t2 ∈ [-21, -1]: exact negation.
        let neg = Value::interval(-21, -1, 1);
        let negated = eval_binop(AluOp::Sub, &Value::constant(0), &neg);
        assert_eq!(negated.hull(), Some((1, 21)));
    }

    #[test]
    fn and_with_mask_bounds_the_result() {
        let top = Value::Top;
        let masked = eval_binop(AluOp::And, &top, &Value::constant(0xFF));
        assert_eq!(masked.hull(), Some((0, 255)));
    }

    #[test]
    fn shifts_scale_strides() {
        let idx = Value::interval(0, 7, 1);
        let scaled = eval_binop(AluOp::Sll, &idx, &Value::constant(2));
        match scaled {
            Value::Interval { lo, hi, stride } => assert_eq!((lo, hi, stride), (0, 28, 4)),
            other => panic!("expected strided interval, got {other:?}"),
        }
        let back = eval_binop(AluOp::Sra, &scaled, &Value::constant(2));
        assert_eq!(back.hull(), Some((0, 7)));
    }

    #[test]
    fn concrete_enumerates_small_intervals() {
        let v = Value::interval(0x100, 0x10C, 4);
        assert_eq!(v.concrete(8), Some(vec![0x100, 0x104, 0x108, 0x10C]));
        assert_eq!(v.concrete(2), None);
        assert_eq!(Value::Top.concrete(8), None);
    }

    #[test]
    fn remove_trims_endpoints() {
        let v = Value::interval(0, 8, 1);
        let trimmed = v.remove(8).unwrap();
        assert_eq!(trimmed.hull(), Some((0, 7)));
        assert_eq!(Value::constant(3).remove(3), None);
    }

    #[test]
    fn division_by_zero_is_defined_not_top() {
        let q = eval_muldiv(
            reveal_rv32::MulOp::Divu,
            &Value::constant(7),
            &Value::constant(0),
        );
        assert_eq!(q, Value::constant(u32::MAX));
    }

    #[test]
    fn join_is_commutative_and_idempotent_on_samples() {
        let samples = [
            Value::constant(0),
            Value::constant(0xF000_0000),
            Value::interval(0, 100, 4),
            Value::interval(-21, 21, 1),
            Value::Top,
            Value::Set(vec![1, 5, 9]),
        ];
        for a in &samples {
            assert_eq!(a.join(a), *a, "idempotent: {a}");
            for b in &samples {
                let ab = a.join(b);
                let ba = b.join(a);
                assert_eq!(ab, ba, "commutative: {a} vs {b}");
                // The join is an upper bound of both.
                if let (Some((lo, hi)), Some((alo, ahi))) = (ab.hull(), a.hull()) {
                    assert!(lo <= alo && hi >= ahi);
                }
            }
        }
    }
}
