#![forbid(unsafe_code)]
#![deny(clippy::pedantic)]
// A value-set analysis is one big structural case split: the match arms on
// (lattice element × lattice element) are clearer spelled out than folded,
// and scores/masks convert between integer widths deliberately.
#![allow(
    clippy::match_same_arms,
    clippy::module_name_repetitions,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss,
    clippy::too_many_lines,
    clippy::missing_panics_doc,
    clippy::missing_errors_doc,
    clippy::must_use_candidate,
    clippy::format_push_string
)]

//! # reveal-lint
//!
//! A quantitative static leakage certifier for the RV32 sampler kernels:
//! the "could we have caught Fig. 2 before taping out?" companion to the
//! dynamic side-channel attack the rest of the workspace mounts.
//!
//! Three layers:
//!
//! 1. **Value-set analysis** ([`vsa`]) — every register carries a small
//!    concrete set or a strided signed interval. A worklist fixpoint with
//!    delayed widening (to program-constant thresholds), branch-edge
//!    refinement, and a bounded descending/narrowing phase terminates on
//!    every kernel. Indirect `jalr` targets are resolved from the solved
//!    value sets and fed back into the CFG, so the shuffled variant's
//!    dispatch analyzes with **zero** "not analyzed" caveats.
//! 2. **Bit-level taint** ([`taint`]) — per-bit masks seeded at the
//!    declared secret loads; the *effective* taint at any site is
//!    `mask & value.varying_bits()`, so bits the VSA proves constant
//!    cannot leak. Four verdict rules are checked ([`report`]):
//!
//!    | rule | severity | fires on |
//!    |------|----------|----------|
//!    | L1   | error    | secret-dependent branch / indirect jump |
//!    | L2   | error    | secret-dependent load/store address |
//!    | L3   | warning  | secret operand to `mul`/`div`-class instructions |
//!    | L4   | info     | secret value stored to memory |
//!
//! 3. **Leakage map** ([`leakage`]) — per-PC upper bounds on
//!    secret-dependent power variance under the *same* HW/HD model the
//!    trace renderer uses ([`reveal_rv32::PowerModelConfig`]), ranked into
//!    a JSON artifact. The crate's integration tests cross-validate the
//!    ranking against the dynamic CPA/template attack: every PC the
//!    attack exploits must be covered by the static top sites, and sites
//!    the certifier calls quiet must stay quiet.
//!
//! Reports render as human text, JSON, or SARIF 2.1.0. See `docs/lint.md`
//! for the abstract domains, the widening rule, and the leakage-map
//! schema.
//!
//! ## Example
//!
//! ```
//! use reveal_lint::{analyze_kernel, Rule};
//! use reveal_rv32::SamplerKernel;
//!
//! let kernel = SamplerKernel::new(8, &[132120577])?;
//! let report = analyze_kernel(&kernel);
//! // SEAL v3.2's sign ladder branches on the sampled noise.
//! assert!(report.findings_for(Rule::L1SecretBranch).count() >= 1);
//! assert!(!report.is_constant_time());
//! # Ok::<(), reveal_rv32::KernelError>(())
//! ```

pub mod analysis;
pub mod leakage;
pub mod report;
pub mod taint;
pub mod vsa;

pub use analysis::{analyze_kernel, analyzer_for_kernel, Analyzer};
pub use leakage::{leakage_map_for_kernel, LeakageMap, LeakageSite};
pub use report::{Finding, Report, Rule, Severity};
pub use taint::{RegVal, State, Taint};
pub use vsa::Value;
