#![forbid(unsafe_code)]

//! # reveal-lint
//!
//! A static constant-time analyzer for the RV32 sampler kernels: the
//! "could we have caught Fig. 2 before taping out?" companion to the
//! dynamic side-channel attack the rest of the workspace mounts.
//!
//! The analyzer consumes an assembled [`Program`](reveal_rv32::Program),
//! reconstructs its control-flow graph ([`reveal_rv32::cfg`]), marks the
//! declared secret sources (for [`SamplerKernel`](reveal_rv32::SamplerKernel)s,
//! the noise load from `NOISE_PORT`), and runs a forward taint fixpoint with
//! a small value lattice for pointer/region reconstruction. Four rules are
//! checked against the result:
//!
//! | rule | severity | fires on |
//! |------|----------|----------|
//! | L1   | error    | secret-dependent branch / indirect jump |
//! | L2   | error    | secret-dependent load/store address |
//! | L3   | warning  | secret operand to `mul`/`div`-class instructions |
//! | L4   | info     | secret value stored to memory |
//!
//! See `docs/lint.md` for the taint model and worked examples.
//!
//! ## Example
//!
//! ```
//! use reveal_lint::{analyze_kernel, Rule};
//! use reveal_rv32::SamplerKernel;
//!
//! let kernel = SamplerKernel::new(8, &[132120577])?;
//! let report = analyze_kernel(&kernel);
//! // SEAL v3.2's sign ladder branches on the sampled noise.
//! assert!(report.findings_for(Rule::L1SecretBranch).count() >= 1);
//! assert!(!report.is_constant_time());
//! # Ok::<(), reveal_rv32::KernelError>(())
//! ```

pub mod analysis;
pub mod report;
pub mod taint;

pub use analysis::{analyze_kernel, Analyzer};
pub use report::{Finding, Report, Rule, Severity};
pub use taint::{AbsVal, RegVal, State, Taint};
