//! The abstract machine state: VSA values ([`crate::vsa::Value`]) paired
//! with bit-level taint masks.
//!
//! [`Taint`] refines the old boolean lattice into a per-bit mask: bit `i`
//! of `mask` is set when bit `i` of the value may depend on a secret. The
//! lowest-PC source is kept as the diagnostic anchor. The *effective*
//! taint at a use site is `mask & value.varying_bits()` — a bit the VSA
//! proves constant cannot leak, however it was computed. This is what lets
//! the certifier score the negative ladder arm (magnitude bits only,
//! `0x1F`) lower than the pre-branch sign test (full mask).
//!
//! Memory is a map from *address intervals* to stored (value, taint)
//! summaries. Stores through interval-shaped pointers land on their whole
//! range; loads join every overlapping region. This is coarser than a
//! byte-accurate heap but sound under the interval churn of widening, and
//! precise enough to keep the kernels' disjoint buffers (`q` table, poly
//! output, share buffers) from aliasing.

use std::collections::BTreeMap;

use reveal_rv32::Reg;

use crate::vsa::Value;

/// Per-bit secret influence plus a representative origin PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Taint {
    /// Bit `i` set ⇒ bit `i` of the value may depend on a secret.
    pub mask: u32,
    /// Lowest PC of a contributing secret source (diagnostic anchor).
    origin: Option<u32>,
}

impl Taint {
    /// An untainted value.
    pub const CLEAN: Taint = Taint {
        mask: 0,
        origin: None,
    };

    /// A value read directly by the secret source at `pc`: every bit
    /// suspect.
    pub fn source(pc: u32) -> Taint {
        Taint {
            mask: u32::MAX,
            origin: Some(pc),
        }
    }

    /// A taint with the same origin but a different mask; clean when the
    /// mask is empty.
    #[must_use]
    pub fn with_mask(self, mask: u32) -> Taint {
        if mask == 0 {
            Taint::CLEAN
        } else {
            Taint { mask, ..self }
        }
    }

    /// Least upper bound: union of masks, lowest origin.
    #[must_use]
    pub fn join(self, other: Taint) -> Taint {
        let origin = match (self.origin, other.origin) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        };
        let mask = self.mask | other.mask;
        if mask == 0 {
            Taint::CLEAN
        } else {
            Taint { mask, origin }
        }
    }

    /// Whether any bit carries secret influence.
    pub fn is_tainted(self) -> bool {
        self.mask != 0
    }

    /// PC of the representative secret source, if tainted.
    pub fn origin(self) -> Option<u32> {
        if self.mask == 0 {
            None
        } else {
            self.origin
        }
    }

    /// Carry-spread: arithmetic (`add`/`sub`/`mul`) propagates a tainted
    /// bit into every bit above it.
    #[must_use]
    pub fn spread_up(self) -> Taint {
        if self.mask == 0 {
            return Taint::CLEAN;
        }
        self.with_mask(u32::MAX << self.mask.trailing_zeros())
    }
}

/// One register's abstract state: a VSA value and its taint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegVal {
    /// Value-set lattice element.
    pub val: Value,
    /// Bit-taint lattice element.
    pub taint: Taint,
}

impl RegVal {
    /// Unknown and clean — the entry state of every register.
    pub fn top_clean() -> RegVal {
        RegVal {
            val: Value::Top,
            taint: Taint::CLEAN,
        }
    }

    /// A known-constant, clean register.
    pub fn constant(word: u32) -> RegVal {
        RegVal {
            val: Value::constant(word),
            taint: Taint::CLEAN,
        }
    }

    /// The taint that actually matters at a use site: declared mask
    /// intersected with the bits the value can vary in.
    pub fn effective_taint(&self) -> Taint {
        self.taint
            .with_mask(self.taint.mask & self.val.varying_bits())
    }
}

/// A stored-memory summary over one address interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRegion {
    /// Join of every value stored into the interval.
    pub val: Value,
    /// Join of every taint stored into the interval.
    pub taint: Taint,
}

/// The abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Per-register state; index = register number. `x0` is pinned to
    /// constant 0 / clean by [`State::set_reg`].
    pub regs: Vec<RegVal>,
    /// Stored-memory summaries keyed by unsigned address interval
    /// `(lo, hi)` (inclusive). Disjoint keys don't alias; overlapping keys
    /// are joined on load. Updates are weak.
    pub mem: BTreeMap<(u32, u32), MemRegion>,
    /// Join of every store whose address the VSA lost entirely; folds into
    /// every load.
    pub unknown_store: Taint,
}

impl State {
    /// The state at program entry: registers unknown-but-clean, memory
    /// untouched.
    pub fn entry() -> State {
        let mut regs = vec![RegVal::top_clean(); 32];
        regs[0] = RegVal::constant(0);
        State {
            regs,
            mem: BTreeMap::new(),
            unknown_store: Taint::CLEAN,
        }
    }

    /// Reads a register (always constant 0 / clean for `x0`).
    pub fn reg(&self, r: Reg) -> &RegVal {
        &self.regs[r.0 as usize]
    }

    /// Writes a register; writes to `x0` are discarded.
    pub fn set_reg(&mut self, r: Reg, v: RegVal) {
        if r != Reg::ZERO {
            self.regs[r.0 as usize] = v;
        }
    }

    /// The unsigned address interval a memory access through `base` +
    /// `offset` covering `width` bytes may touch; `None` when the VSA has
    /// no bound on the pointer.
    pub fn addr_interval(base: &Value, offset: i32, width: u32) -> Option<(u32, u32)> {
        let (lo, hi) = base.hull()?;
        let lo = (lo as u32).wrapping_add(offset as u32);
        let hi = (hi as u32).wrapping_add(offset as u32) + (width - 1);
        // A hull that wraps the unsigned space (e.g. a sign-crossing
        // interval) covers everything — treat as unknown.
        if lo > hi {
            return None;
        }
        Some((lo, hi))
    }

    /// What a load from `range` observes: the join of every overlapping
    /// region plus the unknown-store summary. Untouched memory reads as
    /// top/clean (inputs are modeled via explicit load bounds, not here).
    pub fn load(&self, range: Option<(u32, u32)>) -> (Value, Taint) {
        let mut taint = self.unknown_store;
        let mut val: Option<Value> = None;
        let mut overlapping = 0usize;
        if let Some((lo, hi)) = range {
            for (&(rlo, rhi), region) in &self.mem {
                if rlo <= hi && lo <= rhi {
                    taint = taint.join(region.taint);
                    val = Some(match val {
                        Some(v) => v.join(&region.val),
                        None => region.val.clone(),
                    });
                    overlapping += 1;
                }
            }
            // The load may also read bytes no store covered (top), or
            // multiple regions; only a load fully inside a single
            // region keeps that region's value.
            if overlapping == 1 {
                let only = self
                    .mem
                    .iter()
                    .find(|(&(rlo, rhi), _)| rlo <= hi && lo <= rhi)
                    .map(|(&k, _)| k)
                    .unwrap();
                if !(only.0 <= lo && hi <= only.1) {
                    val = None;
                }
            } else if overlapping > 1 {
                val = None;
            }
        } else {
            for region in self.mem.values() {
                taint = taint.join(region.taint);
            }
            val = None;
        }
        (val.unwrap_or(Value::Top), taint)
    }

    /// Records a store of (`val`, `taint`) to `range` (weak update; `None`
    /// = unknown address, poisons everything).
    pub fn store(&mut self, range: Option<(u32, u32)>, val: &Value, taint: Taint) {
        match range {
            Some(key) => {
                let entry = self.mem.entry(key).or_insert(MemRegion {
                    val: val.clone(),
                    taint,
                });
                entry.val = entry.val.join(val);
                entry.taint = entry.taint.join(taint);
            }
            None => self.unknown_store = self.unknown_store.join(taint),
        }
    }

    /// Joins `other` into `self`; returns whether anything changed.
    pub fn join_from(&mut self, other: &State) -> bool {
        self.merge_from(other, None)
    }

    /// Widening join: like [`State::join_from`] but register values use
    /// [`Value::widen`], accelerating loop-carried growth to a fixpoint.
    pub fn widen_from(&mut self, other: &State, thresholds: &[i64]) -> bool {
        self.merge_from(other, Some(thresholds))
    }

    fn merge_from(&mut self, other: &State, widen: Option<&[i64]>) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let new_val = if let Some(thresholds) = widen {
                self.regs[i].val.widen(&other.regs[i].val, thresholds)
            } else {
                self.regs[i].val.join(&other.regs[i].val)
            };
            let new_taint = self.regs[i].taint.join(other.regs[i].taint);
            if new_val != self.regs[i].val || new_taint != self.regs[i].taint {
                self.regs[i] = RegVal {
                    val: new_val,
                    taint: new_taint,
                };
                changed = true;
            }
        }
        for (&key, region) in &other.mem {
            if let Some(existing) = self.mem.get_mut(&key) {
                let val = existing.val.join(&region.val);
                let taint = existing.taint.join(region.taint);
                if val != existing.val || taint != existing.taint {
                    existing.val = val;
                    existing.taint = taint;
                    changed = true;
                }
            } else {
                self.mem.insert(key, region.clone());
                changed = true;
            }
        }
        let joined = self.unknown_store.join(other.unknown_store);
        if joined != self.unknown_store {
            self.unknown_store = joined;
            changed = true;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vsa::Value;

    #[test]
    fn taint_join_unions_masks_and_keeps_lowest_origin() {
        let a = Taint::source(8).with_mask(0x0F);
        let b = Taint::source(4).with_mask(0xF0);
        let ab = a.join(b);
        assert_eq!(ab.mask, 0xFF);
        assert_eq!(ab.origin(), Some(4));
        assert!(!Taint::CLEAN.join(Taint::CLEAN).is_tainted());
    }

    #[test]
    fn with_mask_zero_is_clean() {
        let t = Taint::source(16).with_mask(0);
        assert!(!t.is_tainted());
        assert_eq!(t.origin(), None);
    }

    #[test]
    fn spread_up_models_carries() {
        let t = Taint::source(0).with_mask(0b100);
        assert_eq!(t.spread_up().mask, u32::MAX << 2);
        assert!(!Taint::CLEAN.spread_up().is_tainted());
    }

    #[test]
    fn effective_taint_is_cut_by_the_value() {
        // Fully tainted bits, but the VSA knows the value is one of {0, 1}:
        // only bit 0 can actually leak.
        let rv = RegVal {
            val: Value::interval(0, 1, 1),
            taint: Taint::source(0),
        };
        assert_eq!(rv.effective_taint().mask, 0b1);
        // A proven constant cannot leak at all.
        let konst = RegVal {
            val: Value::constant(42),
            taint: Taint::source(0),
        };
        assert!(!konst.effective_taint().is_tainted());
    }

    #[test]
    fn disjoint_regions_do_not_alias() {
        let mut s = State::entry();
        s.store(
            Some((0x3000, 0x3003)),
            &Value::constant(1),
            Taint::source(0),
        );
        let (_, clean) = s.load(Some((0x4000, 0x4003)));
        assert!(!clean.is_tainted());
        let (_, hot) = s.load(Some((0x3000, 0x3003)));
        assert!(hot.is_tainted());
    }

    #[test]
    fn overlapping_regions_join_on_load() {
        let mut s = State::entry();
        s.store(
            Some((0x2000, 0x20FF)),
            &Value::constant(5),
            Taint::source(8),
        );
        // A load through an interval pointer that clips the region edge.
        let (val, taint) = s.load(Some((0x20F0, 0x2103)));
        assert!(taint.is_tainted());
        // Partially-covered load can see uninitialized bytes: value is top.
        assert_eq!(val, Value::Top);
        // Fully-inside load keeps the stored value.
        let (val, _) = s.load(Some((0x2004, 0x2007)));
        assert_eq!(val, Value::constant(5));
    }

    #[test]
    fn unknown_store_poisons_every_load() {
        let mut s = State::entry();
        s.store(None, &Value::Top, Taint::source(16));
        assert!(s.load(Some((0x1000, 0x1003))).1.is_tainted());
        assert!(s.load(None).1.is_tainted());
    }

    #[test]
    fn x0_stays_pinned() {
        let mut s = State::entry();
        s.set_reg(
            Reg::ZERO,
            RegVal {
                val: Value::Top,
                taint: Taint::source(0),
            },
        );
        assert_eq!(s.reg(Reg::ZERO).val, Value::constant(0));
        assert!(!s.reg(Reg::ZERO).taint.is_tainted());
    }

    #[test]
    fn widen_from_converges_on_loop_growth() {
        let mut head = State::entry();
        head.set_reg(Reg(5), RegVal::constant(0));
        // Simulate iterations feeding back t0+4 each trip.
        let mut trips = 0;
        loop {
            let mut body = head.clone();
            let cur = body.reg(Reg(5)).val.clone();
            body.set_reg(
                Reg(5),
                RegVal {
                    val: crate::vsa::eval_binop(reveal_rv32::AluOp::Add, &cur, &Value::constant(4)),
                    taint: Taint::CLEAN,
                },
            );
            if !head.widen_from(&body, &[]) {
                break;
            }
            trips += 1;
            assert!(trips < 32, "widening must converge quickly");
        }
        // Unbounded growth converges: the set enumerates, the hull widens
        // to the extreme, and the post-widening overflow collapses to Top.
        match &head.reg(Reg(5)).val {
            Value::Top => {}
            other => panic!("expected Top after widened overflow, got {other:?}"),
        }
    }

    #[test]
    fn addr_interval_handles_widths_and_wraps() {
        let p = Value::interval(0x1000, 0x10FC, 4);
        assert_eq!(State::addr_interval(&p, 0, 4), Some((0x1000, 0x10FF)));
        assert_eq!(State::addr_interval(&p, 8, 1), Some((0x1008, 0x1104)));
        // Sign-crossing hull wraps unsigned space: unknown.
        let wild = Value::interval(-4, 4, 1);
        assert_eq!(State::addr_interval(&wild, 0, 4), None);
        assert_eq!(State::addr_interval(&Value::Top, 0, 4), None);
    }
}
