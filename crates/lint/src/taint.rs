//! The abstract domain: a value lattice for address reconstruction and a
//! taint lattice for secret tracking.
//!
//! Both lattices are deliberately shallow. [`AbsVal`] only needs to answer
//! "which buffer does this pointer index?", so it tracks exact constants and
//! region bases and collapses everything else to [`AbsVal::Unknown`].
//! [`Taint`] tracks whether a value is derived from a secret source and, if
//! so, the lowest-PC source it came from (enough to anchor a diagnostic;
//! the full origin set would add noise, not information).

use std::collections::BTreeMap;

use reveal_rv32::Reg;

/// Where a value sits in the constant/pointer lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Exactly this value on every path reaching here.
    Const(u32),
    /// A pointer into the buffer based at the given address; the index part
    /// is unknown.
    Addr(u32),
    /// Anything.
    Unknown,
}

impl AbsVal {
    /// Least upper bound.
    #[must_use]
    pub fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (a, b) if a == b => a,
            // A constant equal to a region base is a degenerate pointer into
            // that region (index 0) — common on the first loop iteration.
            (AbsVal::Const(c), AbsVal::Addr(b)) | (AbsVal::Addr(b), AbsVal::Const(c)) if c == b => {
                AbsVal::Addr(b)
            }
            _ => AbsVal::Unknown,
        }
    }

    /// The memory region a load/store through this base + `offset` touches:
    /// the exact address for constants, the buffer base for pointers, `None`
    /// when the address is unknown.
    pub fn region(self, offset: i32) -> Option<u32> {
        match self {
            AbsVal::Const(c) => Some(c.wrapping_add(offset as u32)),
            AbsVal::Addr(b) => Some(b),
            AbsVal::Unknown => None,
        }
    }
}

/// Whether a value is influenced by a secret, and by which source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Taint {
    origin: Option<u32>,
}

impl Taint {
    /// An untainted value.
    pub const CLEAN: Taint = Taint { origin: None };

    /// A value read directly by the secret source at `pc`.
    pub fn source(pc: u32) -> Taint {
        Taint { origin: Some(pc) }
    }

    /// Least upper bound; keeps the lowest-PC origin as the representative.
    #[must_use]
    pub fn join(self, other: Taint) -> Taint {
        match (self.origin, other.origin) {
            (Some(a), Some(b)) => Taint {
                origin: Some(a.min(b)),
            },
            (Some(a), None) | (None, Some(a)) => Taint { origin: Some(a) },
            (None, None) => Taint::CLEAN,
        }
    }

    /// Whether the value carries secret influence.
    pub fn is_tainted(self) -> bool {
        self.origin.is_some()
    }

    /// PC of the representative secret source, if tainted.
    pub fn origin(self) -> Option<u32> {
        self.origin
    }
}

/// One register's abstract state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegVal {
    /// Value lattice element.
    pub val: AbsVal,
    /// Taint lattice element.
    pub taint: Taint,
}

impl RegVal {
    /// Unknown and clean — the entry state of every register.
    pub const TOP_CLEAN: RegVal = RegVal {
        val: AbsVal::Unknown,
        taint: Taint::CLEAN,
    };
}

/// The abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Per-register value + taint; index = register number. `x0` is pinned
    /// to `Const(0)`/clean by [`State::set_reg`].
    pub regs: [RegVal; 32],
    /// Taint of data stored into each known memory region, keyed by region
    /// base. Regions never stored to are clean. Updates are weak (joins):
    /// a region stays tainted once any path taints it.
    pub mem: BTreeMap<u32, Taint>,
    /// Join of the taints of every store whose target region was unknown;
    /// such a store may alias any region, so every load folds this in.
    pub unknown_store: Taint,
}

impl State {
    /// The state at the program entry: registers unknown-but-clean, memory
    /// untouched.
    pub fn entry() -> State {
        let mut regs = [RegVal::TOP_CLEAN; 32];
        regs[0] = RegVal {
            val: AbsVal::Const(0),
            taint: Taint::CLEAN,
        };
        State {
            regs,
            mem: BTreeMap::new(),
            unknown_store: Taint::CLEAN,
        }
    }

    /// Reads a register (always `Const(0)`/clean for `x0`).
    pub fn reg(&self, r: Reg) -> RegVal {
        self.regs[r.0 as usize]
    }

    /// Writes a register; writes to `x0` are discarded.
    pub fn set_reg(&mut self, r: Reg, v: RegVal) {
        if r != Reg::ZERO {
            self.regs[r.0 as usize] = v;
        }
    }

    /// Taint observed by a load from `region` (`None` = unknown address):
    /// the region's stored taint — or, for an unknown address, the join of
    /// every region — plus the unknown-store summary either way.
    pub fn load_taint(&self, region: Option<u32>) -> Taint {
        let stored = match region {
            Some(r) => self.mem.get(&r).copied().unwrap_or(Taint::CLEAN),
            None => self.mem.values().fold(Taint::CLEAN, |acc, &t| acc.join(t)),
        };
        stored.join(self.unknown_store)
    }

    /// Records a store of `taint`ed data to `region` (weak update).
    pub fn store(&mut self, region: Option<u32>, taint: Taint) {
        match region {
            Some(r) => {
                let entry = self.mem.entry(r).or_insert(Taint::CLEAN);
                *entry = entry.join(taint);
            }
            None => self.unknown_store = self.unknown_store.join(taint),
        }
    }

    /// Joins `other` into `self`; returns whether anything changed.
    pub fn join_from(&mut self, other: &State) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let joined = RegVal {
                val: self.regs[i].val.join(other.regs[i].val),
                taint: self.regs[i].taint.join(other.regs[i].taint),
            };
            if joined != self.regs[i] {
                self.regs[i] = joined;
                changed = true;
            }
        }
        for (&region, &taint) in &other.mem {
            let entry = self.mem.entry(region).or_insert(Taint::CLEAN);
            let joined = entry.join(taint);
            if joined != *entry {
                *entry = joined;
                changed = true;
            }
        }
        let joined = self.unknown_store.join(other.unknown_store);
        if joined != self.unknown_store {
            self.unknown_store = joined;
            changed = true;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absval_join_lattice_laws() {
        let c1 = AbsVal::Const(1);
        let c2 = AbsVal::Const(2);
        let a1 = AbsVal::Addr(1);
        assert_eq!(c1.join(c1), c1);
        assert_eq!(c1.join(c2), AbsVal::Unknown);
        assert_eq!(c1.join(a1), a1);
        assert_eq!(a1.join(c1), a1);
        assert_eq!(c2.join(a1), AbsVal::Unknown);
        assert_eq!(AbsVal::Unknown.join(c1), AbsVal::Unknown);
    }

    #[test]
    fn taint_join_keeps_lowest_origin() {
        let a = Taint::source(8);
        let b = Taint::source(4);
        assert_eq!(a.join(b).origin(), Some(4));
        assert_eq!(a.join(Taint::CLEAN).origin(), Some(8));
        assert!(!Taint::CLEAN.join(Taint::CLEAN).is_tainted());
    }

    #[test]
    fn regions_resolve_from_values() {
        assert_eq!(AbsVal::Const(0x1000).region(4), Some(0x1004));
        assert_eq!(AbsVal::Addr(0x2000).region(12), Some(0x2000));
        assert_eq!(AbsVal::Unknown.region(0), None);
    }

    #[test]
    fn unknown_store_poisons_every_load() {
        let mut s = State::entry();
        s.store(None, Taint::source(16));
        assert!(s.load_taint(Some(0x1000)).is_tainted());
        assert!(s.load_taint(None).is_tainted());
    }

    #[test]
    fn x0_stays_pinned() {
        let mut s = State::entry();
        s.set_reg(
            Reg::ZERO,
            RegVal {
                val: AbsVal::Unknown,
                taint: Taint::source(0),
            },
        );
        assert_eq!(s.reg(Reg::ZERO).val, AbsVal::Const(0));
        assert!(!s.reg(Reg::ZERO).taint.is_tainted());
    }

    #[test]
    fn join_from_reports_changes_and_converges() {
        let mut a = State::entry();
        let mut b = State::entry();
        b.set_reg(
            Reg(5),
            RegVal {
                val: AbsVal::Const(7),
                taint: Taint::source(0),
            },
        );
        b.store(Some(0x2000), Taint::source(8));
        assert!(a.join_from(&b));
        assert!(!a.join_from(&b), "second join is a no-op");
        assert!(a.reg(Reg(5)).taint.is_tainted());
        // Const(7) joined over Unknown stays Unknown (entry regs are top).
        assert_eq!(a.reg(Reg(5)).val, AbsVal::Unknown);
        assert!(a.load_taint(Some(0x2000)).is_tainted());
        let _ = b;
    }
}
