//! Findings, the analysis report, and its human/JSON renderings.

use std::fmt;

use reveal_rv32::Program;

/// The constant-time rules the analyzer checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Secret-dependent branch or indirect jump: control flow reveals the
    /// secret through timing and instruction-sequence power shape (the
    /// paper's vulnerability 1).
    L1SecretBranch,
    /// Secret-dependent memory address: the access pattern reveals the
    /// secret (cache/row-buffer channels; the paper's vulnerability 2 in
    /// address form).
    L2SecretAddress,
    /// Secret operand to a variable-latency instruction (`mul`/`div` family
    /// on cores without constant-time multipliers).
    L3VariableLatency,
    /// Secret value flows to a store: per-bit power leakage at the write
    /// port (Hamming weight of the stored word — the paper's vulnerability 2
    /// in value form). Informational: unavoidable when output must be
    /// written, but each site is a template-attack target.
    L4SecretStore,
}

impl Rule {
    /// Stable short identifier (`L1` … `L4`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::L1SecretBranch => "L1",
            Rule::L2SecretAddress => "L2",
            Rule::L3VariableLatency => "L3",
            Rule::L4SecretStore => "L4",
        }
    }

    /// How serious a violation of this rule is.
    pub fn severity(self) -> Severity {
        match self {
            Rule::L1SecretBranch | Rule::L2SecretAddress => Severity::Error,
            Rule::L3VariableLatency => Severity::Warning,
            Rule::L4SecretStore => Severity::Info,
        }
    }

    /// One-line description of what the rule forbids.
    pub fn description(self) -> &'static str {
        match self {
            Rule::L1SecretBranch => "secret-dependent branch or indirect jump",
            Rule::L2SecretAddress => "secret-dependent memory address",
            Rule::L3VariableLatency => "secret operand to variable-latency instruction",
            Rule::L4SecretStore => "secret value stored to memory",
        }
    }
}

/// Finding severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; not a constant-time violation by itself.
    Info,
    /// Leakage that needs a strong adversary model to exploit.
    Warning,
    /// Single-trace exploitable leakage.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One rule violation at one instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// PC of the offending instruction.
    pub pc: u32,
    /// Disassembly of the offending instruction.
    pub instruction: String,
    /// Nearest preceding label and byte distance, when the program has one.
    pub anchor: Option<(String, u32)>,
    /// PC of the secret source the taint traces back to.
    pub origin: u32,
    /// What leaks and how.
    pub message: String,
}

impl Finding {
    /// `label+0x10` / raw hex location for human output.
    pub fn location(&self) -> String {
        match &self.anchor {
            Some((label, 0)) => format!("{:#06x} <{label}>", self.pc),
            Some((label, delta)) => format!("{:#06x} <{label}+{delta:#x}>", self.pc),
            None => format!("{:#06x}", self.pc),
        }
    }
}

/// The result of analyzing one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// What was analyzed (free-form, e.g. `kernel[vulnerable] n=8`).
    pub target: String,
    /// All findings, ordered by PC then rule.
    pub findings: Vec<Finding>,
    /// Soundness caveats (e.g. unresolved indirect jumps). Empty means the
    /// analysis covered all reachable control flow.
    pub caveats: Vec<String>,
    /// Number of reachable instructions analyzed.
    pub analyzed_instructions: usize,
}

impl Report {
    /// Findings that violate `rule`.
    pub fn findings_for(&self, rule: Rule) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    /// Number of findings at exactly `severity`.
    pub fn count_at(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.rule.severity() == severity)
            .count()
    }

    /// Whether any finding is at or above `severity`.
    pub fn has_findings_at_least(&self, severity: Severity) -> bool {
        self.findings.iter().any(|f| f.rule.severity() >= severity)
    }

    /// Whether the program passes as constant-time: no error-severity
    /// findings and no soundness caveats.
    pub fn is_constant_time(&self) -> bool {
        !self.has_findings_at_least(Severity::Error) && self.caveats.is_empty()
    }

    /// Canonicalizes the report: findings sorted by `(pc, rule)` and
    /// deduplicated per `(pc, rule)` (keeping the lowest-origin
    /// representative, so loop bodies report each violation once with an
    /// iteration-independent anchor), caveats sorted and deduplicated.
    pub fn normalize(&mut self) {
        self.findings.sort_by_key(|a| (a.pc, a.rule, a.origin));
        self.findings
            .dedup_by(|b, a| a.pc == b.pc && a.rule == b.rule);
        self.caveats.sort();
        self.caveats.dedup();
    }

    /// Renders the report for terminals, `rustc`-diagnostic style.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("reveal-lint: {}\n", self.target));
        for caveat in &self.caveats {
            out.push_str(&format!("note: {caveat}\n"));
        }
        for f in &self.findings {
            out.push_str(&format!(
                "{}[{}]: {} at {}\n    {}\n    | {}\n    = secret enters at {:#06x}\n",
                f.rule.severity(),
                f.rule.id(),
                f.rule.description(),
                f.location(),
                f.message,
                f.instruction,
                f.origin,
            ));
        }
        out.push_str(&format!(
            "summary: {} error(s), {} warning(s), {} info across {} instructions — {}\n",
            self.count_at(Severity::Error),
            self.count_at(Severity::Warning),
            self.count_at(Severity::Info),
            self.analyzed_instructions,
            if self.is_constant_time() {
                "no secret-dependent control flow or addressing"
            } else if self.has_findings_at_least(Severity::Error) {
                "NOT constant-time"
            } else {
                "constant control flow, residual data leakage"
            },
        ));
        out
    }

    /// Renders the report as JSON (stable schema, no external dependency).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"target\":{},", json_str(&self.target)));
        out.push_str(&format!("\"constant_time\":{},", self.is_constant_time()));
        out.push_str(&format!(
            "\"analyzed_instructions\":{},",
            self.analyzed_instructions
        ));
        out.push_str("\"caveats\":[");
        for (i, c) in self.caveats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(c));
        }
        out.push_str("],\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"severity\":{},\"pc\":{},\"instruction\":{},\
                 \"anchor\":{},\"origin\":{},\"message\":{}}}",
                json_str(f.rule.id()),
                json_str(&f.rule.severity().to_string()),
                f.pc,
                json_str(&f.instruction),
                match &f.anchor {
                    Some((label, delta)) =>
                        format!("{{\"label\":{},\"offset\":{}}}", json_str(label), delta),
                    None => "null".to_string(),
                },
                f.origin,
                json_str(&f.message),
            ));
        }
        out.push_str("]}");
        out
    }
}

impl Report {
    /// Renders the report as a SARIF 2.1.0 log (one run, one result per
    /// finding, caveats as tool-execution notifications) so CI can annotate
    /// findings in line. Hand-rolled like [`Report::render_json`]; the
    /// schema smoke test in the CLI crate keeps it honest.
    pub fn render_sarif(&self) -> String {
        let level = |s: Severity| match s {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "note",
        };
        let mut out = String::from(
            "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
             \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
             \"name\":\"reveal-lint\",\"rules\":[",
        );
        let rules = [
            Rule::L1SecretBranch,
            Rule::L2SecretAddress,
            Rule::L3VariableLatency,
            Rule::L4SecretStore,
        ];
        for (i, rule) in rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
                 \"defaultConfiguration\":{{\"level\":{}}}}}",
                json_str(rule.id()),
                json_str(rule.description()),
                json_str(level(rule.severity())),
            ));
        }
        out.push_str("]}},\"results\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\
                 \"locations\":[{{\"physicalLocation\":{{\
                 \"artifactLocation\":{{\"uri\":{}}},\
                 \"region\":{{\"startLine\":{}}}}},\
                 \"logicalLocations\":[{{\"name\":{}}}]}}],\
                 \"properties\":{{\"pc\":{},\"origin\":{},\"instruction\":{}}}}}",
                json_str(f.rule.id()),
                json_str(level(f.rule.severity())),
                json_str(&f.message),
                json_str(&self.target),
                f.pc / 4 + 1,
                json_str(&f.location()),
                f.pc,
                f.origin,
                json_str(&f.instruction),
            ));
        }
        out.push_str(
            "],\"invocations\":[{\"executionSuccessful\":true,\
                      \"toolExecutionNotifications\":[",
        );
        for (i, c) in self.caveats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"level\":\"warning\",\"message\":{{\"text\":{}}}}}",
                json_str(c)
            ));
        }
        out.push_str("]}]}]}");
        out
    }
}

/// Looks up the nearest-preceding-label anchor for a PC.
pub(crate) fn anchor_for(program: &Program, base: u32, pc: u32) -> Option<(String, u32)> {
    program
        .nearest_symbol(pc.wrapping_sub(base))
        .map(|(name, delta)| (name.to_string(), delta))
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            target: "test".into(),
            findings: vec![Finding {
                rule: Rule::L1SecretBranch,
                pc: 0x40,
                instruction: "blez t2, 24".into(),
                anchor: Some(("dist_done".into(), 8)),
                origin: 0x38,
                message: "branch condition depends on secret".into(),
            }],
            caveats: vec![],
            analyzed_instructions: 10,
        }
    }

    #[test]
    fn severity_ordering_matches_triage() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn rule_severities() {
        assert_eq!(Rule::L1SecretBranch.severity(), Severity::Error);
        assert_eq!(Rule::L2SecretAddress.severity(), Severity::Error);
        assert_eq!(Rule::L3VariableLatency.severity(), Severity::Warning);
        assert_eq!(Rule::L4SecretStore.severity(), Severity::Info);
    }

    #[test]
    fn report_summary_logic() {
        let r = sample_report();
        assert!(!r.is_constant_time());
        assert!(r.has_findings_at_least(Severity::Error));
        assert_eq!(r.count_at(Severity::Error), 1);
        assert_eq!(r.findings_for(Rule::L1SecretBranch).count(), 1);
        assert_eq!(r.findings_for(Rule::L2SecretAddress).count(), 0);
    }

    #[test]
    fn human_rendering_mentions_rule_and_anchor() {
        let text = sample_report().render_human();
        assert!(text.contains("error[L1]"));
        assert!(text.contains("<dist_done+0x8>"));
        assert!(text.contains("NOT constant-time"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = sample_report().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rule\":\"L1\""));
        assert!(json.contains("\"constant_time\":false"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn normalize_dedupes_per_pc_and_rule_and_sorts_caveats() {
        let mut r = sample_report();
        let mut dup = r.findings[0].clone();
        dup.origin = 0x50; // later origin loses
        dup.message = "duplicate from a later iteration".into();
        r.findings.push(dup);
        let mut other = r.findings[0].clone();
        other.rule = Rule::L4SecretStore; // distinct rule survives
        r.findings.push(other);
        r.caveats = vec!["b".into(), "a".into(), "a".into()];
        r.normalize();
        assert_eq!(r.findings.len(), 2);
        assert_eq!(r.findings[0].origin, 0x38, "lowest origin kept");
        assert_eq!(r.caveats, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let mut r = sample_report();
        r.caveats.push("unresolved something".into());
        let sarif = r.render_sarif();
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("sarif-2.1.0.json"));
        assert!(sarif.contains("\"ruleId\":\"L1\""));
        assert!(sarif.contains("\"level\":\"error\""));
        assert!(sarif.contains("toolExecutionNotifications"));
        assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
        assert_eq!(sarif.matches('[').count(), sarif.matches(']').count());
    }
}
