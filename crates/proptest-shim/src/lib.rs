#![forbid(unsafe_code)]

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the subset of the 1.x API this workspace uses:
//!
//! - the [`proptest!`] macro over `fn name(arg in strategy, ...) { .. }`
//!   items, including `#![proptest_config(..)]`;
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! - strategies: integer/float ranges, [`arbitrary::any`],
//!   [`collection::vec`], [`strategy::Just`] and
//!   [`strategy::Strategy::prop_map`];
//! - [`config::ProptestConfig`] with `with_cases`.
//!
//! Differences from upstream: case generation is *deterministic* (seeded
//! from the test's module path and name), and failing cases are reported
//! with their inputs but not shrunk. Both are acceptable — arguably
//! preferable — for CI reproducibility.

pub mod arbitrary;
pub mod collection;
pub mod config;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// Accepts the same surface syntax as upstream `proptest!` for the forms
/// used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_holds(x in 0u32..100, v in proptest::collection::vec(0u8..4, 1..9)) {
///         prop_assert!(x < 100);
///         prop_assert_eq!(v.len() < 9, true);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test item under a shared config.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::config::ProptestConfig = $cfg;
                let __test_path = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__config.cases {
                    let mut __gen =
                        $crate::test_runner::Gen::for_case(__test_path, __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __gen);)+
                    let __inputs = {
                        let mut __s = ::std::string::String::new();
                        $(
                            __s.push_str(stringify!($arg));
                            __s.push_str(" = ");
                            __s.push_str(&format!("{:?}", &$arg));
                            __s.push('\n');
                        )+
                        __s
                    };
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            // prop_assume! rejected this case; move on.
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest case {} of {} failed: {}\ninputs:\n{}",
                                __case, __test_path, __msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (with its
/// inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), __l, __r
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).into(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, f in 0.0f64..1.0) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_obeys_size(v in crate::collection::vec(0u8..4, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn prop_map_applies(sq in (0u32..100).prop_map(|x| x * x)) {
            let root = (sq as f64).sqrt().round() as u32;
            prop_assert_eq!(root * root, sq);
        }

        #[test]
        fn assume_rejects_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        // No `#[test]` on the inner item: it is invoked manually.
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
