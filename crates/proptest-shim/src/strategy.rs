//! The [`Strategy`] trait and primitive strategies.

use crate::test_runner::Gen;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values that fail `f` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, gen: &mut Gen) -> Self::Value {
        (**self).generate(gen)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _gen: &mut Gen) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, gen: &mut Gen) -> O {
        (self.f)(self.inner.generate(gen))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, gen: &mut Gen) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(gen);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.whence
        );
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $wide:ty, $below:ident);* $(;)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                self.start.wrapping_add(gen.$below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, gen: &mut Gen) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if span == 0 {
                    // Whole domain: raw bits are already uniform.
                    let raw = (gen.next_u64() as u128) << 64 | gen.next_u64() as u128;
                    return raw as $t;
                }
                start.wrapping_add(gen.$below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(
    u8 => u64, below_u64; u16 => u64, below_u64; u32 => u64, below_u64;
    u64 => u64, below_u64; usize => u64, below_u64;
    i8 => u64, below_u64; i16 => u64, below_u64; i32 => u64, below_u64;
    i64 => u64, below_u64; isize => u64, below_u64;
    u128 => u128, below_u128; i128 => u128, below_u128;
);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = gen.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * u;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);
