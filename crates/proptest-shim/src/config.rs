//! Test-runner configuration.

/// Controls how many cases each property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}
