//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::Gen;
use std::ops::{Range, RangeInclusive};

/// The permitted lengths of a generated collection: `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose lengths
/// fall in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span <= 1 {
                0
            } else {
                gen.below_u64(span) as usize
            };
        (0..len).map(|_| self.element.generate(gen)).collect()
    }
}
