//! `any::<T>()` — uniform strategies over a type's whole domain.

use crate::strategy::Strategy;
use crate::test_runner::Gen;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(gen: &mut Gen) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

macro_rules! arb_int {
    ($($t:ty => $next:ident),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(gen: &mut Gen) -> $t {
                gen.$next() as $t
            }
        }
    )*};
}

arb_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
    isize => next_u64,
);

impl Arbitrary for u128 {
    fn arbitrary(gen: &mut Gen) -> u128 {
        (gen.next_u64() as u128) << 64 | gen.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(gen: &mut Gen) -> i128 {
        u128::arbitrary(gen) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> bool {
        gen.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(gen: &mut Gen) -> f64 {
        // Finite, sign-symmetric values spanning many magnitudes; avoids
        // NaN/inf which upstream also excludes by default.
        let mantissa = gen.unit_f64() * 2.0 - 1.0;
        let exp = (gen.below_u64(120) as i32) - 60;
        mantissa * (exp as f64).exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(gen: &mut Gen) -> f32 {
        f64::arbitrary(gen) as f32
    }
}
