//! Case generation and failure plumbing for the [`proptest!`](crate::proptest)
//! macro.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Why a test case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — not a failure.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The per-case random source handed to strategies.
///
/// Seeded deterministically from the test path and case index so a failing
/// case reproduces on every run and machine.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates the generator for case `case` of test `test_path`.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut hasher = DefaultHasher::new();
        test_path.hash(&mut hasher);
        case.hash(&mut hasher);
        // Avoid the all-zero state SplitMix64 would otherwise start from.
        Gen {
            state: hasher.finish() ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Returns the next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, span)`; `span` must be nonzero.
    pub fn below_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    /// Uniform value in `[0, span)` for 128-bit spans.
    pub fn below_u128(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let v = (self.next_u64() as u128) << 64 | self.next_u64() as u128;
            if v <= zone {
                return v % span;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
