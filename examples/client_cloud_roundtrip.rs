//! The full client/cloud protocol of Fig. 1 with serialized messages: the
//! client keygens and encrypts, ships *bytes* to the cloud, the cloud
//! evaluates without any key material, ships bytes back, and the client
//! decrypts — then the side-channel adversary shows why none of that
//! protected the plaintext from a compromised client device.
//!
//! Run with `cargo run --release --example client_cloud_roundtrip`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_bfv::{
    load_ciphertext, load_public_key, save_ciphertext, save_public_key, BfvContext, Decryptor,
    EncryptionParameters, Encryptor, Evaluator, KeyGenerator, Plaintext,
};
use reveal_hints::{DbddInstance, LweParameters};

/// The cloud: stateless, sees only serialized bytes and the agreed params.
fn cloud_evaluate(parms: EncryptionParameters, pk_bytes: &[u8], ct_bytes: &[u8]) -> Vec<u8> {
    let ctx = BfvContext::new(parms).expect("agreed parameters");
    // The cloud validates what it receives before computing on it.
    let _pk = load_public_key(&ctx, pk_bytes).expect("valid public key");
    let ct = load_ciphertext(&ctx, ct_bytes).expect("valid ciphertext");
    let eval = Evaluator::new(&ctx);
    // score = 3·x + 7 per coefficient, homomorphically (the +7 plaintext
    // has 7 in every coefficient).
    let weighted = eval.multiply_plain(&ct, &Plaintext::constant(&ctx, 3));
    let sevens = Plaintext::new(&ctx, &vec![7u64; ctx.degree()]);
    let shifted = eval.add_plain(&weighted, &sevens);
    save_ciphertext(&ctx, &shifted)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let parms = EncryptionParameters::seal_128_paper()?;
    let ctx = BfvContext::new(parms.clone())?;
    let mut rng = StdRng::seed_from_u64(1);

    // --- Client side ---
    let keygen = KeyGenerator::new(&ctx);
    let sk = keygen.secret_key(&mut rng);
    let pk = keygen.public_key(&sk, &mut rng);
    let mut readings = vec![0u64; 1024];
    for (i, r) in readings.iter_mut().enumerate().take(16) {
        *r = (i as u64 * 5 + 2) % 50;
    }
    let ct = Encryptor::new(&ctx, &pk).encrypt(&Plaintext::new(&ctx, &readings), &mut rng);
    let pk_bytes = save_public_key(&ctx, &pk);
    let ct_bytes = save_ciphertext(&ctx, &ct);
    println!(
        "client -> cloud: {} pk bytes + {} ct bytes (no secret key leaves the client)",
        pk_bytes.len(),
        ct_bytes.len()
    );

    // --- Cloud side (separate context rebuilt from the agreed params) ---
    let result_bytes = cloud_evaluate(parms, &pk_bytes, &ct_bytes);
    println!("cloud -> client: {} result bytes", result_bytes.len());

    // --- Client decrypts the evaluated result ---
    let result = load_ciphertext(&ctx, &result_bytes)?;
    let plain = Decryptor::new(&ctx, &sk).decrypt(&result);
    for (m, r) in plain.coeffs().iter().zip(&readings).take(4) {
        assert_eq!(*m, (r * 3 + 7) % 256);
    }
    println!(
        "client decrypts: slot 2 = {} (= 3·{} + 7) — the protocol works",
        plain.coeffs()[2],
        readings[2]
    );

    // --- The catch (the paper's point) ---
    let baseline = DbddInstance::from_lwe(&LweParameters::seal_128_paper()).estimate();
    let mut hinted = DbddInstance::from_lwe(&LweParameters::seal_128_paper());
    for i in 0..1024 {
        hinted.integrate_perfect_hint(i)?;
    }
    println!(
        "\nbut one power trace of that client-side encryption carries enough \
         hints to take the\nscheme from {:.0} bikz (2^{:.0}) to {:.1} bikz \
         (2^{:.1}) — run `--example quickstart`\nor the table3 bench to watch \
         it happen.",
        baseline.bikz,
        baseline.bits,
        hinted.estimate().bikz,
        hinted.estimate().bits
    );
    Ok(())
}
