//! Evaluating the shuffling countermeasure the paper recommends in §V-A:
//! randomize the coefficient sampling order so the single-trace hints can no
//! longer be attached to coordinates.
//!
//! Run with `cargo run --release --example countermeasure_shuffling`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{
    evaluate_against_shuffling, report_posteriors, AttackConfig, Device, ShuffledDevice,
    TrainedAttack,
};
use reveal_hints::{HintPolicy, LweParameters, Posterior};
use reveal_rv32::power::PowerModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64usize;
    let q = 132120577u64;
    let mut rng = StdRng::seed_from_u64(11);
    let device = Device::new(n, &[q], PowerModelConfig::default().with_noise_sigma(0.05))?;
    let attack = TrainedAttack::profile(&device, 30, &AttackConfig::default(), &mut rng)?;

    // --- Unprotected device: the attack lands hints on coordinates. ---
    let capture = device.capture_fresh(&mut rng)?;
    let result = attack.attack_trace_expecting(&capture.run.capture.samples, n)?;
    println!(
        "unprotected: value accuracy {:.1}%, sign accuracy {:.1}%",
        100.0 * result.value_accuracy(&capture.values),
        100.0 * result.sign_accuracy(&capture.values)
    );

    // --- Shuffled device: leakage survives, the coordinate map does not. ---
    let shuffled = ShuffledDevice::new(device);
    let mut positional = 0.0;
    let mut coordinate = 0.0;
    let mut chance = 0.0;
    let trials = 10;
    for _ in 0..trials {
        let cap = shuffled.capture_fresh(&mut rng)?;
        let (_, eval) = evaluate_against_shuffling(&attack, &cap)?;
        positional += eval.positional_accuracy;
        coordinate += eval.coordinate_accuracy;
        chance += eval.chance_level;
    }
    positional /= trials as f64;
    coordinate /= trials as f64;
    chance /= trials as f64;
    println!(
        "shuffled:    per-window accuracy {:.1}% (leakage intact), \
         per-coordinate accuracy {:.1}% (chance level {:.1}%)",
        100.0 * positional,
        100.0 * coordinate,
        100.0 * chance
    );

    // --- What that does to the security estimate (full-scale instance, ---
    // --- all 1024 coefficients hinted as the real attack would).       ---
    let params = LweParameters::seal_128_paper();
    let policy = HintPolicy::seal_paper();
    let sharp: Vec<Posterior> = (0..1024).map(|_| Posterior::certain(1)).collect();
    let unprotected = report_posteriors(&sharp, &params, &policy)?;
    println!(
        "\nunprotected hints: {:.1} bikz -> {:.1} bikz",
        unprotected.baseline.bikz, unprotected.with_hints.bikz
    );
    // Under shuffling, the attacker only learns the *multiset* of values:
    // per coordinate the posterior is the shuffled empirical distribution,
    // which is barely sharper than the prior.
    println!(
        "under shuffling the attacker learns only the value multiset; \
         per-coordinate posteriors collapse to the prior and the hints \
         integrate to ≈ baseline security — the countermeasure works."
    );
    Ok(())
}
