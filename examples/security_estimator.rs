//! Standalone use of the LWE-with-hints estimator: how much security do
//! SEAL-style parameter sets lose as side-channel hints of varying quality
//! accumulate? Reproduces the Table III / Table IV methodology across ring
//! degrees.
//!
//! Run with `cargo run --release --example security_estimator`.

use reveal_hints::{
    bikz_to_bits, integrate_posteriors, DbddInstance, HintPolicy, LweParameters, Posterior,
};

fn estimate_with_confidence(params: &LweParameters, confidence: f64, sigma: f64) -> f64 {
    let mut inst = DbddInstance::from_lwe(params);
    if confidence >= 1.0 {
        for i in 0..params.m {
            inst.integrate_perfect_hint(i).expect("fresh coordinate");
        }
    } else {
        let policy = HintPolicy {
            prior_variance: sigma * sigma,
            ..HintPolicy::seal_paper()
        };
        // A two-candidate posterior at the given confidence for every
        // coefficient (adjacent values, the common confusion).
        let posteriors: Vec<Posterior> = (0..params.m)
            .map(|_| {
                Posterior::new(vec![(1, confidence), (2, 1.0 - confidence)])
                    .expect("valid posterior")
            })
            .collect();
        let coords: Vec<usize> = (0..params.m).collect();
        integrate_posteriors(&mut inst, &coords, &posteriors, &policy).expect("hints apply");
    }
    inst.estimate().bikz
}

fn main() {
    println!("LWE-with-hints security estimates for SEAL-style rings (σ = 3.2)\n");
    println!(
        "{:>6} {:>12} | {:>14} | {:>10} {:>10} {:>10} {:>10}",
        "n", "q", "no hints", "conf=0.7", "conf=0.9", "conf=0.99", "perfect"
    );
    println!("{}", "-".repeat(86));
    // (n, q): the paper's set plus larger NTT-friendly q at higher degrees
    // (illustrative single-prime settings).
    let sets: [(usize, f64); 4] = [
        (1024, 132120577.0),
        (2048, 1.8014398509481984e16),                 // ~2^54
        (4096, 6.489103637461917e32f64.min(f64::MAX)), // ~2^109 (as float)
        (8192, 4.211e65),                              // ~2^218
    ];
    for (n, q) in sets {
        let params = LweParameters::seal_like(n, q, 3.2);
        let base = DbddInstance::from_lwe(&params).estimate();
        let c70 = estimate_with_confidence(&params, 0.7, 3.2);
        let c90 = estimate_with_confidence(&params, 0.9, 3.2);
        let c99 = estimate_with_confidence(&params, 0.99, 3.2);
        let perfect = estimate_with_confidence(&params, 1.0, 3.2);
        println!(
            "{:>6} {:>12.4e} | {:>7.2} bikz  | {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            n, q, base.bikz, c70, c90, c99, perfect
        );
        println!(
            "{:>6} {:>12} | {:>7.1} bits  | {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            "",
            "",
            base.bits,
            bikz_to_bits(c70),
            bikz_to_bits(c90),
            bikz_to_bits(c99),
            bikz_to_bits(perfect)
        );
    }
    println!(
        "\nReading: the paper's SEAL-128 row drops from ≈380 bikz (2^128) to \
         single digits once every coefficient is hinted — a complete break."
    );
}
