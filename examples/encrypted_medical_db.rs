//! The paper's motivating scenario (§I): a client encrypts sensitive medical
//! readings, the cloud evaluates on the ciphertexts without the key — and a
//! power adversary with access to the *client device* steals the readings
//! from a single encryption trace anyway.
//!
//! The workload: a clinic uploads encrypted risk scores; the cloud computes
//! a weighted screening score homomorphically; the clinic decrypts only the
//! final result. Then the single-trace attack recovers the encryption
//! randomness from the device's power trace and reconstructs the uploaded
//! readings via Eq. (2)/(3).
//!
//! Run with `cargo run --release --example encrypted_medical_db`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{recover_adaptive, AttackConfig, Device, TrainedAttack};
use reveal_bfv::{
    BfvContext, Decryptor, EncryptionParameters, Encryptor, Evaluator, KeyGenerator, Plaintext,
};
use reveal_math::Modulus;
use reveal_rv32::power::PowerModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // Toy ring degree so the lattice finisher runs in seconds; q is a
    // 12-bit NTT prime for n = 32.
    let n = 32usize;
    let q = 3329u64;
    let t = 16u64;
    let parms = EncryptionParameters::new(n, vec![Modulus::new(q)?], Modulus::new(t)?)?;
    let ctx = BfvContext::new(parms)?;
    let keygen = KeyGenerator::new(&ctx);
    let sk = keygen.secret_key(&mut rng);
    let pk = keygen.public_key(&sk, &mut rng);
    let encryptor = Encryptor::new(&ctx, &pk);
    let decryptor = Decryptor::new(&ctx, &sk);
    let evaluator = Evaluator::new(&ctx);

    // --- The clinic's private readings, packed into plaintext slots. ---
    let readings: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 1) % t).collect();
    let plain = Plaintext::new(&ctx, &readings);
    println!("clinic readings (first 8): {:?}", &readings[..8]);

    // --- Encrypt on the client device; the attacker records ONE trace of ---
    // --- the Gaussian sampler while this encryption runs.               ---
    let device = Device::new(n, &[q], PowerModelConfig::default().with_noise_sigma(0.02))?;
    let mut attack_rng = StdRng::seed_from_u64(99);
    let attack = TrainedAttack::profile(&device, 60, &AttackConfig::default(), &mut attack_rng)?;

    // The victim's encryption: we mirror its freshly sampled e2 into the
    // device so the captured trace is the trace of *this* encryption.
    let (ct, witness) = encryptor.encrypt_observed(
        &plain,
        &mut rng,
        &mut reveal_bfv::NullProbe,
        &mut reveal_bfv::NullProbe,
    );
    let capture = device.capture_chosen(&witness.e2, &mut rng)?;

    // --- The cloud evaluates obliviously (and correctly). ---
    let weighted = evaluator.multiply_plain(&ct, &Plaintext::constant(&ctx, 3));
    let shifted = evaluator.add_plain(&weighted, &Plaintext::constant(&ctx, 1));
    let score = decryptor.decrypt(&shifted);
    println!(
        "cloud-evaluated screening score (slot 0): 3*{} + 1 = {}",
        readings[0],
        score.coeffs()[0]
    );

    // --- The attack: single trace → e2 estimates → lattice finisher →  ---
    // --- full plaintext recovery.                                      ---
    let result = attack.attack_trace_expecting(&capture.run.capture.samples, n)?;
    println!(
        "single-trace value accuracy: {:.1}% (signs {:.1}%)",
        100.0 * result.value_accuracy(&witness.e2),
        100.0 * result.sign_accuracy(&witness.e2),
    );
    let estimates: Vec<(i64, f64)> = result
        .coefficients
        .iter()
        .map(|c| (c.predicted, c.confidence()))
        .collect();
    match recover_adaptive(&ctx, &pk, &ct, &estimates, 0.85) {
        Ok((recovered, _u, trusted)) => {
            println!(
                "adaptive finisher trusted {trusted}/{n} coefficients and recovered the plaintext"
            );
            println!(
                "recovered readings (first 8): {:?}",
                &recovered.coeffs()[..8]
            );
            assert_eq!(recovered.coeffs(), plain.coeffs());
            println!("=> the 'encrypted' readings leaked through one power trace");
        }
        Err(e) => println!("finisher failed on this trace: {e} (re-run for another trace)"),
    }
    Ok(())
}
