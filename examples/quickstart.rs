//! Quickstart: encrypt with the vulnerable SEAL-v3.2-style BFV, capture one
//! power trace of the Gaussian sampler on the simulated RISC-V target, run
//! the RevEAL single-trace attack, and print the security damage.
//!
//! Run with `cargo run --release --example quickstart`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{report_full_attack, AttackConfig, Device, TrainedAttack};
use reveal_bfv::{BfvContext, Decryptor, EncryptionParameters, Encryptor, KeyGenerator, Plaintext};
use reveal_hints::{HintPolicy, LweParameters};
use reveal_rv32::power::PowerModelConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2022);

    // --- 1. A normal BFV session with the paper's SEAL-128 parameters. ---
    let ctx = BfvContext::new(EncryptionParameters::seal_128_paper()?)?;
    let keygen = KeyGenerator::new(&ctx);
    let sk = keygen.secret_key(&mut rng);
    let pk = keygen.public_key(&sk, &mut rng);
    let encryptor = Encryptor::new(&ctx, &pk);
    let decryptor = Decryptor::new(&ctx, &sk);

    let secret_message = Plaintext::constant(&ctx, 42);
    let ct = encryptor.encrypt(&secret_message, &mut rng);
    assert_eq!(decryptor.decrypt(&ct).coeffs()[0], 42);
    println!("BFV roundtrip OK: n = 1024, q = 132120577, t = 256");

    // --- 2. The adversary profiles the device (a smaller ring keeps the ---
    // --- demo fast; the pipeline is identical at n = 1024).            ---
    let n = 64;
    let device = Device::new(n, &[132120577], PowerModelConfig::default())?;
    let config = AttackConfig::default();
    println!("profiling {n}-coefficient sampler on the RV32 target …");
    let attack = TrainedAttack::profile(&device, 30, &config, &mut rng)?;
    println!(
        "templates trained on {} labelled windows",
        attack.profiling_windows()
    );

    // --- 3. A single fresh capture — the victim encrypts once. ---
    let capture = device.capture_fresh(&mut rng)?;
    let result = attack.attack_trace_expecting(&capture.run.capture.samples, n)?;
    println!(
        "single-trace attack: sign accuracy {:.1}%, value accuracy {:.1}%",
        100.0 * result.sign_accuracy(&capture.values),
        100.0 * result.value_accuracy(&capture.values),
    );

    // --- 4. Security accounting with the LWE-with-hints framework, on ---
    // --- the paper's full-scale instance (64 of 1024 coefficients     ---
    // --- hinted here; the full attack hints all 1024 and collapses    ---
    // --- security to single digits — see the table3 bench).           ---
    let report = report_full_attack(
        &result,
        &LweParameters::seal_128_paper(),
        &HintPolicy::seal_paper(),
    )?;
    println!("{report}");
    Ok(())
}
